//! Quickstart: boot the OSDC-in-a-box, log in, compute, get billed.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the path a new OSDC researcher walked in 2012: federated login
//! through Tukey, browse the public datasets, launch a VM with the
//! community tools image, watch usage accrue, share a dataset with a
//! collaborator at another data center, and read the invoice.

use osdc::sharing::{Action, DcId, SharingConfig, SharingSim, TrustLevel};
use osdc::tukey::auth::{Identity, ShibbolethIdp};
use osdc::tukey::credentials::CloudCredential;
use osdc::Federation;
use osdc_sim::{SimDuration, SimTime};

fn main() {
    // 1. Stand up the whole facility (Table 2's clusters + WAN + Tukey).
    let mut fed = Federation::build(1.2e-7, 42);
    println!(
        "OSDC up: {} cores / {} TB across {} clusters\n",
        fed.total_cores(),
        fed.total_disk_tb(),
        fed.inventory().len()
    );

    // 2. Federated login: your campus IdP vouches for you.
    let mut idp = ShibbolethIdp::new("urn:mace:example.edu:idp", b"campus-key");
    idp.register("you@example.edu", &[("displayName", "New Researcher")]);
    fed.console
        .auth
        .trust_idp("urn:mace:example.edu:idp", b"campus-key");
    let me = Identity {
        canonical: "shib:you@example.edu".into(),
    };
    fed.console
        .enroll(&me, CloudCredential::new("adler", "you", "AK", "SK"));
    let token = fed
        .console
        .login_shibboleth(&idp.assert("you@example.edu").expect("campus account"))
        .expect("trusted IdP");
    println!(
        "logged in as {}",
        fed.console.whoami(token).expect("session")
    );

    // 3. Browse the public data (§6.3) — anyone can.
    let hits = fed.console.datasets_page(Some("genomes"));
    println!(
        "\npublic dataset search 'genomes':\n{}",
        serde_json::to_string_pretty(&hits).expect("json")
    );

    // 4. Launch a VM from the community genomics image (§3.2 rule 5).
    let t0 = SimTime::ZERO;
    let vm = fed
        .console
        .launch_instance(
            token,
            "adler",
            "first-analysis",
            "m1.large",
            "bionimbus-genomics",
            t0,
        )
        .expect("free-tier capacity");
    println!("launched: {}", serde_json::to_string(&vm).expect("json"));

    // 5. Compute for three hours; Tukey polls usage every minute (§6.4).
    let mut now = t0;
    for _ in 0..(3 * 60) {
        now += SimDuration::from_mins(1);
        fed.console.billing_minute_tick(now);
    }
    println!(
        "\nusage page:\n{}",
        serde_json::to_string_pretty(&fed.console.usage_page(token).expect("usage")).expect("json")
    );

    // 6. Share your results with a collaborator at another data center
    // (§ file sharing): mint a Copy capability at Chicago-Kenwood, let
    // gossip carry it across the federation, read from Miami, revoke.
    let mut sharing = SharingSim::new(SharingConfig::new(42));
    let cap = sharing.grant(
        DcId(0),
        "collaborator@partner.edu",
        "/projects/first-analysis",
        TrustLevel::Copy,
    );
    sharing.quiesce(16);
    let miami = DcId(3);
    assert_eq!(
        sharing.check(
            miami,
            "collaborator@partner.edu",
            "/projects/first-analysis/results.vcf",
            Action::Read
        ),
        Some(cap),
        "gossip should have carried the grant to every data center"
    );
    let xfer = sharing
        .copy_to(
            miami,
            "collaborator@partner.edu",
            "/projects/first-analysis/results.vcf",
            512 << 20,
        )
        .expect("capability authorizes the copy");
    println!(
        "\nshared /projects/first-analysis with collaborator@partner.edu: \
         512 MB to ampath-miami at {:.0} Mb/s",
        xfer.mbps
    );
    sharing.revoke(DcId(0), cap);
    sharing.quiesce(16);
    assert_eq!(
        sharing.check(
            miami,
            "collaborator@partner.edu",
            "/projects/first-analysis/results.vcf",
            Action::Read
        ),
        None,
        "revocation must reach every replica"
    );
    println!("revoked — no replica honours the capability any more");

    // 7. Terminate, close the month, read the invoice.
    let id = vm["server"]["id"].as_u64().expect("id");
    fed.console
        .terminate_instance(token, "adler", id, now)
        .expect("terminate");
    for invoice in fed.console.billing.close_month() {
        println!(
            "invoice for {}: {:.1} core-hours → ${:.2} (free tier covers {})",
            invoice.user,
            invoice.core_hours,
            invoice.total_usd,
            if invoice.total_usd == 0.0 {
                "it all"
            } else {
                "part"
            }
        );
    }
    println!("\ndone — see examples/bionimbus_genomics.rs and examples/matsu_flood_detection.rs for the domain workloads.");
}
