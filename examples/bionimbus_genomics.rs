//! Bionimbus: collaborative genomics on the OSDC (§4.1, §6.2).
//!
//! ```text
//! cargo run --example bionimbus_genomics
//! ```
//!
//! The paper's genomics story: a consortium (modENCODE/T2D-Genes style)
//! keeps one copy of a large dataset on OSDC storage; member groups
//! analyze it *in place* — "different groups can analyze large biological
//! datasets without the necessity of each group downloading the data" —
//! under the group/collection permission model, with controlled data
//! gated, and an ARK minted for the published result.

use osdc::storage::{AccessKind, FileData};
use osdc::tukey::ark::ArkRecord;
use osdc::tukey::sharing::Permission;
use osdc::Federation;
use osdc_mapreduce::{run_job, JobConfig};

fn main() {
    let mut fed = Federation::build(1.2e-7, 7);

    // --- the consortium uploads once -------------------------------------
    // A (toy) set of sequencing reads lands on the Adler share.
    fed.adler_share.add_account("consortium-dcc", "pw-dcc");
    fed.adler_share
        .grant("/projects/t2d", "consortium-dcc", AccessKind::Write);
    let reads: Vec<String> = (0..400)
        .map(|i| {
            // Synthetic reads with an occasional variant motif.
            let motif = if i % 17 == 0 { "GATTACA" } else { "ACGTACG" };
            format!("read{i}:{}{}", motif, "ACGT".repeat(8))
        })
        .collect();
    fed.adler_share
        .write(
            "consortium-dcc",
            "pw-dcc",
            "/projects/t2d/cohort.reads",
            FileData::bytes(reads.join("\n").into_bytes()),
        )
        .expect("upload");
    println!(
        "consortium uploaded cohort.reads ({} reads) — one copy, shared in place",
        reads.len()
    );

    // --- sharing: groups + collections (§6.2) ------------------------------
    let project = fed
        .console
        .sharing
        .create_collection("consortium-dcc", "t2d-genes", None)
        .expect("collection");
    fed.console
        .sharing
        .create_group("consortium-dcc", "t2d-members");
    for member in ["lab-chicago", "lab-edinburgh", "lab-miami"] {
        fed.console
            .sharing
            .add_member("consortium-dcc", "t2d-members", member)
            .expect("membership");
    }
    fed.console
        .sharing
        .grant_group("consortium-dcc", project, "t2d-members", Permission::Read)
        .expect("grant");
    let file_node = fed
        .console
        .sharing
        .register_file(
            "consortium-dcc",
            "cohort.reads",
            "/projects/t2d/cohort.reads",
            Some(project),
        )
        .expect("register");
    println!("collection 't2d-genes' shared with group 't2d-members' (read)");

    // Members can read through the WebDAV gate; outsiders cannot.
    fed.adler_share
        .grant("/projects/t2d", "lab-chicago", AccessKind::Read);
    let ok = fed
        .console
        .sharing
        .can_access("lab-edinburgh", file_node, Permission::Read);
    let outsider = fed
        .console
        .sharing
        .can_access("random-user", file_node, Permission::Read);
    println!("access check: member lab-edinburgh={ok}, outsider={outsider}");
    assert!(ok && !outsider);

    // --- three labs analyze the same copy with different pipelines --------
    // Each "pipeline" is a MapReduce over the same reads — no downloads.
    let data = fed
        .adler_share
        .read("consortium-dcc", "pw-dcc", "/projects/t2d/cohort.reads")
        .expect("read back");
    let FileData::Bytes(bytes) = data else {
        panic!("real bytes expected")
    };
    let text = String::from_utf8(bytes).expect("utf8");
    let lines: Vec<String> = text.lines().map(str::to_string).collect();

    // Pipeline A (lab-chicago): variant-motif counting.
    let variants = run_job(
        lines.clone(),
        &JobConfig::default(),
        |read, emit| {
            if read.contains("GATTACA") {
                emit("GATTACA-carrier", 1u64);
            }
        },
        |_k, vs| vs.iter().sum::<u64>(),
    );
    // Pipeline B (lab-edinburgh): GC-content histogram.
    let gc = run_job(
        lines.clone(),
        &JobConfig::default(),
        |read, emit| {
            let seq = read.split(':').nth(1).unwrap_or("");
            let gc = seq.chars().filter(|&c| c == 'G' || c == 'C').count() * 100 / seq.len().max(1);
            emit(gc / 10 * 10, 1u64); // decile buckets
        },
        |_k, vs| vs.iter().sum::<u64>(),
    );
    println!("\nlab-chicago pipeline: {:?}", variants.output);
    println!("lab-edinburgh pipeline (GC% deciles): {:?}", gc.output);

    // --- controlled (human) data stays in the secure enclave --------------
    // "There are also secure, private Bionimbus clouds that are designed
    // to hold controlled data, such as human genomic data."
    fed.adler_share.add_account("dbgap-admin", "pw-admin");
    fed.adler_share
        .grant("/secure/dbgap", "dbgap-admin", AccessKind::Write);
    fed.adler_share
        .write(
            "dbgap-admin",
            "pw-admin",
            "/secure/dbgap/human.vcf",
            FileData::synthetic(5 << 30, 99),
        )
        .expect("controlled upload");
    let denied = fed
        .adler_share
        .read("lab-chicago", "pw?", "/secure/dbgap/human.vcf");
    println!("\ncontrolled-access check: lab-chicago on /secure/dbgap → {denied:?}");
    assert!(denied.is_err());

    // --- publish: mint an ARK for the result set (§6.1) -------------------
    let ark = fed.console.arks.mint(ArkRecord {
        who: "T2D-Genes consortium".into(),
        what: "cohort variant calls, freeze 1".into(),
        when: "2012".into(),
        where_: "/projects/t2d/freeze1.vcf".into(),
        commitment: "replicated on OSDC-Root; reviewed annually".into(),
    });
    println!("\npublished with persistent id {ark}");
    println!(
        "  resolves to: {}",
        fed.console.arks.resolve(&ark.to_uri()).expect("resolves")
    );
    println!(
        "  brief metadata (?): {}",
        fed.console
            .arks
            .resolve(&format!("{ark}?"))
            .expect("resolves")
            .replace('\n', " | ")
    );
}
