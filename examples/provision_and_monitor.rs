//! Bring a rack from bare metal to monitored production (§7.3, §7.4).
//!
//! ```text
//! cargo run --example provision_and_monitor
//! ```
//!
//! The operations half of the paper: the automated IPMI + PXE + Chef
//! pipeline delivers a 39-server rack, Nagios/NRPE starts watching it,
//! a disk fills up and alerts fire exactly per the soft/hard state
//! machine, and the in-house usage monitor publishes the public summary.

use std::collections::BTreeMap;

use osdc::compute::{CloudController, ImageId};
use osdc::monitor::{
    CheckDefinition, CloudUsageMonitor, HostAgent, NagiosMaster, ServiceDefinition,
    ThresholdDirection,
};
use osdc::provision::{manual_rack_install, provision_rack, ManualParams, PipelineParams};
use osdc_sim::{SimDuration, SimTime};

fn main() {
    // --- provision the rack -----------------------------------------------
    let auto = provision_rack(&PipelineParams::default(), 2012);
    let manual = manual_rack_install(&ManualParams::default(), 2012);
    println!(
        "rack provisioned: {} servers in {} (manual baseline: {:.1} work days, {} retries absorbed)",
        auto.servers_ready,
        auto.wall_time,
        manual.wall_days,
        auto.total_retries
    );

    // --- wire it into Nagios (§7.4) -----------------------------------------
    let agents_owned: Vec<HostAgent> = (0..4)
        .map(|i| {
            let agent = HostAgent::new(format!("rack0-server{i}"));
            agent.metrics.set("disk_used_pct", 35.0 + i as f64);
            agent.metrics.set("load1", 1.0);
            agent
        })
        .collect();
    let mut master = NagiosMaster::new();
    for agent in &agents_owned {
        for (name, metric, w, c) in [
            ("check_disk", "disk_used_pct", 80.0, 95.0),
            ("check_load", "load1", 8.0, 16.0),
        ] {
            master.add_service(ServiceDefinition {
                host: agent.hostname.clone(),
                check: CheckDefinition::new(name, metric, w, c, ThresholdDirection::HighIsBad),
                check_interval: SimDuration::from_mins(5),
                retry_interval: SimDuration::from_mins(1),
                max_check_attempts: 3,
            });
        }
    }
    let agents: BTreeMap<String, &HostAgent> = agents_owned
        .iter()
        .map(|a| (a.hostname.clone(), a))
        .collect();

    // Healthy hour: no alerts.
    for m in 0..60 {
        master.tick(SimTime::ZERO + SimDuration::from_mins(m), &agents);
    }
    println!(
        "after a healthy hour: {} notifications (expected 0)",
        master.notifications.len()
    );

    // A GlusterFS brick fills up; the alert hardens after three checks.
    agents_owned[2].metrics.set("disk_used_pct", 97.5);
    for m in 60..90 {
        master.tick(SimTime::ZERO + SimDuration::from_mins(m), &agents);
    }
    for n in &master.notifications {
        println!(
            "  ALERT @{}: {}/{} {} — {}",
            n.at,
            n.host,
            n.service,
            n.status.label(),
            n.message
        );
    }

    // Operator frees space; recovery notification follows.
    agents_owned[2].metrics.set("disk_used_pct", 41.0);
    for m in 90..120 {
        master.tick(SimTime::ZERO + SimDuration::from_mins(m), &agents);
    }
    let last = master.notifications.last().expect("recovery fired");
    println!(
        "  RECOVERY @{}: {}/{} back to {}",
        last.at,
        last.host,
        last.service,
        last.status.label()
    );

    // --- the in-house usage monitor + public status (§7.4) -------------------
    let mut cloud = CloudController::with_racks("adler", 1);
    for (user, n) in [("alice", 5), ("bob", 2), ("carol", 9)] {
        for i in 0..n {
            cloud
                .boot(
                    user,
                    &format!("{user}-{i}"),
                    "m1.medium",
                    ImageId(1),
                    SimTime::ZERO,
                )
                .expect("capacity");
        }
    }
    let mut usage = CloudUsageMonitor::new();
    let status = usage.sweep(&[&cloud]);
    println!("\npublic status line: {}", status.headline());
    println!(
        "per-user instance counts: alice={}, bob={}, carol={}",
        usage.instances_of("alice"),
        usage.instances_of("bob"),
        usage.instances_of("carol")
    );
    println!("over instance quota (6): {:?}", usage.over_quota(6));
}
