//! Project Matsu: EO-1 flood detection over Namibia (§4.2, Figure 2).
//!
//! ```text
//! cargo run --example matsu_flood_detection
//! ```
//!
//! The earth-science workload end to end: Level-1-like tiles are staged
//! on the Matsu Hadoop cluster, archived go-forward onto OSDC-Root, and
//! the flood/fire analytics run as a locality-scheduled MapReduce job.
//! "Project Matsu is also developing analytics for detecting fire and
//! floods and distributing this information to interested parties."

use osdc::matsu::{detect_floods, generate_scene, SceneParams};
use osdc::storage::FileData;
use osdc::Federation;
use osdc_mapreduce::{DataNodeId, JobConfig, TaskScheduler, BLOCK_SIZE};

fn main() {
    let mut fed = Federation::build(1.2e-7, 11);

    // --- a new EO-1 pass arrives ------------------------------------------
    let params = SceneParams {
        tiles_per_side: 10,
        flood_center: (0.4, 0.55),
        flood_radius: 0.2,
        fires: 8,
        ..Default::default()
    };
    let tiles = generate_scene(&params, 20121015);
    println!(
        "EO-1 pass over Namibia: {} tiles ({} px each)",
        tiles.len(),
        params.tile_size * params.tile_size
    );

    // Stage onto the Matsu HDFS and archive to OSDC-Root (§4.2: "we are
    // also using OSDC-Root to archive data on a go forward basis").
    // Full Hyperion radiance depth: 242 bands × 2 bytes per pixel.
    let scene_bytes = (tiles.len() * params.tile_size * params.tile_size * 242 * 2) as u64;
    fed.matsu
        .create(
            "/eo1/hyperion/2012-10-15/namibia.seq",
            scene_bytes.max(BLOCK_SIZE),
            DataNodeId(3),
        )
        .expect("stage on matsu");
    fed.root
        .write(
            "/archive/eo1/2012-10-15/namibia.seq",
            FileData::synthetic(scene_bytes, 20121015),
            "matsu",
        )
        .expect("archive on root");
    println!(
        "staged on OCC-Matsu, archived on OSDC-Root ({} MB)",
        scene_bytes >> 20
    );

    // --- locality-aware scheduling -----------------------------------------
    let sched = TaskScheduler::new(4);
    let (placements, hist) = sched
        .schedule(&fed.matsu, "/eo1/hyperion/2012-10-15/namibia.seq")
        .expect("schedulable");
    println!(
        "map tasks: {} blocks, {:.0}% data-local",
        placements.len(),
        TaskScheduler::data_local_fraction(&hist) * 100.0
    );

    // --- run the analytics ---------------------------------------------------
    let report = detect_floods(tiles, &JobConfig::default());
    println!(
        "\ndetected {} flooded tiles, {} fire tiles (precision {:.3}, recall {:.3})",
        report.flooded_tiles.len(),
        report.fire_tiles.len(),
        report.water_precision,
        report.water_recall
    );
    // "distributing this information to interested parties":
    let mut alert: Vec<String> = report
        .flooded_tiles
        .iter()
        .map(|(r, c, f)| format!("tile({r},{c}) water={:.0}%", f * 100.0))
        .collect();
    alert.truncate(8);
    println!("flood alert bulletin (first tiles): {}", alert.join("; "));
    assert!(
        report.water_recall > 0.9,
        "the detector must find the flood"
    );
}
