//! UDR vs rsync across the OSDC WAN (§7.2) — plus the real delta engine.
//!
//! ```text
//! cargo run --example wan_transfer
//! ```
//!
//! The §7.2 workflow: "one project generates and preprocesses their data
//! on OSDC-Adler... and then sends it to the OCC-Matsu Hadoop cluster for
//! further analysis. Each time this is performed they have to move
//! several terabytes." First the full-size bulk move with both tools,
//! then an incremental re-sync showing what the rsync algorithm (which
//! UDR reuses wholesale) saves when only a slice changed.

use osdc::crypto::CipherKind;
use osdc::net::{osdc_wan, FluidNet, OsdcSite};
use osdc::transfer::{
    block_size_for, compute_signatures, generate_delta, Protocol, TransferEngine, TransferSpec,
};
use osdc_sim::SimDuration;

fn main() {
    // --- the bulk move: 2 TB Chicago → LVOC ---------------------------------
    let bytes: u64 = 2_000_000_000_000;
    println!("bulk move: 2 TB, Chicago → LVOC (104 ms RTT), one flow\n");
    for (protocol, cipher) in [
        (Protocol::Udr, CipherKind::None),
        (Protocol::Rsync, CipherKind::None),
        (Protocol::Udr, CipherKind::Blowfish),
        (Protocol::Rsync, CipherKind::TripleDes),
    ] {
        let wan = osdc_wan(1.2e-7);
        let src = wan.node(OsdcSite::ChicagoKenwood);
        let dst = wan.node(OsdcSite::Lvoc);
        let mut engine = TransferEngine::new(FluidNet::new(wan.topology, 99));
        let report = engine.run(
            &TransferSpec {
                protocol,
                cipher,
                bytes,
                files: 40,
                src,
                dst,
            },
            SimDuration::from_days(3),
        );
        println!(
            "  {:>6} ({:<13}) {:>6.0} mbit/s  LLR {:.2}  wall {:>8}  ({} transport loss events)",
            report.protocol.label(),
            report.cipher.label(),
            report.mbps,
            report.llr,
            format!("{}", report.duration),
            report.loss_events,
        );
    }

    // --- the re-sync: only 1% changed ----------------------------------------
    // The rsync algorithm both tools share, run for real on bytes.
    println!("\nincremental re-sync (the delta algorithm both tools share):");
    let mut basis = vec![0u8; 8 << 20];
    let mut x = 0x12345u64;
    for b in basis.iter_mut() {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *b = (x >> 56) as u8;
    }
    let mut new_data = basis.clone();
    for b in &mut new_data[4_000_000..4_080_000] {
        *b ^= 0x5A; // ~1% of the file re-processed
    }
    let bs = block_size_for(basis.len());
    let sigs = compute_signatures(&basis, bs);
    let delta = generate_delta(&sigs, &new_data);
    println!(
        "  file {} MiB, block size {} → wire bytes {} KiB ({:.2}% of full), {} ops, {} literal bytes",
        basis.len() >> 20,
        bs,
        delta.wire_bytes() >> 10,
        delta.wire_bytes() as f64 / basis.len() as f64 * 100.0,
        delta.ops.len(),
        delta.literal_bytes,
    );
    assert!(
        delta.wire_bytes() < basis.len() / 20,
        "delta must be far cheaper than a re-send"
    );
}
