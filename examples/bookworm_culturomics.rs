//! Bookworm: culturomics on the OSDC (§4.3).
//!
//! ```text
//! cargo run --example bookworm_culturomics
//! ```
//!
//! "Bookworm uses ngrams extracted from books in the public domain and
//! integrates library metadata, including genre, author information,
//! publication place and date." This example builds the ngram tables
//! with a MapReduce job over a synthetic era-flavoured corpus, runs the
//! signature culturomics trend query, facets it by library metadata, and
//! finishes with full-text search.

use osdc::bookworm::{synthetic_corpus, Bookworm, Facet, Genre};
use osdc_mapreduce::JobConfig;

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    values
        .iter()
        .map(|v| BARS[((v / max * 7.0).round() as usize).min(7)])
        .collect()
}

/// Bucket a trend into decade averages for display.
fn decades(trend: &[(u32, f64)]) -> Vec<(u32, f64)> {
    let mut sums: std::collections::BTreeMap<u32, (f64, u32)> = Default::default();
    for &(year, freq) in trend {
        let e = sums.entry(year / 10 * 10).or_insert((0.0, 0));
        e.0 += freq;
        e.1 += 1;
    }
    sums.into_iter()
        .map(|(decade, (sum, n))| (decade, sum / n as f64))
        .collect()
}

fn main() {
    // A century of public-domain volumes.
    let corpus = synthetic_corpus(1500, 1800, 1920, 1876);
    println!("corpus: {} volumes, 1800–1920\n", corpus.len());
    let bookworm = Bookworm::build(&corpus, &Facet::default(), &JobConfig::default());

    // --- the trend query that made culturomics famous ---------------------
    for word in ["railway", "telegraph", "telephone"] {
        let trend = decades(&bookworm.trend(word));
        let freqs: Vec<f64> = trend.iter().map(|(_, f)| *f).collect();
        println!(
            "{word:>10}  {}  (per-million-words by decade, 1800s→1910s)",
            sparkline(&freqs)
        );
    }

    // --- metadata faceting -------------------------------------------------
    println!("\nfaceted rebuild (fiction printed in London, 1850–1900):");
    let faceted = Bookworm::build(
        &corpus,
        &Facet {
            genre: Some(Genre::Fiction),
            place: Some("London".into()),
            year_range: Some((1850, 1900)),
        },
        &JobConfig::default(),
    );
    println!(
        "  {} volumes admitted; 'telegraph' appears at {:.1} per million words",
        faceted.book_count(),
        faceted
            .trend("telegraph")
            .iter()
            .map(|(_, f)| f)
            .sum::<f64>()
            / faceted.trend("telegraph").len().max(1) as f64
    );

    // --- full-text search ---------------------------------------------------
    println!("\nfull-text search 'telegraph railway' (top 5):");
    for (meta, tf) in bookworm.search("telegraph railway").into_iter().take(5) {
        let genre = format!("({:?})", meta.genre);
        println!(
            "  [{:>4}] {:<12} {:<10} {genre} (tf {tf})",
            meta.year, meta.title, meta.place,
        );
    }
}
