//! Bookworm: the digital-humanities workload (§4.3).
//!
//! "The OSDC supports Bookworm (arxiv.culturomics.org), which is being
//! developed by Harvard's Cultural Observatory and offers a way to
//! interact with digitized book content and full text search. Bookworm
//! uses ngrams extracted from books in the public domain and integrates
//! library metadata, including genre, author information, publication
//! place and date."
//!
//! Implemented as Bookworm actually works: an ngram table keyed by
//! `(gram, year)` built with a MapReduce job over the corpus, faceted by
//! the library metadata; trend queries return per-year relative
//! frequencies (per million words); and an inverted index provides the
//! full-text search. Public-domain books are not shipped in a test
//! suite, so [`synthetic_corpus`] generates era-flavoured text whose
//! vocabulary shifts over publication years — enough signal for the
//! trend machinery to be meaningfully testable.

use std::collections::BTreeMap;

use osdc_mapreduce::{run_job, JobConfig};
use osdc_sim::SimRng;

/// Library metadata — the facets the paper lists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BookMeta {
    pub title: String,
    pub author: String,
    pub genre: Genre,
    pub place: String,
    pub year: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Genre {
    Fiction,
    NonFiction,
    Periodical,
}

/// A digitized public-domain book.
#[derive(Clone, Debug)]
pub struct Book {
    pub id: u32,
    pub meta: BookMeta,
    pub text: String,
}

/// Optional facet restriction on queries.
#[derive(Clone, Debug, Default)]
pub struct Facet {
    pub genre: Option<Genre>,
    pub place: Option<String>,
    pub year_range: Option<(u32, u32)>,
}

impl Facet {
    fn admits(&self, meta: &BookMeta) -> bool {
        self.genre.is_none_or(|g| g == meta.genre)
            && self.place.as_ref().is_none_or(|p| *p == meta.place)
            && self
                .year_range
                .is_none_or(|(lo, hi)| (lo..=hi).contains(&meta.year))
    }
}

/// The built Bookworm instance: ngram tables + inverted index.
pub struct Bookworm {
    /// `(gram, year) → occurrences` for 1-grams.
    unigrams: BTreeMap<(String, u32), u64>,
    /// `year → total words` (the denominator for relative frequency).
    words_per_year: BTreeMap<u32, u64>,
    /// word → postings `(book id, count)`.
    index: BTreeMap<String, Vec<(u32, u32)>>,
    books: BTreeMap<u32, BookMeta>,
}

fn tokenize(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|w| !w.is_empty())
}

impl Bookworm {
    /// Build from a corpus with a MapReduce job (the shape the OSDC's
    /// Hadoop clusters ran): mappers tokenize books, reducers aggregate
    /// `(gram, year)` counts and postings.
    pub fn build(corpus: &[Book], facet: &Facet, config: &JobConfig) -> Bookworm {
        let admitted: Vec<&Book> = corpus.iter().filter(|b| facet.admits(&b.meta)).collect();
        let books: BTreeMap<u32, BookMeta> =
            admitted.iter().map(|b| (b.id, b.meta.clone())).collect();

        // One MapReduce pass emits both the ngram table and the postings.
        #[derive(Clone)]
        enum V {
            Gram(u64),
            Posting(u32, u32),
        }
        let result = run_job(
            admitted
                .iter()
                .map(|b| (b.id, b.meta.year, b.text.clone()))
                .collect::<Vec<_>>(),
            config,
            |(id, year, text), emit| {
                let mut counts: BTreeMap<String, u32> = BTreeMap::new();
                for w in tokenize(&text) {
                    *counts.entry(w.to_ascii_lowercase()).or_insert(0) += 1;
                }
                for (w, c) in counts {
                    emit((w.clone(), year), V::Gram(c as u64));
                    // Postings are year-agnostic; key them under year 0.
                    emit((w, 0), V::Posting(id, c));
                }
            },
            |_k, vs| vs,
        );

        let mut unigrams = BTreeMap::new();
        let mut words_per_year = BTreeMap::new();
        let mut index: BTreeMap<String, Vec<(u32, u32)>> = BTreeMap::new();
        for ((gram, year), values) in result.output {
            for v in values {
                match v {
                    V::Gram(c) => {
                        *unigrams.entry((gram.clone(), year)).or_insert(0) += c;
                        *words_per_year.entry(year).or_insert(0) += c;
                    }
                    V::Posting(book, c) => index.entry(gram.clone()).or_default().push((book, c)),
                }
            }
        }
        for postings in index.values_mut() {
            postings.sort_unstable();
        }
        Bookworm {
            unigrams,
            words_per_year,
            index,
            books,
        }
    }

    pub fn book_count(&self) -> usize {
        self.books.len()
    }

    /// The culturomics trend query: per-year frequency of `gram` in
    /// occurrences per million words, over the corpus years.
    pub fn trend(&self, gram: &str) -> Vec<(u32, f64)> {
        let gram = gram.to_ascii_lowercase();
        self.words_per_year
            .iter()
            .filter(|(&year, _)| year != 0)
            .map(|(&year, &total)| {
                let count = self
                    .unigrams
                    .get(&(gram.clone(), year))
                    .copied()
                    .unwrap_or(0);
                (year, count as f64 / total as f64 * 1e6)
            })
            .collect()
    }

    /// Full-text search: books containing *all* query words, ranked by
    /// summed term frequency, with metadata attached.
    pub fn search(&self, query: &str) -> Vec<(&BookMeta, u32)> {
        let words: Vec<String> = tokenize(query).map(|w| w.to_ascii_lowercase()).collect();
        if words.is_empty() {
            return Vec::new();
        }
        let mut scores: BTreeMap<u32, (u32, usize)> = BTreeMap::new(); // book → (tf sum, words matched)
        for w in &words {
            if let Some(postings) = self.index.get(w) {
                for &(book, c) in postings {
                    let e = scores.entry(book).or_insert((0, 0));
                    e.0 += c;
                    e.1 += 1;
                }
            }
        }
        let mut hits: Vec<(&BookMeta, u32)> = scores
            .into_iter()
            .filter(|(_, (_, matched))| *matched == words.len())
            .map(|(book, (tf, _))| (&self.books[&book], tf))
            .collect();
        hits.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.title.cmp(&b.0.title)));
        hits
    }
}

/// Era-flavoured synthetic corpus: a base vocabulary plus era words that
/// enter the language at a given year and grow — giving trend queries a
/// known ground truth.
pub fn synthetic_corpus(books: usize, year_lo: u32, year_hi: u32, seed: u64) -> Vec<Book> {
    assert!(year_lo < year_hi);
    let mut rng = SimRng::new(seed);
    let base = [
        "the", "of", "and", "to", "in", "a", "is", "was", "he", "she", "it", "land", "house",
        "river", "night", "morning", "letter", "road", "city", "heart",
    ];
    // (word, introduction year): frequency ramps up after introduction.
    let era_words = [
        ("telegraph", 1845u32),
        ("railway", 1830),
        ("photograph", 1860),
        ("telephone", 1880),
        ("aeroplane", 1905),
    ];
    let places = ["London", "Boston", "Edinburgh", "Chicago"];
    let genres = [Genre::Fiction, Genre::NonFiction, Genre::Periodical];
    (0..books as u32)
        .map(|id| {
            let year = rng.range_inclusive(year_lo as u64, year_hi as u64) as u32;
            let mut words: Vec<&str> = Vec::with_capacity(600);
            for _ in 0..600 {
                // Era words appear only after introduction, ramping with age.
                let era_pick =
                    era_words
                        .iter()
                        .filter(|(_, intro)| year >= *intro)
                        .find(|(_, intro)| {
                            let age = (year - intro) as f64;
                            rng.chance((age / 100.0).min(0.04))
                        });
                match era_pick {
                    Some((w, _)) => words.push(w),
                    None => words.push(base[rng.below(base.len() as u64) as usize]),
                }
            }
            Book {
                id,
                meta: BookMeta {
                    title: format!("Volume {id}"),
                    author: format!("Author {}", id % 37),
                    genre: genres[rng.below(3) as usize],
                    place: places[rng.below(4) as usize].to_string(),
                    year,
                },
                text: words.join(" "),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Book> {
        synthetic_corpus(300, 1800, 1920, 42)
    }

    #[test]
    fn trend_shows_the_injected_signal() {
        let bw = Bookworm::build(&corpus(), &Facet::default(), &JobConfig::default());
        let trend = bw.trend("telegraph");
        let before: f64 = trend
            .iter()
            .filter(|(y, _)| *y < 1845)
            .map(|(_, f)| f)
            .sum();
        let after_points: Vec<f64> = trend
            .iter()
            .filter(|(y, _)| *y >= 1880)
            .map(|(_, f)| *f)
            .collect();
        let after = after_points.iter().sum::<f64>() / after_points.len().max(1) as f64;
        assert_eq!(before, 0.0, "no telegraphs before 1845");
        assert!(after > 0.0, "the word must appear after introduction");
    }

    #[test]
    fn base_words_are_flat_and_common() {
        let bw = Bookworm::build(&corpus(), &Facet::default(), &JobConfig::default());
        let trend = bw.trend("the");
        let freqs: Vec<f64> = trend.iter().map(|(_, f)| *f).collect();
        assert!(
            freqs.iter().all(|&f| f > 10_000.0),
            "common word everywhere"
        );
    }

    #[test]
    fn facets_restrict_the_build() {
        let corpus = corpus();
        let all = Bookworm::build(&corpus, &Facet::default(), &JobConfig::default());
        let fiction = Bookworm::build(
            &corpus,
            &Facet {
                genre: Some(Genre::Fiction),
                ..Default::default()
            },
            &JobConfig::default(),
        );
        let london_1800s = Bookworm::build(
            &corpus,
            &Facet {
                place: Some("London".into()),
                year_range: Some((1800, 1850)),
                ..Default::default()
            },
            &JobConfig::default(),
        );
        assert!(fiction.book_count() < all.book_count());
        assert!(london_1800s.book_count() < fiction.book_count() + all.book_count());
        assert!(london_1800s.book_count() > 0);
    }

    #[test]
    fn search_is_conjunctive_and_ranked() {
        let mut corpus = corpus();
        corpus.push(Book {
            id: 9999,
            meta: BookMeta {
                title: "The Telegraph and the Railway".into(),
                author: "I. K. Brunel".into(),
                genre: Genre::NonFiction,
                place: "London".into(),
                year: 1870,
            },
            text: "telegraph railway ".repeat(100) + "bridge iron",
        });
        let bw = Bookworm::build(&corpus, &Facet::default(), &JobConfig::default());
        let hits = bw.search("telegraph railway");
        assert!(!hits.is_empty());
        assert_eq!(
            hits[0].0.title, "The Telegraph and the Railway",
            "highest tf first"
        );
        // Conjunctive: every hit contains both words.
        let railway_only = bw.search("railway");
        assert!(railway_only.len() >= hits.len());
        assert!(bw.search("telegraph zeppelin-nonexistent").is_empty());
        assert!(bw.search("").is_empty());
    }

    #[test]
    fn search_is_case_insensitive() {
        let bw = Bookworm::build(&corpus(), &Facet::default(), &JobConfig::default());
        assert_eq!(bw.search("TELEGRAPH").len(), bw.search("telegraph").len());
    }

    #[test]
    fn build_is_parallelism_invariant() {
        let corpus = corpus();
        let serial = Bookworm::build(
            &corpus,
            &Facet::default(),
            &JobConfig {
                map_workers: 1,
                reducers: 1,
            },
        );
        let parallel = Bookworm::build(
            &corpus,
            &Facet::default(),
            &JobConfig {
                map_workers: 8,
                reducers: 5,
            },
        );
        assert_eq!(serial.trend("railway"), parallel.trend("railway"));
        assert_eq!(
            serial.search("telegraph").len(),
            parallel.search("telegraph").len()
        );
    }
}
