//! The §8 sustainability model, as a multi-year simulation.
//!
//! "The basic philosophy of the OSDC Working group is summarized by the
//! following five rules: 1) Provide some services without charge to any
//! interested researcher. 2) For larger groups and activities that
//! require more OSDC resources, charge for these resources on a cost
//! recovery basis. 3) Partner with university partners to gain research
//! funding... 4) Raise funding from donors and not-for-profits...
//! 5) Work to automate the operation of the OSDC as much as possible in
//! order to reduce the costs of operations."
//!
//! Plus §3.2 rule 7: "Identify a sustainable level of investment in
//! computing infrastructure and operations and invest this amount each
//! year." The simulation plays those rules forward: demand grows, a
//! fixed annual investment buys racks (whose $/core falls along a
//! hardware cost curve), cost-recovery revenue and grants/donations fund
//! operations, and automation (rule 5) shrinks per-rack operating cost.
//! Outputs: capacity vs demand, budget balance, and whether the facility
//! stays solvent — including the paper's own "we will be more than
//! doubling these resources in 2013" trajectory.

use osdc_sim::SimRng;

/// Model parameters (2012 dollars).
#[derive(Clone, Debug)]
pub struct SustainabilityParams {
    /// Years to simulate.
    pub years: u32,
    /// Fixed annual infrastructure investment (§3.2 rule 7).
    pub annual_investment_usd: f64,
    /// Initial racks (the 2012 facility ≈ 8 racks ≈ 2500 cores).
    pub initial_racks: u32,
    /// Rack price in year 0; declines `hardware_cost_decline` per year.
    pub rack_price_usd: f64,
    pub hardware_cost_decline: f64,
    /// Operating cost per rack-year in year 0.
    pub opex_per_rack_usd: f64,
    /// Fractional opex reduction per year from automation (rule 5).
    pub automation_gain: f64,
    /// Demand in rack-equivalents at year 0, and its annual growth (big
    /// data era: demand grows faster than budgets).
    pub initial_demand_racks: f64,
    pub demand_growth: f64,
    /// Fraction of delivered capacity billed at cost recovery (rule 2);
    /// the rest is the free tier (rule 1).
    pub billed_fraction: f64,
    /// Cost-recovery price per rack-year (rule 2: *recovery*, not profit).
    pub recovery_price_usd: f64,
    /// Annual grants + donations (rules 3–4), mean and spread.
    pub grants_mean_usd: f64,
    pub grants_sigma: f64,
}

impl Default for SustainabilityParams {
    fn default() -> Self {
        SustainabilityParams {
            years: 8,
            annual_investment_usd: 600_000.0,
            initial_racks: 8,
            rack_price_usd: 150_000.0,
            hardware_cost_decline: 0.18, // cores/$ improves ~Moore-ish
            opex_per_rack_usd: 190_000.0,
            automation_gain: 0.10,
            initial_demand_racks: 7.0,
            demand_growth: 0.45,
            billed_fraction: 0.7,
            recovery_price_usd: 300_000.0,
            grants_mean_usd: 1_200_000.0,
            grants_sigma: 250_000.0,
        }
    }
}

/// One simulated year.
#[derive(Clone, Debug)]
pub struct YearReport {
    pub year: u32,
    pub racks: u32,
    pub racks_bought: u32,
    /// Demand in rack-equivalents.
    pub demand_racks: f64,
    /// min(demand, capacity) — what was actually delivered.
    pub delivered_racks: f64,
    pub utilization: f64,
    pub revenue_usd: f64,
    pub grants_usd: f64,
    pub costs_usd: f64,
    /// Cumulative reserve (negative = insolvent).
    pub reserve_usd: f64,
}

/// Run the model. Deterministic per seed.
pub fn simulate(params: &SustainabilityParams, seed: u64) -> Vec<YearReport> {
    let mut rng = SimRng::new(seed);
    let mut racks = params.initial_racks;
    let mut demand = params.initial_demand_racks;
    let mut reserve = 0.0f64;
    let mut out = Vec::with_capacity(params.years as usize);
    for year in 0..params.years {
        let decline = (1.0 - params.hardware_cost_decline).powi(year as i32);
        let rack_price = params.rack_price_usd * decline;
        let opex = params.opex_per_rack_usd * (1.0 - params.automation_gain).powi(year as i32);

        // Rule 7: invest the fixed amount; it buys more racks every year
        // as hardware cheapens.
        let bought = (params.annual_investment_usd / rack_price).floor() as u32;
        racks += bought;

        let capacity = racks as f64;
        let delivered = demand.min(capacity);
        let utilization = delivered / capacity;

        // Rules 1+2: the billed fraction pays cost recovery, the free
        // tier pays nothing.
        let revenue = delivered * params.billed_fraction * params.recovery_price_usd;
        // Rules 3+4: grants and donations.
        let grants = rng
            .normal(params.grants_mean_usd, params.grants_sigma)
            .max(0.0);
        let costs = racks as f64 * opex + params.annual_investment_usd;
        reserve += revenue + grants - costs;

        out.push(YearReport {
            year,
            racks,
            racks_bought: bought,
            demand_racks: demand,
            delivered_racks: delivered,
            utilization,
            revenue_usd: revenue,
            grants_usd: grants,
            costs_usd: costs,
            reserve_usd: reserve,
        });
        demand *= 1.0 + params.demand_growth;
    }
    out
}

/// Does the facility stay solvent (reserve never pathologically negative,
/// say beyond one year's investment) through the horizon?
pub fn is_sustainable(reports: &[YearReport], params: &SustainabilityParams) -> bool {
    reports
        .iter()
        .all(|r| r.reserve_usd > -params.annual_investment_usd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_sustainable() {
        let params = SustainabilityParams::default();
        let reports = simulate(&params, 2012);
        assert!(
            is_sustainable(&reports, &params),
            "the OSDC's rules balance: {:#?}",
            reports.last()
        );
        // Growth happens: capacity rises every year (rule 7).
        for w in reports.windows(2) {
            assert!(w[1].racks > w[0].racks);
        }
    }

    #[test]
    fn resources_double_within_two_years() {
        // §3.1: "we will be more than doubling these resources in 2013" —
        // plausible under the model's investment + price decline.
        let params = SustainabilityParams {
            annual_investment_usd: 2_400_000.0, // a doubling-era budget
            ..Default::default()
        };
        let reports = simulate(&params, 1);
        assert!(
            reports[1].racks as f64 >= 1.9 * params.initial_racks as f64,
            "{} racks after two budget years",
            reports[1].racks
        );
    }

    #[test]
    fn no_automation_eventually_hurts() {
        // Rule 5 exists for a reason: without automation gains, opex on a
        // growing fleet swamps the budget.
        let params = SustainabilityParams {
            automation_gain: 0.0,
            years: 10,
            ..Default::default()
        };
        let with = SustainabilityParams::default();
        let frozen = simulate(&params, 3);
        let automated = simulate(&with, 3);
        assert!(
            frozen.last().expect("years > 0").reserve_usd
                < automated[automated.len().min(10) - 1].reserve_usd,
            "automation strictly improves the balance"
        );
    }

    #[test]
    fn underpricing_cost_recovery_is_insolvent() {
        let params = SustainabilityParams {
            recovery_price_usd: 60_000.0, // far below cost
            grants_mean_usd: 200_000.0,
            years: 8,
            ..Default::default()
        };
        let reports = simulate(&params, 5);
        assert!(!is_sustainable(&reports, &params));
    }

    #[test]
    fn utilization_rises_as_demand_outgrows_capacity() {
        let reports = simulate(&SustainabilityParams::default(), 7);
        let first = reports.first().expect("non-empty").utilization;
        let last = reports.last().expect("non-empty").utilization;
        assert!(
            last >= first,
            "demand growth outpaces rack purchases: {first} → {last}"
        );
        assert!(reports.iter().all(|r| r.utilization <= 1.0));
    }

    #[test]
    fn hardware_decline_buys_more_racks_per_year() {
        let reports = simulate(&SustainabilityParams::default(), 9);
        let early = reports[0].racks_bought;
        let late = reports.last().expect("non-empty").racks_bought;
        assert!(
            late > early,
            "same dollars buy more racks later: {early} vs {late}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate(&SustainabilityParams::default(), 11);
        let b = simulate(&SustainabilityParams::default(), 11);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.reserve_usd, y.reserve_usd);
        }
    }
}
