//! Figure 3: the cluster diagram, as a connectivity/operational matrix.
//!
//! "A diagram of the current OSDC clusters, with the solid arrows
//! indicating systems fully operational and accessible with Tukey. The
//! Hadoop clusters are operational and support some of the Tukey
//! services but not all of them."
//!
//! The figure is a graph; this module renders it as a queryable matrix:
//! for every cluster, which Tukey services are live (solid), partial
//! (dashed), or absent — including §6.4's note that billing "will roll
//! out" to the Hadoop clusters later.

/// The Tukey-fronted services of Figure 1's service stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TukeyService {
    VmProvisioning,
    BillingAccounting,
    FileSharing,
    PublicDatasets,
    DatasetIds,
    DataTransport,
}

impl TukeyService {
    pub const ALL: [TukeyService; 6] = [
        TukeyService::VmProvisioning,
        TukeyService::BillingAccounting,
        TukeyService::FileSharing,
        TukeyService::PublicDatasets,
        TukeyService::DatasetIds,
        TukeyService::DataTransport,
    ];

    pub fn label(self) -> &'static str {
        match self {
            TukeyService::VmProvisioning => "VM provisioning",
            TukeyService::BillingAccounting => "billing & accounting",
            TukeyService::FileSharing => "file sharing",
            TukeyService::PublicDatasets => "public datasets",
            TukeyService::DatasetIds => "dataset IDs (ARK)",
            TukeyService::DataTransport => "data transport (UDR)",
        }
    }
}

/// Arrow style in the figure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operational {
    /// Solid arrow: fully operational and accessible with Tukey.
    Solid,
    /// Dashed: operational but only partially integrated with Tukey.
    Dashed,
    /// Not applicable to this cluster.
    Absent,
}

impl Operational {
    pub fn glyph(self) -> &'static str {
        match self {
            Operational::Solid => "──▶",
            Operational::Dashed => "┄┄▶",
            Operational::Absent => "   ",
        }
    }
}

/// The clusters of Figure 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cluster {
    Adler,
    Sullivan,
    Root,
    OccY,
    OccMatsu,
}

impl Cluster {
    pub const ALL: [Cluster; 5] = [
        Cluster::Adler,
        Cluster::Sullivan,
        Cluster::Root,
        Cluster::OccY,
        Cluster::OccMatsu,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Cluster::Adler => "OSDC-Adler",
            Cluster::Sullivan => "OSDC-Sullivan",
            Cluster::Root => "OSDC-Root",
            Cluster::OccY => "OCC-Y",
            Cluster::OccMatsu => "OCC-Matsu",
        }
    }

    pub fn is_hadoop(self) -> bool {
        matches!(self, Cluster::OccY | Cluster::OccMatsu)
    }
}

/// The 2012 state of the facility, per the figure caption and §6.4.
pub fn service_matrix(cluster: Cluster, service: TukeyService) -> Operational {
    use Operational::*;
    use TukeyService::*;
    match (cluster, service) {
        // The utility clouds: everything solid.
        (Cluster::Adler | Cluster::Sullivan, _) => Solid,
        // OSDC-Root is storage: no VMs, no per-VM billing yet.
        (Cluster::Root, VmProvisioning) => Absent,
        (Cluster::Root, BillingAccounting) => Dashed, // storage sweeps only
        (Cluster::Root, _) => Solid,
        // Hadoop clusters: "support some of the Tukey services but not
        // all of them"; billing "will roll out" (§6.4) → dashed.
        (c, VmProvisioning) if c.is_hadoop() => Absent,
        (c, BillingAccounting) if c.is_hadoop() => Dashed,
        (c, FileSharing) if c.is_hadoop() => Dashed,
        (c, _) if c.is_hadoop() => Solid,
        _ => Absent,
    }
}

/// Render the whole matrix as the text form of Figure 3.
pub fn render_matrix() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:22}", "cluster \\ service"));
    for s in TukeyService::ALL {
        out.push_str(&format!("{:>24}", s.label()));
    }
    out.push('\n');
    for c in Cluster::ALL {
        out.push_str(&format!("{:22}", c.label()));
        for s in TukeyService::ALL {
            out.push_str(&format!("{:>24}", service_matrix(c, s).glyph().trim_end()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utility_clouds_are_fully_integrated() {
        for c in [Cluster::Adler, Cluster::Sullivan] {
            for s in TukeyService::ALL {
                assert_eq!(service_matrix(c, s), Operational::Solid, "{c:?}/{s:?}");
            }
        }
    }

    #[test]
    fn hadoop_clusters_are_partial() {
        // The caption: operational, but not all Tukey services.
        for c in [Cluster::OccY, Cluster::OccMatsu] {
            let solid = TukeyService::ALL
                .iter()
                .filter(|&&s| service_matrix(c, s) == Operational::Solid)
                .count();
            let non_solid = TukeyService::ALL.len() - solid;
            assert!(solid > 0, "{c:?} supports some services");
            assert!(non_solid > 0, "{c:?} does not support all services");
        }
    }

    #[test]
    fn billing_not_yet_on_hadoop() {
        // §6.4: "We plan to roll out similar billing and accounting on
        // the Hadoop clusters."
        assert_ne!(
            service_matrix(Cluster::OccY, TukeyService::BillingAccounting),
            Operational::Solid
        );
    }

    #[test]
    fn no_vms_on_storage_or_hadoop() {
        for c in [Cluster::Root, Cluster::OccY, Cluster::OccMatsu] {
            assert_eq!(
                service_matrix(c, TukeyService::VmProvisioning),
                Operational::Absent
            );
        }
    }

    #[test]
    fn render_covers_every_cell() {
        let text = render_matrix();
        for c in Cluster::ALL {
            assert!(text.contains(c.label()));
        }
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + Cluster::ALL.len());
    }
}
