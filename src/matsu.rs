//! Project Matsu: EO-1 satellite analytics on the Hadoop cloud (Figure 2).
//!
//! "Project Matsu is a joint research project with NASA that is
//! developing cloud based infrastructure for processing satellite image
//! data... Project Matsu is also developing analytics for detecting fire
//! and floods and distributing this information to interested parties."
//! Figure 2 shows Hyperion tiles over Namibia "where OSDC researchers are
//! developing algorithms for quickly detecting floods".
//!
//! We cannot redistribute EO-1 Level-1 scenes, so [`generate_scene`]
//! synthesizes Hyperion-like tiles — green/NIR/SWIR band rasters over a
//! land background, with an injected flood (water raises green, crushes
//! NIR) and fire hotspots (SWIR spikes) plus per-pixel ground truth. The
//! detector is the standard NDWI water index (McFeeters) and a SWIR
//! threshold for fire, run as a real MapReduce job over the tiles on
//! `osdc-mapreduce`, scored pixel-exactly against the injected truth.

use osdc_mapreduce::{run_job, JobConfig};
use osdc_sim::SimRng;

/// One synthetic Hyperion-like tile (three bands of a 242-band scene —
/// the ones the flood/fire analytics need).
#[derive(Clone, Debug)]
pub struct Tile {
    pub row: u32,
    pub col: u32,
    pub size: usize,
    /// Reflectances in [0, 1], row-major `size × size`.
    pub green: Vec<f32>,
    pub nir: Vec<f32>,
    pub swir: Vec<f32>,
    /// Injected truth: per-pixel water / fire flags.
    pub truth_water: Vec<bool>,
    pub truth_fire: Vec<bool>,
}

/// Scene generation parameters.
#[derive(Clone, Debug)]
pub struct SceneParams {
    pub tiles_per_side: u32,
    pub tile_size: usize,
    /// Center and radius of the flood ellipse in scene pixel coordinates
    /// (fractions of the scene side in [0,1]).
    pub flood_center: (f64, f64),
    pub flood_radius: f64,
    /// Number of fire hotspots scattered on land.
    pub fires: u32,
    pub noise: f32,
}

impl Default for SceneParams {
    fn default() -> Self {
        SceneParams {
            tiles_per_side: 8,
            tile_size: 64,
            flood_center: (0.35, 0.6),
            flood_radius: 0.18,
            fires: 12,
            noise: 0.02,
        }
    }
}

/// Generate the scene as a vector of tiles (row-major).
pub fn generate_scene(params: &SceneParams, seed: u64) -> Vec<Tile> {
    let mut rng = SimRng::new(seed);
    let n = params.tiles_per_side;
    let ts = params.tile_size;
    let scene_px = (n as usize * ts) as f64;
    // Fire hotspot centers in scene pixels.
    let fires: Vec<(f64, f64)> = (0..params.fires)
        .map(|_| (rng.range_f64(0.0, scene_px), rng.range_f64(0.0, scene_px)))
        .collect();
    let (fcx, fcy) = (
        params.flood_center.0 * scene_px,
        params.flood_center.1 * scene_px,
    );
    let frad = params.flood_radius * scene_px;

    let mut tiles = Vec::with_capacity((n * n) as usize);
    for row in 0..n {
        for col in 0..n {
            let mut tile = Tile {
                row,
                col,
                size: ts,
                green: vec![0.0; ts * ts],
                nir: vec![0.0; ts * ts],
                swir: vec![0.0; ts * ts],
                truth_water: vec![false; ts * ts],
                truth_fire: vec![false; ts * ts],
            };
            for y in 0..ts {
                for x in 0..ts {
                    let sx = col as f64 * ts as f64 + x as f64;
                    let sy = row as f64 * ts as f64 + y as f64;
                    let i = y * ts + x;
                    let noise = || params.noise * 2.0;
                    // Land baseline: vegetation-ish — NIR bright.
                    let mut green = 0.18f32;
                    let mut nir = 0.42f32;
                    let mut swir = 0.20f32;
                    // Flood ellipse: water — green up a touch, NIR crushed.
                    let d = ((sx - fcx).powi(2) + (sy - fcy).powi(2)).sqrt();
                    if d < frad {
                        green = 0.24;
                        nir = 0.06;
                        swir = 0.04;
                        tile.truth_water[i] = true;
                    }
                    // Fire hotspots: small SWIR-saturated disks on land.
                    if !tile.truth_water[i]
                        && fires
                            .iter()
                            .any(|&(fx, fy)| (sx - fx).powi(2) + (sy - fy).powi(2) < 9.0)
                    {
                        swir = 0.95;
                        nir = 0.30;
                        tile.truth_fire[i] = true;
                    }
                    let mut jitter =
                        |v: f32| (v + (rng.f64() as f32 - 0.5) * noise()).clamp(0.0, 1.0);
                    tile.green[i] = jitter(green);
                    tile.nir[i] = jitter(nir);
                    tile.swir[i] = jitter(swir);
                }
            }
            tiles.push(tile);
        }
    }
    tiles
}

/// Per-tile detection output.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TileDetection {
    pub water_pixels: u32,
    pub fire_pixels: u32,
    /// Pixel-level confusion counts vs. the injected truth.
    pub water_tp: u32,
    pub water_fp: u32,
    pub water_fn: u32,
}

/// NDWI water threshold (McFeeters 1996: NDWI > 0 is water; a small
/// positive margin rejects noisy land pixels).
pub const NDWI_THRESHOLD: f32 = 0.15;
/// SWIR reflectance above which a pixel is a thermal anomaly.
pub const FIRE_SWIR_THRESHOLD: f32 = 0.80;

/// Classify one tile.
pub fn detect_tile(tile: &Tile) -> TileDetection {
    let mut out = TileDetection::default();
    for i in 0..tile.size * tile.size {
        let g = tile.green[i];
        let n = tile.nir[i];
        let ndwi = if g + n > 0.0 { (g - n) / (g + n) } else { 0.0 };
        let water = ndwi > NDWI_THRESHOLD;
        let fire = tile.swir[i] > FIRE_SWIR_THRESHOLD;
        if water {
            out.water_pixels += 1;
        }
        if fire {
            out.fire_pixels += 1;
        }
        match (water, tile.truth_water[i]) {
            (true, true) => out.water_tp += 1,
            (true, false) => out.water_fp += 1,
            (false, true) => out.water_fn += 1,
            (false, false) => {}
        }
    }
    out
}

/// Scene-level result of the MapReduce detection job.
#[derive(Clone, Debug)]
pub struct FloodReport {
    /// `(row, col, water fraction)` for tiles flagged as flooded.
    pub flooded_tiles: Vec<(u32, u32, f64)>,
    pub water_precision: f64,
    pub water_recall: f64,
    pub fire_tiles: Vec<(u32, u32)>,
}

/// Tiles whose detected water fraction exceeds this are "flooded".
pub const FLOOD_TILE_FRACTION: f64 = 0.05;

/// Run the flood/fire analytics over a scene as a MapReduce job.
pub fn detect_floods(tiles: Vec<Tile>, config: &JobConfig) -> FloodReport {
    let result = run_job(
        tiles,
        config,
        |tile, emit| {
            let size = (tile.size * tile.size) as f64;
            let det = detect_tile(&tile);
            emit((tile.row, tile.col), (det, size));
        },
        |_key, mut vs| vs.pop().expect("one detection per tile"),
    );
    let mut report = FloodReport {
        flooded_tiles: Vec::new(),
        water_precision: 0.0,
        water_recall: 0.0,
        fire_tiles: Vec::new(),
    };
    let (mut tp, mut fp, mut fneg) = (0u64, 0u64, 0u64);
    for ((row, col), (det, size)) in result.output {
        let frac = det.water_pixels as f64 / size;
        if frac > FLOOD_TILE_FRACTION {
            report.flooded_tiles.push((row, col, frac));
        }
        if det.fire_pixels > 0 {
            report.fire_tiles.push((row, col));
        }
        tp += det.water_tp as u64;
        fp += det.water_fp as u64;
        fneg += det.water_fn as u64;
    }
    report.water_precision = if tp + fp == 0 {
        1.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    report.water_recall = if tp + fneg == 0 {
        1.0
    } else {
        tp as f64 / (tp + fneg) as f64
    };
    report
}

/// Render the scene + detection overlay as a binary PGM (P5) image — the
/// actual artifact Figure 2 shows (a tile mosaic with detected flood
/// areas). NIR reflectance forms the base layer; detected water is pulled
/// to black, detected fire to white.
pub fn render_pgm(tiles: &[Tile], tiles_per_side: u32) -> Vec<u8> {
    assert!(!tiles.is_empty());
    let ts = tiles[0].size;
    let side = tiles_per_side as usize * ts;
    let mut pixels = vec![0u8; side * side];
    for tile in tiles {
        let det_base_y = tile.row as usize * ts;
        let det_base_x = tile.col as usize * ts;
        for y in 0..ts {
            for x in 0..ts {
                let i = y * ts + x;
                let g = tile.green[i];
                let n = tile.nir[i];
                let ndwi = if g + n > 0.0 { (g - n) / (g + n) } else { 0.0 };
                let v = if tile.swir[i] > FIRE_SWIR_THRESHOLD {
                    255 // fire: white
                } else if ndwi > NDWI_THRESHOLD {
                    0 // water: black
                } else {
                    (tile.nir[i] * 420.0).clamp(40.0, 220.0) as u8
                };
                pixels[(det_base_y + y) * side + det_base_x + x] = v;
            }
        }
    }
    let mut out = format!("P5\n{side} {side}\n255\n").into_bytes();
    out.extend_from_slice(&pixels);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_renders_scene_with_flood_contrast() {
        let params = SceneParams::default();
        let tiles = generate_scene(&params, 42);
        let pgm = render_pgm(&tiles, params.tiles_per_side);
        let side = params.tiles_per_side as usize * params.tile_size;
        let header = format!("P5\n{side} {side}\n255\n");
        assert!(pgm.starts_with(header.as_bytes()));
        assert_eq!(pgm.len(), header.len() + side * side);
        let pixels = &pgm[header.len()..];
        // Water pixels are black and present; land is mid-grey.
        let black = pixels.iter().filter(|&&p| p == 0).count();
        let land = pixels.iter().filter(|&&p| (40..=220).contains(&p)).count();
        assert!(black > 1000, "flood renders black: {black}");
        assert!(land > black, "land dominates the scene");
    }

    #[test]
    fn detector_is_near_exact_on_clean_synthetic_water() {
        let tiles = generate_scene(&SceneParams::default(), 42);
        let report = detect_floods(tiles, &JobConfig::default());
        assert!(
            report.water_precision > 0.98,
            "precision {}",
            report.water_precision
        );
        assert!(report.water_recall > 0.98, "recall {}", report.water_recall);
    }

    #[test]
    fn flooded_tiles_cluster_around_the_injected_center() {
        let params = SceneParams::default();
        let tiles = generate_scene(&params, 7);
        let report = detect_floods(tiles, &JobConfig::default());
        assert!(!report.flooded_tiles.is_empty());
        // The flood center in tile coordinates.
        let n = params.tiles_per_side as f64;
        let (cx, cy) = (params.flood_center.0 * n, params.flood_center.1 * n);
        for &(row, col, frac) in &report.flooded_tiles {
            let d = ((col as f64 + 0.5 - cx).powi(2) + (row as f64 + 0.5 - cy).powi(2)).sqrt();
            assert!(
                d < params.flood_radius * n + 1.5,
                "tile ({row},{col}) frac {frac:.2} too far from flood center"
            );
        }
    }

    #[test]
    fn dry_scene_has_no_flood() {
        let params = SceneParams {
            flood_radius: 0.0,
            fires: 0,
            ..Default::default()
        };
        let tiles = generate_scene(&params, 3);
        let report = detect_floods(tiles, &JobConfig::default());
        assert!(report.flooded_tiles.is_empty());
        assert!(report.fire_tiles.is_empty());
        assert_eq!(report.water_recall, 1.0, "vacuous recall on no water");
    }

    #[test]
    fn fires_are_detected_on_land() {
        let params = SceneParams {
            fires: 20,
            ..Default::default()
        };
        let tiles = generate_scene(&params, 11);
        let report = detect_floods(tiles, &JobConfig::default());
        assert!(!report.fire_tiles.is_empty(), "hotspots must be seen");
    }

    #[test]
    fn parallelism_does_not_change_the_answer() {
        let tiles = generate_scene(&SceneParams::default(), 5);
        let serial = detect_floods(
            tiles.clone(),
            &JobConfig {
                map_workers: 1,
                reducers: 1,
            },
        );
        let parallel = detect_floods(
            tiles,
            &JobConfig {
                map_workers: 8,
                reducers: 4,
            },
        );
        assert_eq!(serial.flooded_tiles, parallel.flooded_tiles);
        assert_eq!(serial.water_precision, parallel.water_precision);
    }

    #[test]
    fn scene_is_deterministic_per_seed() {
        let a = generate_scene(&SceneParams::default(), 9);
        let b = generate_scene(&SceneParams::default(), 9);
        assert_eq!(a[0].green, b[0].green);
        let c = generate_scene(&SceneParams::default(), 10);
        assert_ne!(a[0].green, c[0].green);
    }

    #[test]
    fn truth_masks_are_consistent() {
        let tiles = generate_scene(&SceneParams::default(), 13);
        for t in &tiles {
            for i in 0..t.size * t.size {
                assert!(
                    !(t.truth_water[i] && t.truth_fire[i]),
                    "a pixel cannot be both water and fire"
                );
            }
        }
    }
}
