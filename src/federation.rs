//! The OCC resource federation — Table 2, assembled and runnable.
//!
//! | Resource               | Type                                   | Size                        |
//! |------------------------|----------------------------------------|-----------------------------|
//! | OSDC-Adler & Sullivan  | OpenStack & Eucalyptus utility cloud   | 1248 cores, 1.2 PB disk     |
//! | OSDC-Root              | Storage cloud                          | ~1 PB of disk               |
//! | OCC-Y                  | Hadoop data cloud                      | 928 cores, 1.0 PB disk      |
//! | OCC-Matsu              | Hadoop data cloud                      | ~120 cores, 100 TB          |
//!
//! [`Federation::build`] constructs all of it: the utility clouds behind
//! one Tukey console, the GlusterFS-style volumes of §7.1 (Adler 156 TB,
//! Sullivan 38 TB, Root 459 TB usable shares), the two Hadoop clusters,
//! the four-site WAN, and a Nagios master watching brick hosts.

use osdc_mapreduce::Hdfs;
use osdc_monitor::{CheckDefinition, NagiosMaster, ServiceDefinition, ThresholdDirection};
use osdc_net::wan::{osdc_wan, OsdcWan};
use osdc_sim::SimDuration;
use osdc_storage::{GlusterVersion, SambaExport, Volume};
use osdc_tukey::auth::AuthProxy;
use osdc_tukey::translation::osdc_proxy;
use osdc_tukey::TukeyConsole;

const TB: u64 = 1_000_000_000_000;

/// One row of the Table 2 inventory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterSummary {
    pub resource: String,
    pub kind: String,
    pub cores: u32,
    pub disk_tb: u64,
}

/// The assembled OSDC.
pub struct Federation {
    /// Tukey console fronting OSDC-Adler (OpenStack) and OSDC-Sullivan
    /// (Eucalyptus) — 2 racks each, 1248 cores total.
    pub console: TukeyConsole,
    /// The §7.1 GlusterFS shares, behind their Samba permission gates.
    pub adler_share: SambaExport,
    pub sullivan_share: SambaExport,
    /// OSDC-Root: the PB-scale storage cloud (459 TB usable share).
    pub root: Volume,
    /// OCC-Y: 928 cores / 116 nodes of Hadoop.
    pub occ_y: Hdfs,
    /// OCC-Matsu: ~120 cores / 15 nodes of Hadoop.
    pub matsu: Hdfs,
    /// The four-site 10G WAN.
    pub wan: OsdcWan,
    /// Nagios watching the storage bricks.
    pub nagios: NagiosMaster,
}

impl Federation {
    /// Build the whole facility with the paper's sizes.
    ///
    /// `long_haul_loss` is the Table 3 WAN calibration knob (1.2e-7 is
    /// the documented default); `seed` drives every stochastic component.
    pub fn build(long_haul_loss: f64, seed: u64) -> Federation {
        let auth = AuthProxy::new();
        // 2 racks each → 624 + 624 = 1248 cores (Table 2 row 1).
        let console = TukeyConsole::new(auth, osdc_proxy(2));

        // §7.1: primary data stores, replica-2 over standard bricks.
        let mk_volume = |name: &str, usable_tb: u64, brick_tb: u64, s: u64| {
            let bricks = ((usable_tb * 2) / brick_tb).max(2) as usize;
            let bricks = bricks + bricks % 2; // replica-2 needs pairs
            Volume::new(
                name,
                GlusterVersion::V3_3,
                bricks,
                2,
                brick_tb * TB,
                seed ^ s,
            )
        };
        let adler_share = SambaExport::new(mk_volume("osdc-adler", 156, 8, 1));
        let sullivan_share = SambaExport::new(mk_volume("osdc-sullivan", 38, 8, 2));
        let root = mk_volume("osdc-root", 459, 8, 3);

        // OCC-Y: 928 cores / 8 = 116 nodes, 4 racks of 29.
        let occ_y = Hdfs::new(4, 29, seed ^ 4);
        // OCC-Matsu: ~120 cores → 15 nodes over 3 racks of 5.
        let matsu = Hdfs::new(3, 5, seed ^ 5);

        // Nagios: disk and load checks on a representative brick host per
        // volume (the full deployment wires one per server).
        let mut nagios = NagiosMaster::new();
        for host in ["adler-brick0", "sullivan-brick0", "root-brick0"] {
            nagios.add_service(ServiceDefinition {
                host: host.to_string(),
                check: CheckDefinition::new(
                    "check_disk",
                    "disk_used_pct",
                    80.0,
                    95.0,
                    ThresholdDirection::HighIsBad,
                ),
                check_interval: SimDuration::from_mins(5),
                retry_interval: SimDuration::from_mins(1),
                max_check_attempts: 3,
            });
        }

        Federation {
            console,
            adler_share,
            sullivan_share,
            root,
            occ_y,
            matsu,
            wan: osdc_wan(long_haul_loss),
            nagios,
        }
    }

    /// The Table 2 inventory rows, computed from the live objects.
    pub fn inventory(&self) -> Vec<ClusterSummary> {
        let adler = self.console.proxy.controller("adler").expect("built");
        let sullivan = self.console.proxy.controller("sullivan").expect("built");
        let utility_cores = adler.total_cores() + sullivan.total_cores();
        let utility_disk_tb = (adler.total_disk_gb() + sullivan.total_disk_gb()) / 1000;
        vec![
            ClusterSummary {
                resource: "OSDC-Adler & Sullivan".into(),
                kind: "OpenStack & Eucalyptus based utility cloud".into(),
                cores: utility_cores,
                disk_tb: utility_disk_tb,
            },
            ClusterSummary {
                resource: "OSDC-Root".into(),
                kind: "Storage cloud".into(),
                cores: 0,
                disk_tb: self.root.total_capacity_bytes() / TB,
            },
            ClusterSummary {
                resource: "OCC-Y".into(),
                kind: "Hadoop data cloud".into(),
                cores: self.occ_y.node_count() as u32 * 8,
                disk_tb: self.occ_y.node_count() as u64 * 8, // 8 TB/server
            },
            ClusterSummary {
                resource: "OCC-Matsu".into(),
                kind: "Hadoop data cloud".into(),
                cores: self.matsu.node_count() as u32 * 8,
                disk_tb: self.matsu.node_count() as u64 * 8,
            },
        ]
    }

    /// Facility totals for the abstract's "more than 2000 cores and 2 PB"
    /// headline.
    pub fn total_cores(&self) -> u32 {
        self.inventory().iter().map(|c| c.cores).sum()
    }

    pub fn total_disk_tb(&self) -> u64 {
        self.inventory().iter().map(|c| c.disk_tb).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_table2() {
        let fed = Federation::build(1.2e-7, 42);
        let inv = fed.inventory();
        assert_eq!(inv.len(), 4);
        // Row 1: 1248 cores (Table 2), ~1.2 PB.
        assert_eq!(inv[0].cores, 1248);
        assert!(
            (1100..=1300).contains(&inv[0].disk_tb),
            "{}",
            inv[0].disk_tb
        );
        // Row 2: approximately 1 PB of disk (459 TB usable ×2 replicas).
        assert!((900..=1100).contains(&inv[1].disk_tb), "{}", inv[1].disk_tb);
        // Row 3: 928 cores and 1.0 PB.
        assert_eq!(inv[2].cores, 928);
        assert!((900..=1000).contains(&inv[2].disk_tb), "{}", inv[2].disk_tb);
        // Row 4: approximately 120 cores and 100 TB.
        assert_eq!(inv[3].cores, 120);
        assert!((100..=130).contains(&inv[3].disk_tb), "{}", inv[3].disk_tb);
    }

    #[test]
    fn abstract_headline_holds() {
        // "more than 2000 cores and 2 PB of storage distributed across
        // four data centers connected by 10G networks".
        let fed = Federation::build(1.2e-7, 42);
        assert!(fed.total_cores() > 2000, "{}", fed.total_cores());
        assert!(fed.total_disk_tb() > 2000, "{} TB", fed.total_disk_tb());
        assert_eq!(fed.wan.topology.node_count(), 5); // 4 DCs + StarLight
    }

    #[test]
    fn gluster_shares_match_section_7_1() {
        let fed = Federation::build(1.2e-7, 1);
        // §7.1 usable sizes: Adler 156 TB, Sullivan 38 TB, Root 459 TB.
        fed.adler_share.with_volume(|v| {
            assert!((150..=170).contains(&(v.usable_capacity_bytes() / TB)));
        });
        fed.sullivan_share.with_volume(|v| {
            assert!((36..=44).contains(&(v.usable_capacity_bytes() / TB)));
        });
        assert!((450..=470).contains(&(fed.root.usable_capacity_bytes() / TB)));
    }

    #[test]
    fn console_reaches_both_clouds() {
        let fed = Federation::build(1.2e-7, 7);
        let names = fed.console.proxy.cloud_names();
        assert_eq!(names, vec!["adler", "sullivan"]);
    }

    #[test]
    fn federation_is_deterministic() {
        let a = Federation::build(1.2e-7, 9);
        let b = Federation::build(1.2e-7, 9);
        assert_eq!(a.inventory(), b.inventory());
    }
}
