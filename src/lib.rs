//! # osdc — OSDC-in-a-box
//!
//! An executable reproduction of *The Design of a Community Science
//! Cloud: The Open Science Data Cloud Perspective* (SC Companion 2012).
//! This facade crate assembles the substrate crates into the complete
//! facility the paper describes and hosts the cross-cutting models its
//! evaluation needs:
//!
//! * [`federation`] — the Open Cloud Consortium resource inventory of
//!   Table 2: OSDC-Adler & OSDC-Sullivan (utility clouds under Tukey),
//!   OSDC-Root (the PB-scale storage cloud), OCC-Y and OCC-Matsu (Hadoop
//!   data clouds), wired over the four-site 10G WAN;
//! * [`csp`] — the commercial-vs-science CSP contrast of Table 1, made
//!   measurable: flow-mix workloads on each provider profile, plus the
//!   lock-in (image portability) check;
//! * [`cost`] — §9.1's "why not just use Amazon?" cost model and the
//!   ~80 %-utilization crossover;
//! * [`matsu`] — Project Matsu (Figure 2): a synthetic EO-1/Hyperion tile
//!   generator with injected floods and fires, and the MapReduce
//!   detection analytics;
//! * [`figure3`] — the cluster/Tukey connectivity matrix of Figure 3
//!   (which services are fully operational per cluster — solid vs dashed
//!   arrows).
//!
//! Re-exports put the whole public API under one roof: start from
//! [`federation::Federation::build`] (see `examples/quickstart.rs`).

pub mod bookworm;
pub mod cost;
pub mod csp;
pub mod federation;
pub mod figure3;
pub mod matsu;
pub mod sustainability;

pub use federation::{ClusterSummary, Federation};

// The substrate crates, re-exported for downstream users.
pub use osdc_chaos as chaos;
pub use osdc_compute as compute;
pub use osdc_crypto as crypto;
pub use osdc_mapreduce as mapreduce;
pub use osdc_monitor as monitor;
pub use osdc_net as net;
pub use osdc_provision as provision;
pub use osdc_sharing as sharing;
pub use osdc_sim as sim;
pub use osdc_storage as storage;
pub use osdc_transfer as transfer;
pub use osdc_tukey as tukey;
