//! Table 1, made measurable: commercial CSP vs. science CSP.
//!
//! The paper's contrast:
//!
//! * *Computing and storage* — commercial clouds optimize scale-out web
//!   serving and object storage; science clouds "also support data
//!   intensive computing and high performance storage".
//! * *Flows* — commercial traffic is "lots of small web flows"; science
//!   traffic is "also large incoming and outgoing data flows".
//! * *Lock in* — "lock in is good" commercially; science clouds make it
//!   "important to support moving data and computation between CSPs".
//!
//! [`CspProfile`] encodes the infrastructure differences that produce
//! those rows: per-instance NIC caps and oversubscribed egress on the
//! commercial side, 10G end-to-end paths with high-performance storage on
//! the science side, and image exportability. [`run_flow_mix`] then runs
//! the two workload shapes on either profile and reports what each was
//! built for.

use osdc_net::{CongestionControl, FlowSpec, FluidNet, Topology};
use osdc_sim::stats::Summary;
use osdc_sim::{SimDuration, SimTime};

/// Infrastructure parameters distinguishing the two provider kinds.
#[derive(Clone, Debug)]
pub struct CspProfile {
    pub name: String,
    /// Per-flow ceiling (instance NIC / throttled object store), bits/s.
    pub per_flow_cap_bps: f64,
    /// Shared egress capacity, bits/s.
    pub egress_bps: f64,
    /// Competing tenant flows on the shared egress.
    pub background_flows: usize,
    /// Rate of each background flow, bits/s.
    pub background_rate_bps: f64,
    /// One-way edge latency.
    pub edge_delay: SimDuration,
    /// Whether machine images can be exported to another CSP (Table 1's
    /// lock-in row).
    pub images_exportable: bool,
}

impl CspProfile {
    /// A 2012 commercial cloud: ~300 mbit/s instance NICs, heavily shared
    /// egress, image lock-in.
    pub fn commercial() -> CspProfile {
        CspProfile {
            name: "commercial".into(),
            per_flow_cap_bps: 300e6,
            egress_bps: 10e9,
            background_flows: 24,
            background_rate_bps: 350e6,
            edge_delay: SimDuration::from_millis(10),
            images_exportable: false,
        }
    }

    /// A science cloud per §9.1: "they connect to high performance 10G
    /// and 100G networks, they support high performance storage".
    pub fn science() -> CspProfile {
        CspProfile {
            name: "science".into(),
            per_flow_cap_bps: 1136e6, // the high-performance storage path
            egress_bps: 10e9,
            background_flows: 2,
            background_rate_bps: 350e6,
            edge_delay: SimDuration::from_millis(10),
            images_exportable: true,
        }
    }
}

/// The two traffic shapes of Table 1's "Flows" row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowMix {
    /// "lots of small web flows": many ~100 KB transfers.
    SmallWeb { flows: usize },
    /// "large incoming and outgoing data flows": a few multi-GB bulk
    /// transfers (downscaled from multi-TB to keep runs quick; steady
    /// state is identical).
    Elephant { flows: usize, gb_each: u64 },
}

/// What each workload cares about.
#[derive(Clone, Debug)]
pub struct FlowMixReport {
    pub profile: String,
    /// Mean completion time of small flows, milliseconds.
    pub small_flow_ms: Option<f64>,
    /// Aggregate goodput of elephant flows, mbit/s.
    pub elephant_mbps: Option<f64>,
}

/// Step the network until every listed flow completes (background flows
/// are unbounded and would otherwise pin the simulation to its deadline).
fn run_until_done(net: &mut FluidNet, flows: &[osdc_net::FlowId], deadline: SimTime) {
    while net.now() < deadline
        && flows
            .iter()
            .any(|&f| net.status(f) == osdc_net::FlowStatus::Active)
    {
        net.step();
    }
}

/// Run one flow mix on one provider profile.
pub fn run_flow_mix(profile: &CspProfile, mix: FlowMix, seed: u64) -> FlowMixReport {
    // Customer ↔ edge ↔ internet: the shared egress is the middle link.
    let mut topo = Topology::new();
    let dc = topo.add_node("datacenter");
    let edge = topo.add_node("edge");
    let inet = topo.add_node("internet");
    topo.add_duplex_link(dc, edge, profile.egress_bps, profile.edge_delay, 0.0);
    topo.add_duplex_link(edge, inet, 100e9, SimDuration::from_millis(20), 0.0);
    let mut net = FluidNet::new(topo, seed);
    // Tenant background load on the shared egress.
    for _ in 0..profile.background_flows {
        net.start_flow(FlowSpec {
            src: dc,
            dst: inet,
            bytes: u64::MAX,
            cc: CongestionControl::Constant {
                rate_bps: profile.background_rate_bps,
            },
            app_limit_bps: profile.per_flow_cap_bps,
        })
        .expect("route");
    }
    let rtt = net
        .topology()
        .rtt(dc, inet)
        .expect("connected")
        .as_secs_f64();
    match mix {
        FlowMix::SmallWeb { flows } => {
            let ids: Vec<_> = (0..flows)
                .map(|_| {
                    net.start_flow(FlowSpec {
                        src: dc,
                        dst: inet,
                        bytes: 100_000,
                        cc: CongestionControl::reno(rtt),
                        app_limit_bps: profile.per_flow_cap_bps,
                    })
                    .expect("route")
                })
                .collect();
            let deadline = SimTime::ZERO + SimDuration::from_mins(10);
            run_until_done(&mut net, &ids, deadline);
            let mut s = Summary::new();
            for id in ids {
                if let osdc_net::FlowStatus::Done { at } = net.status(id) {
                    // Add the request round trip a web fetch pays.
                    s.record(at.as_secs_f64() * 1e3 + rtt * 1e3);
                }
            }
            FlowMixReport {
                profile: profile.name.clone(),
                small_flow_ms: Some(s.mean()),
                elephant_mbps: None,
            }
        }
        FlowMix::Elephant { flows, gb_each } => {
            let ids: Vec<_> = (0..flows)
                .map(|_| {
                    net.start_flow(FlowSpec {
                        src: dc,
                        dst: inet,
                        bytes: gb_each * 1_000_000_000,
                        cc: CongestionControl::udt(profile.egress_bps),
                        app_limit_bps: profile.per_flow_cap_bps,
                    })
                    .expect("route")
                })
                .collect();
            let deadline = SimTime::ZERO + SimDuration::from_hours(12);
            run_until_done(&mut net, &ids, deadline);
            let total_mbps: f64 = ids
                .iter()
                .filter_map(|&id| net.average_throughput_bps(id))
                .map(|bps| bps / 1e6)
                .sum();
            FlowMixReport {
                profile: profile.name.clone(),
                small_flow_ms: None,
                elephant_mbps: Some(total_mbps),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_serve_small_web_flows_fine() {
        // The commercial profile is *built* for this; the science profile
        // must not be worse in any meaningful way.
        let c = run_flow_mix(
            &CspProfile::commercial(),
            FlowMix::SmallWeb { flows: 50 },
            1,
        );
        let s = run_flow_mix(&CspProfile::science(), FlowMix::SmallWeb { flows: 50 }, 1);
        let (cm, sm) = (c.small_flow_ms.expect("ms"), s.small_flow_ms.expect("ms"));
        assert!(cm < 2000.0, "commercial small flows complete quickly: {cm}");
        assert!(
            sm < 2.0 * cm,
            "science is comparable on small flows: {sm} vs {cm}"
        );
    }

    #[test]
    fn science_wins_decisively_on_elephants() {
        let mix = FlowMix::Elephant {
            flows: 3,
            gb_each: 20,
        };
        let c = run_flow_mix(&CspProfile::commercial(), mix, 2);
        let s = run_flow_mix(&CspProfile::science(), mix, 2);
        let (ce, se) = (
            c.elephant_mbps.expect("mbps"),
            s.elephant_mbps.expect("mbps"),
        );
        assert!(
            se > 2.0 * ce,
            "science elephants ({se:.0} mbit/s) ≫ commercial ({ce:.0} mbit/s)"
        );
    }

    #[test]
    fn per_flow_cap_binds_commercial_elephants() {
        let c = run_flow_mix(
            &CspProfile::commercial(),
            FlowMix::Elephant {
                flows: 1,
                gb_each: 10,
            },
            3,
        );
        let mbps = c.elephant_mbps.expect("mbps");
        assert!(
            (200.0..=310.0).contains(&mbps),
            "one commercial elephant is NIC-capped: {mbps:.0}"
        );
    }

    #[test]
    fn lock_in_row() {
        assert!(!CspProfile::commercial().images_exportable);
        assert!(CspProfile::science().images_exportable);
    }

    #[test]
    fn deterministic() {
        let mix = FlowMix::Elephant {
            flows: 2,
            gb_each: 5,
        };
        let a = run_flow_mix(&CspProfile::science(), mix, 9);
        let b = run_flow_mix(&CspProfile::science(), mix, 9);
        assert_eq!(a.elephant_mbps, b.elephant_mbps);
    }
}
