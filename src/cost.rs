//! The §9.1 cost model: "Why not just use Amazon?"
//!
//! "As a rough rule of thumb, when we operate an OSDC rack at
//! approximately 80% efficiency or greater, it is less expensive than
//! using Amazon for the same services." (A rack is "39 servers, each
//! with 8 cores and 8 TB of disk".)
//!
//! The model amortizes rack capital over its service life, adds monthly
//! operations (power, cooling, space, the CSOC admin share of §2), and
//! compares the resulting cost per *utilized* core-hour with the
//! equivalent AWS on-demand price. The crossover utilization is where
//! the curves meet; experiment X2 sweeps it.

/// Cost parameters, 2012-calibrated.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Rack hardware capital, USD.
    pub rack_capex_usd: f64,
    /// Amortization period, months.
    pub amortization_months: f64,
    /// Power, cooling, space, support share — USD per month.
    pub rack_opex_usd_month: f64,
    /// Cores per rack (39 × 8).
    pub rack_cores: u32,
    /// AWS effective on-demand price per core-hour, USD (2012 m1-class
    /// blend).
    pub aws_core_hour_usd: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            rack_capex_usd: 150_000.0,
            amortization_months: 36.0,
            rack_opex_usd_month: 15_800.0,
            rack_cores: 39 * 8,
            aws_core_hour_usd: 0.112,
        }
    }
}

/// Hours per month used in the amortization arithmetic.
const HOURS_PER_MONTH: f64 = 720.0;

impl CostModel {
    /// Total monthly cost of owning and running one rack.
    pub fn rack_monthly_usd(&self) -> f64 {
        self.rack_capex_usd / self.amortization_months + self.rack_opex_usd_month
    }

    /// Core-hours a rack *delivers* per month at a given utilization.
    pub fn utilized_core_hours(&self, utilization: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&utilization));
        self.rack_cores as f64 * HOURS_PER_MONTH * utilization
    }

    /// Cost per utilized core-hour at a given utilization; infinite at 0.
    pub fn osdc_core_hour_usd(&self, utilization: f64) -> f64 {
        let hours = self.utilized_core_hours(utilization);
        if hours == 0.0 {
            f64::INFINITY
        } else {
            self.rack_monthly_usd() / hours
        }
    }

    /// Utilization above which the OSDC rack beats AWS.
    pub fn crossover_utilization(&self) -> f64 {
        // osdc(u) = monthly / (cores · 720 · u) = aws  ⇒  u* solves directly.
        (self.rack_monthly_usd()
            / (self.rack_cores as f64 * HOURS_PER_MONTH * self.aws_core_hour_usd))
            .min(1.0)
    }

    /// Sweep: `(utilization, osdc $/core-hr, aws $/core-hr)` rows.
    pub fn sweep(&self, points: usize) -> Vec<(f64, f64, f64)> {
        (1..=points)
            .map(|i| {
                let u = i as f64 / points as f64;
                (u, self.osdc_core_hour_usd(u), self.aws_core_hour_usd)
            })
            .collect()
    }

    /// Monthly saving (positive) or loss (negative) of running one rack
    /// at `utilization` instead of buying the same used hours from AWS.
    pub fn monthly_saving_usd(&self, utilization: f64) -> f64 {
        self.utilized_core_hours(utilization) * self.aws_core_hour_usd - self.rack_monthly_usd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_is_near_eighty_percent() {
        // The paper's rule of thumb.
        let m = CostModel::default();
        let u = m.crossover_utilization();
        assert!(
            (0.75..0.85).contains(&u),
            "crossover at {:.0}% (paper: ~80%)",
            u * 100.0
        );
    }

    #[test]
    fn above_crossover_osdc_is_cheaper() {
        let m = CostModel::default();
        let u = m.crossover_utilization();
        assert!(m.osdc_core_hour_usd(u + 0.05) < m.aws_core_hour_usd);
        assert!(m.osdc_core_hour_usd(u - 0.05) > m.aws_core_hour_usd);
        assert!(m.monthly_saving_usd(u + 0.05) > 0.0);
        assert!(m.monthly_saving_usd(u - 0.05) < 0.0);
    }

    #[test]
    fn zero_utilization_is_infinitely_expensive() {
        let m = CostModel::default();
        assert_eq!(m.osdc_core_hour_usd(0.0), f64::INFINITY);
    }

    #[test]
    fn cost_decreases_monotonically_with_utilization() {
        let m = CostModel::default();
        let sweep = m.sweep(20);
        assert_eq!(sweep.len(), 20);
        for w in sweep.windows(2) {
            assert!(w[0].1 > w[1].1, "cost must fall as utilization rises");
        }
        assert!((sweep.last().expect("non-empty").0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cheap_cloud_never_crosses() {
        // If AWS were nearly free the crossover clamps at 100%.
        let m = CostModel {
            aws_core_hour_usd: 0.001,
            ..Default::default()
        };
        assert_eq!(m.crossover_utilization(), 1.0);
    }

    #[test]
    fn monthly_cost_includes_amortization() {
        let m = CostModel::default();
        assert!((m.rack_monthly_usd() - (150_000.0 / 36.0 + 15_800.0)).abs() < 1e-9);
    }
}
