//! Cross-crate failure drills: storage loss, monitoring reaction, and
//! recovery — the operational lessons of §4.1 and §7.1 chained together.

use std::collections::BTreeMap;

use osdc::monitor::{
    CheckDefinition, CheckStatus, HostAgent, NagiosMaster, ServiceDefinition, ThresholdDirection,
};
use osdc::storage::{BackupService, BrickId, FileData, GlusterVersion, Volume};
use osdc_sim::{SimDuration, SimRng, SimTime};

/// The full §7.1 story in one test: v3.1 loses data under the silent
/// mirror-drop bug, the upgrade to v3.3 plus heal makes the same failure
/// pattern lossless.
#[test]
fn gluster_upgrade_story() {
    let write_corpus = |vol: &mut Volume| -> Vec<String> {
        (0..300)
            .map(|i| {
                let p = format!("/data/f{i}");
                vol.write(&p, FileData::synthetic(1 << 16, i), "lab")
                    .expect("write");
                p
            })
            .collect()
    };

    // Era 1: v3.1 with the mirroring defect.
    let mut v31 = Volume::new(
        "adler-v31",
        GlusterVersion::V3_1 {
            replica_drop_prob: 0.2,
        },
        6,
        2,
        1 << 33,
        1,
    );
    let paths31 = write_corpus(&mut v31);
    v31.fail_brick(BrickId(0));
    v31.fail_brick(BrickId(2));
    v31.fail_brick(BrickId(4));
    let lost = v31.audit_lost(&paths31);
    assert!(!lost.is_empty(), "the v3.1 defect must cost data");
    assert!(v31.silent_drops > 0);

    // Era 2: v3.3 — same failure pattern, zero loss, heal repopulates.
    let mut v33 = Volume::new("adler-v33", GlusterVersion::V3_3, 6, 2, 1 << 33, 1);
    let paths33 = write_corpus(&mut v33);
    v33.fail_brick(BrickId(0));
    assert!(
        v33.audit_lost(&paths33).is_empty(),
        "replicas cover the failure"
    );
    v33.replace_brick(BrickId(0));
    let report = v33.heal();
    assert!(report.repaired > 0);
    // Now the *other* side of that set can fail too.
    v33.fail_brick(BrickId(1));
    assert!(
        v33.audit_lost(&paths33).is_empty(),
        "healed brick carries the data"
    );
}

/// Monitoring notices a brick filling up before it tips over, and the
/// backup+restore drill recovers a site loss (the modENCODE scenario).
#[test]
fn monitored_backup_recovery_drill() {
    // Primary and backup volumes at two sites.
    let mut primary = Volume::new("dcc", GlusterVersion::V3_3, 4, 2, 1 << 34, 9);
    let mut rng = SimRng::new(42);
    let paths: Vec<String> = (0..150)
        .map(|i| {
            let p = format!("/modencode/run{i}.bam");
            primary
                .write(
                    &p,
                    FileData::synthetic(rng.range_inclusive(1 << 20, 1 << 24), i),
                    "dcc",
                )
                .expect("write");
            p
        })
        .collect();
    let mut backup = Volume::new("osdc-root", GlusterVersion::V3_3, 4, 2, 1 << 36, 10);
    let out = BackupService::backup(&primary, &mut backup);
    assert_eq!(out.copied, 150);
    assert!(BackupService::verify(&primary, &backup).is_empty());

    // Nagios watches the primary's fill level via an NRPE agent.
    let agent = HostAgent::new("dcc-brick0");
    let fill = primary.used_bytes() as f64 / primary.total_capacity_bytes() as f64 * 100.0;
    agent.metrics.set("disk_used_pct", fill);
    let mut master = NagiosMaster::new();
    master.add_service(ServiceDefinition {
        host: "dcc-brick0".into(),
        check: CheckDefinition::new(
            "check_disk",
            "disk_used_pct",
            80.0,
            95.0,
            ThresholdDirection::HighIsBad,
        ),
        check_interval: SimDuration::from_mins(5),
        retry_interval: SimDuration::from_mins(1),
        max_check_attempts: 3,
    });
    let agents: BTreeMap<String, &HostAgent> = BTreeMap::from([("dcc-brick0".to_string(), &agent)]);
    master.tick(SimTime::ZERO, &agents);
    assert!(master.notifications.is_empty(), "healthy volume, no alert");

    // Site catastrophe: every brick dies; the agent goes dark and Nagios
    // escalates to a hard UNKNOWN.
    for i in 0..primary.brick_count() {
        primary.fail_brick(BrickId(i));
    }
    agent.set_reachable(false);
    for m in 1..10 {
        master.tick(SimTime::ZERO + SimDuration::from_mins(m), &agents);
    }
    assert!(
        master
            .notifications
            .iter()
            .any(|n| n.problem && n.service == "HOST" && n.status == CheckStatus::Critical),
        "dark host must page the admins with a HOST DOWN"
    );
    assert_eq!(primary.audit_lost(&paths).len(), paths.len());

    // Restore onto fresh hardware from the OSDC copy.
    let mut rebuilt = Volume::new("dcc-rebuilt", GlusterVersion::V3_3, 4, 2, 1 << 34, 11);
    let restore = BackupService::restore(&backup, &mut rebuilt);
    assert_eq!(restore.copied, 150);
    assert!(rebuilt.audit_lost(&paths).is_empty(), "full recovery");
}

/// The Samba gate composes with volume failures: a replica loss is
/// invisible to authorized readers.
#[test]
fn export_gate_transparent_to_replica_failure() {
    use osdc::storage::SambaExport;
    let volume = Volume::new("share", GlusterVersion::V3_3, 2, 2, 1 << 30, 13);
    let export = SambaExport::new(volume);
    export.add_account("alice", "pw");
    export.grant("/d", "alice", osdc::storage::AccessKind::Write);
    export
        .write(
            "alice",
            "pw",
            "/d/file",
            FileData::bytes(b"payload".to_vec()),
        )
        .expect("write");
    export.with_volume(|v| v.fail_brick(BrickId(0)));
    let data = export
        .read("alice", "pw", "/d/file")
        .expect("replica serves");
    assert_eq!(data, FileData::bytes(b"payload".to_vec()));
}
