//! The OCC-Y story (§4.5) end to end: stage a big-data corpus on the
//! Hadoop cloud, schedule with locality, run real jobs for several
//! departments under fair share, and survive a rack loss mid-workload.

use osdc_mapreduce::{
    run_fair_share, run_job, DataNodeId, Hdfs, JobConfig, JobSpec, TaskScheduler, BLOCK_SIZE,
    M45_DEPARTMENTS,
};
use osdc_sim::{SimDuration, SimTime};

/// Build the OCC-Y-shaped cluster: 4 racks × 29 nodes = 116 nodes.
fn occ_y() -> Hdfs {
    Hdfs::new(4, 29, 45)
}

#[test]
fn stage_schedule_execute() {
    let mut fs = occ_y();
    // A Common-Crawl-like corpus: 12 files × 20 blocks.
    for i in 0..12 {
        fs.create(
            &format!("/commoncrawl/segment{i}.warc"),
            20 * BLOCK_SIZE,
            DataNodeId(i * 9 % 116),
        )
        .expect("staged");
    }
    // Locality scheduling across the whole corpus.
    let sched = TaskScheduler::new(4);
    let mut total = 0usize;
    let mut local = 0usize;
    for i in 0..12 {
        let (placements, hist) = sched
            .schedule(&fs, &format!("/commoncrawl/segment{i}.warc"))
            .expect("schedules");
        total += placements.len();
        local += hist
            .get(&osdc_mapreduce::Locality::DataLocal)
            .copied()
            .unwrap_or(0);
    }
    assert_eq!(total, 240);
    assert!(
        local as f64 / total as f64 > 0.9,
        "a quiet cluster schedules ~all tasks data-local: {local}/{total}"
    );

    // The job itself (a department's crawl analytics), run for real:
    // count URL-ish tokens per domain across synthetic records.
    let records: Vec<String> = (0..2000)
        .map(|i| format!("http://site{}.edu/page{} status=200", i % 25, i))
        .collect();
    let result = run_job(
        records,
        &JobConfig::default(),
        |rec, emit| {
            if let Some(domain) = rec.split('/').nth(2) {
                emit(domain.to_string(), 1u64);
            }
        },
        |_k, vs| vs.iter().sum::<u64>(),
    );
    assert_eq!(result.output.len(), 25);
    assert_eq!(result.output.iter().map(|(_, c)| c).sum::<u64>(), 2000);
}

#[test]
fn rack_loss_mid_workload_is_survivable() {
    let mut fs = occ_y();
    fs.create("/corpus/big.warc", 100 * BLOCK_SIZE, DataNodeId(0))
        .expect("staged");
    // Rack 0 (nodes 0..29) dies.
    for n in 0..29 {
        fs.fail_node(DataNodeId(n));
    }
    assert!(
        fs.missing_blocks().is_empty(),
        "rack-aware placement keeps every block readable through a rack loss"
    );
    // Scheduling still succeeds — tasks shift to surviving replicas.
    let sched = TaskScheduler::new(4);
    let (placements, _) = sched.schedule(&fs, "/corpus/big.warc").expect("schedules");
    assert_eq!(placements.len(), 100);
    for p in &placements {
        assert!(p.node.0 >= 29, "no task lands on a dead node");
    }
}

#[test]
fn eight_departments_share_the_cluster_for_a_night() {
    // Every department submits a nightly batch at staggered times; all
    // finish, shares are recorded, and nobody waits absurdly long
    // relative to their own work size.
    let jobs: Vec<JobSpec> = M45_DEPARTMENTS
        .iter()
        .enumerate()
        .flat_map(|(i, dept)| {
            (0..2).map(move |j| JobSpec {
                tenant: dept.to_string(),
                name: format!("{dept}-night{j}"),
                tasks: 80 + 40 * (i as u32 % 3),
                task_duration: SimDuration::from_mins(6),
                submitted_at: SimTime::ZERO + SimDuration::from_mins(i as u64 * 7),
            })
        })
        .collect();
    let (outcomes, shares) = run_fair_share(116, jobs);
    assert_eq!(outcomes.len(), 16);
    assert_eq!(shares.len(), 8);
    // The night ends for everyone within the shift.
    for o in &outcomes {
        assert!(
            o.finished_at < SimTime::ZERO + SimDuration::from_hours(10),
            "{} ran past the night: {}",
            o.name,
            o.finished_at
        );
    }
}
