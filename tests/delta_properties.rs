//! Property-based tests on the algorithmic cores: the rsync delta
//! machinery and the cipher stack. These are the invariants a downstream
//! user leans on hardest, so they get proptest coverage over arbitrary
//! inputs rather than hand-picked cases.

use osdc::crypto::modes::{CbcEncryptor, CtrStream, Pkcs7};
use osdc::crypto::{BlockCipher64, Blowfish, Des, TripleDes};
use osdc::transfer::{
    apply_delta, compute_signatures, generate_delta, weak_checksum, RollingChecksum,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fundamental rsync contract: for ANY basis, ANY target and ANY
    /// block size, the delta rebuilds the target exactly.
    #[test]
    fn delta_roundtrip_arbitrary(
        basis in proptest::collection::vec(any::<u8>(), 0..4096),
        new_data in proptest::collection::vec(any::<u8>(), 0..4096),
        block_size in 1usize..512,
    ) {
        let sigs = compute_signatures(&basis, block_size);
        let delta = generate_delta(&sigs, &new_data);
        let rebuilt = apply_delta(&basis, &delta, block_size).expect("self-generated delta applies");
        prop_assert_eq!(rebuilt, new_data);
        prop_assert_eq!(delta.matched_bytes + delta.literal_bytes, delta_output_len(&delta));
    }

    /// Deltas of identical inputs carry no literal bytes (beyond an empty
    /// target edge case).
    #[test]
    fn identical_input_delta_is_pure_copy(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
        block_size in 1usize..512,
    ) {
        let sigs = compute_signatures(&data, block_size);
        let delta = generate_delta(&sigs, &data);
        prop_assert_eq!(delta.literal_bytes, 0);
        prop_assert_eq!(delta.matched_bytes, data.len());
    }

    /// Rolling the checksum across any data equals recomputing directly.
    #[test]
    fn rolling_equals_direct(
        data in proptest::collection::vec(any::<u8>(), 2..2048),
        window_frac in 1usize..100,
    ) {
        let window = (data.len() * window_frac / 100).clamp(1, data.len() - 1);
        let mut rc = RollingChecksum::new(&data[..window]);
        for start in 1..=(data.len() - window) {
            rc.roll(data[start - 1], data[start + window - 1]);
            prop_assert_eq!(rc.value(), weak_checksum(&data[start..start + window]));
        }
    }

    /// Blowfish and 3DES are permutations: decrypt ∘ encrypt = id on any
    /// block, for any key material.
    #[test]
    fn ciphers_roundtrip(block: u64, key in proptest::collection::vec(any::<u8>(), 1..56)) {
        let bf = Blowfish::new(&key);
        prop_assert_eq!(bf.decrypt_block_u64(bf.encrypt_block_u64(block)), block);
        let mut k8 = [0u8; 8];
        for (i, b) in key.iter().take(8).enumerate() { k8[i] = *b; }
        let des = Des::new(k8);
        prop_assert_eq!(des.decrypt_block_u64(des.encrypt_block_u64(block)), block);
        let tdes = TripleDes::from_single(k8);
        prop_assert_eq!(tdes.decrypt_block_u64(tdes.encrypt_block_u64(block)), block);
    }

    /// CBC+PKCS7 round trips any plaintext.
    #[test]
    fn cbc_roundtrip(pt in proptest::collection::vec(any::<u8>(), 0..2048), iv: u64) {
        let bf = Blowfish::new(b"proptest-key");
        let cbc = CbcEncryptor::new(&bf, iv);
        let ct = cbc.encrypt(&pt);
        prop_assert_eq!(ct.len() % 8, 0);
        prop_assert!(ct.len() > pt.len(), "padding always expands");
        prop_assert_eq!(cbc.decrypt(&ct).expect("valid ciphertext"), pt);
    }

    /// CTR is an involution and position-independent chunking agrees.
    #[test]
    fn ctr_involution(data in proptest::collection::vec(any::<u8>(), 0..2048), nonce: u64) {
        let bf = Blowfish::new(b"proptest-ctr");
        let mut once = data.clone();
        CtrStream::new(&bf, nonce).apply(&mut once);
        CtrStream::new(&bf, nonce).apply(&mut once);
        prop_assert_eq!(once, data);
    }

    /// PKCS7 pad/unpad round trips and always block-aligns.
    #[test]
    fn pkcs7_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut padded = data.clone();
        Pkcs7::pad(&mut padded);
        prop_assert_eq!(padded.len() % 8, 0);
        Pkcs7::unpad(&mut padded).expect("own padding is valid");
        prop_assert_eq!(padded, data);
    }
}

fn delta_output_len(delta: &osdc::transfer::Delta) -> usize {
    delta.matched_bytes + delta.literal_bytes
}

#[test]
fn appended_tail_reuses_whole_prefix() {
    // Deterministic variant of a key efficiency property: append-only
    // growth (the common science-data pattern) must transfer ~only the
    // new bytes.
    let basis: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    let mut grown = basis.clone();
    grown.extend(std::iter::repeat_n(7u8, 5000));
    let block = 1000;
    let sigs = compute_signatures(&basis, block);
    let delta = generate_delta(&sigs, &grown);
    assert!(
        delta.literal_bytes <= 5000 + block,
        "literals: {}",
        delta.literal_bytes
    );
    assert_eq!(apply_delta(&basis, &delta, block).expect("applies"), grown);
}
