//! The §6.3 public-data path, end to end: "The datasets are stored on a
//! GlusterFS share... so OSDC users have immediate access to all of the
//! public datasets. The data is freely available for download, including
//! over high performance networks via StarLight."
//!
//! Catalog search → ARK resolution → permission-gated share → bulk
//! download over the WAN through StarLight.

use osdc::crypto::CipherKind;
use osdc::net::{osdc_wan, FluidNet, OsdcSite};
use osdc::storage::FileData;
use osdc::transfer::{Protocol, TransferEngine, TransferSpec};
use osdc::Federation;
use osdc_sim::SimDuration;

#[test]
fn catalog_to_download_pipeline() {
    let mut fed = Federation::build(0.9e-7, 63);

    // 1. The curator stages a dataset on OSDC-Root and the catalog lists
    //    it with a freshly minted ARK.
    let size: u64 = 30_000_000_000; // a 30 GB slice of the EO-1 archive
    fed.root
        .write(
            "/glusterfs/public/eo1_slice",
            FileData::synthetic(size, 7),
            "curator",
        )
        .expect("staged");
    // The seeded catalog's EO-1 record points at the public share.
    let page = fed.console.datasets_page(Some("EO-1"));
    let ark = page["datasets"][0]["ark"]
        .as_str()
        .expect("ark")
        .to_string();

    // 2. ARK resolution gives the storage location; inflections give
    //    metadata to cite.
    let location = fed.console.arks.resolve(&ark).expect("resolves");
    assert!(location.starts_with("/glusterfs/public/"));
    let brief = fed.console.arks.resolve(&format!("{ark}?")).expect("brief");
    assert!(brief.contains("who: Open Science Data Cloud"));

    // 3. "Anyone" can read the public share — no account dance beyond a
    //    guest credential; private prefixes remain closed.
    fed.adler_share.add_account("guest", "guest");
    fed.adler_share.make_public("/glusterfs/public/");
    // Public read works even though the guest has no grant...
    fed.adler_share.with_volume(|v| {
        v.write(
            "/glusterfs/public/readme",
            FileData::bytes(b"open data".to_vec()),
            "curator",
        )
        .expect("write");
    });
    assert!(fed
        .adler_share
        .read("guest", "guest", "/glusterfs/public/readme")
        .is_ok());
    // ...but nothing else does.
    assert!(fed
        .adler_share
        .read("guest", "guest", "/private/x")
        .is_err());

    // 4. The download itself: Chicago → AMPATH Miami via StarLight at
    //    bulk-transfer speed.
    let wan = osdc_wan(0.9e-7);
    let src = wan.node(OsdcSite::ChicagoKenwood);
    let dst = wan.node(OsdcSite::AmpathMiami);
    let mut engine = TransferEngine::new(FluidNet::new(wan.topology, 63));
    let report = engine.run(
        &TransferSpec {
            protocol: Protocol::Udr,
            cipher: CipherKind::None,
            bytes: size,
            files: 1,
            src,
            dst,
        },
        SimDuration::from_days(1),
    );
    // The 58 ms Miami path sustains the same pipeline bound as LVOC.
    assert!(
        report.mbps > 600.0,
        "public download over StarLight should be fast: {:.0} mbit/s",
        report.mbps
    );
    // A 30 GB public dataset arrives in minutes, not hours.
    assert!(
        report.duration < SimDuration::from_mins(10),
        "{}",
        report.duration
    );
}

#[test]
fn every_catalog_entry_resolves() {
    let fed = Federation::build(0.9e-7, 64);
    let page = fed.console.datasets_page(None);
    let datasets = page["datasets"].as_array().expect("array");
    assert!(
        datasets.len() >= 12,
        "the paper's named datasets are all present"
    );
    for d in datasets {
        let ark = d["ark"].as_str().expect("ark uri");
        let location = fed
            .console
            .arks
            .resolve(ark)
            .expect("every published ARK resolves");
        assert_eq!(location, d["path"].as_str().expect("path"));
        // Full inflection always includes the persistence commitment.
        let full = fed
            .console
            .arks
            .resolve(&format!("{ark}??"))
            .expect("full record");
        assert!(full.contains("commitment:"));
    }
}
