//! The Table 3 *shape* invariants, asserted as tests.
//!
//! We do not chase the paper's absolute numbers here (the bench harness
//! prints those side by side); what must hold structurally, per §7.2:
//!
//! 1. UDR beats rsync in every matched configuration;
//! 2. unencrypted beats encrypted for each tool;
//! 3. the two rsync ciphers land close together (TCP/ssh-bound, not
//!    cipher-bound);
//! 4. LLR < 1 always (WAN transfers cannot beat the local disk bound),
//!    and UDR-plain's LLR is far above rsync-plain's;
//! 5. dataset size (108 GB vs 1.1 TB) barely moves steady-state rates.

use osdc::crypto::CipherKind;
use osdc::net::{osdc_wan, FluidNet, OsdcSite};
use osdc::transfer::{Protocol, TransferEngine, TransferReport, TransferSpec};
use osdc_sim::SimDuration;

fn run(protocol: Protocol, cipher: CipherKind, bytes: u64, seed: u64) -> TransferReport {
    let wan = osdc_wan(1.2e-7);
    let src = wan.node(OsdcSite::ChicagoKenwood);
    let dst = wan.node(OsdcSite::Lvoc);
    let mut engine = TransferEngine::new(FluidNet::new(wan.topology, seed));
    engine.run(
        &TransferSpec {
            protocol,
            cipher,
            bytes,
            files: 1,
            src,
            dst,
        },
        SimDuration::from_days(2),
    )
}

const GB108: u64 = 108_000_000_000;

#[test]
fn udr_beats_rsync_in_every_configuration() {
    for cipher in [CipherKind::None, CipherKind::Blowfish] {
        let udr = run(Protocol::Udr, cipher, GB108, 1).mbps;
        let rsync = run(Protocol::Rsync, cipher, GB108, 1).mbps;
        assert!(udr > rsync, "{cipher}: UDR {udr:.0} vs rsync {rsync:.0}");
    }
}

#[test]
fn encryption_costs_throughput_for_both_tools() {
    let udr_plain = run(Protocol::Udr, CipherKind::None, GB108, 2).mbps;
    let udr_bf = run(Protocol::Udr, CipherKind::Blowfish, GB108, 2).mbps;
    assert!(udr_plain > udr_bf * 1.3, "{udr_plain:.0} vs {udr_bf:.0}");
    let rsync_plain = run(Protocol::Rsync, CipherKind::None, GB108, 2).mbps;
    let rsync_bf = run(Protocol::Rsync, CipherKind::Blowfish, GB108, 2).mbps;
    assert!(
        rsync_plain > rsync_bf * 1.2,
        "{rsync_plain:.0} vs {rsync_bf:.0}"
    );
}

#[test]
fn rsync_ciphers_are_transport_bound_not_cipher_bound() {
    // Paper rows: blowfish 280/281 vs 3des 284/285 — nearly identical,
    // because the ssh/TCP channel, not the cipher, is the bottleneck.
    let bf = run(Protocol::Rsync, CipherKind::Blowfish, GB108, 3).mbps;
    let des = run(Protocol::Rsync, CipherKind::TripleDes, GB108, 3).mbps;
    let ratio = bf.max(des) / bf.min(des);
    assert!(
        ratio < 1.10,
        "rsync ciphers should land together: {bf:.0} vs {des:.0}"
    );
}

#[test]
fn llr_bounds_and_ordering() {
    let udr = run(Protocol::Udr, CipherKind::None, GB108, 4);
    let rsync = run(Protocol::Rsync, CipherKind::None, GB108, 4);
    for r in [&udr, &rsync] {
        assert!(r.llr > 0.0 && r.llr < 1.0, "LLR in (0,1): {}", r.llr);
    }
    assert!(
        udr.llr > rsync.llr * 1.5,
        "UDR {:.2} vs rsync {:.2}",
        udr.llr,
        rsync.llr
    );
    // The paper's UDR-plain band: LLR ≈ 0.64–0.66.
    assert!((0.55..0.75).contains(&udr.llr), "UDR LLR {:.2}", udr.llr);
}

#[test]
fn steady_state_is_size_invariant() {
    // Paper: 108 GB and 1.1 TB rows agree within ~2%. Use 108 GB vs
    // 432 GB to keep the debug-mode test quick; same property.
    let small = run(Protocol::Rsync, CipherKind::None, GB108, 5).mbps;
    let large = run(Protocol::Rsync, CipherKind::None, 4 * GB108, 5).mbps;
    assert!(
        (large / small - 1.0).abs() < 0.08,
        "{small:.0} vs {large:.0}"
    );
}

#[test]
fn headline_speedup_bands() {
    // §7.2: "87% and 41% faster ... in the unencrypted and encrypted
    // cases". Allow generous bands around the published points.
    let plain = run(Protocol::Udr, CipherKind::None, GB108, 6).mbps
        / run(Protocol::Rsync, CipherKind::None, GB108, 6).mbps;
    let enc = run(Protocol::Udr, CipherKind::Blowfish, GB108, 6).mbps
        / run(Protocol::Rsync, CipherKind::Blowfish, GB108, 6).mbps;
    assert!(
        (1.5..2.4).contains(&plain),
        "unencrypted speedup {plain:.2} (paper 1.87)"
    );
    assert!(
        (1.2..1.7).contains(&enc),
        "encrypted speedup {enc:.2} (paper 1.41)"
    );
    assert!(
        plain > enc,
        "encryption compresses UDR's edge, as in the paper"
    );
}
