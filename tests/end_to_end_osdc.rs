//! End-to-end integration: the whole facility, one researcher's month.
//!
//! Exercises the full stack across crates: federation assembly (Table 2),
//! federated login, cross-stack provisioning through Tukey, per-minute
//! billing, daily storage sweeps, the ARK-indexed public catalog, and
//! the monthly invoice — i.e. Figure 1 end to end on top of the Table 2
//! hardware.

use osdc::storage::{AccessKind, FileData};
use osdc::tukey::auth::{Identity, ShibbolethIdp};
use osdc::tukey::credentials::CloudCredential;
use osdc::Federation;
use osdc_sim::{SimDuration, SimTime};

fn researcher() -> Identity {
    Identity {
        canonical: "shib:heath@uchicago.edu".into(),
    }
}

fn logged_in_federation() -> (Federation, osdc::tukey::SessionToken) {
    let mut fed = Federation::build(1.2e-7, 77);
    let mut idp = ShibbolethIdp::new("urn:uchicago", b"k");
    idp.register("heath@uchicago.edu", &[]);
    fed.console.auth.trust_idp("urn:uchicago", b"k");
    let id = researcher();
    fed.console
        .enroll(&id, CloudCredential::new("adler", "heath", "A", "S"));
    fed.console
        .enroll(&id, CloudCredential::new("sullivan", "heath", "A", "S"));
    let token = fed
        .console
        .login_shibboleth(&idp.assert("heath@uchicago.edu").expect("registered"))
        .expect("trusted");
    (fed, token)
}

#[test]
fn a_researchers_month() {
    let (mut fed, token) = logged_in_federation();

    // Provision on both stacks through the single console.
    let t0 = SimTime::ZERO;
    let a = fed
        .console
        .launch_instance(
            token,
            "adler",
            "pipeline",
            "m1.xlarge",
            "bionimbus-genomics",
            t0,
        )
        .expect("adler launch");
    fed.console
        .launch_instance(
            token,
            "sullivan",
            "preprocess",
            "m1.medium",
            "ubuntu-base",
            t0,
        )
        .expect("sullivan launch");
    let page = fed.console.instances_page(token, t0).expect("page");
    assert_eq!(page["servers"].as_array().expect("array").len(), 2);

    // Store data on the share; grant a collaborator read access.
    fed.adler_share.add_account("heath", "pw");
    fed.adler_share.add_account("collab", "pw2");
    fed.adler_share
        .grant("/projects/enc", "heath", AccessKind::Write);
    fed.adler_share
        .grant("/projects/enc", "collab", AccessKind::Read);
    fed.adler_share
        .write(
            "heath",
            "pw",
            "/projects/enc/peaks.bed",
            FileData::bytes(b"chr1\t100\t200".to_vec()),
        )
        .expect("write");
    assert!(fed
        .adler_share
        .read("collab", "pw2", "/projects/enc/peaks.bed")
        .is_ok());

    // A 30-day month of minute polls and daily sweeps.
    let id = researcher();
    for day in 0..30u64 {
        let midnight = t0 + SimDuration::from_days(day);
        for m in 0..(24 * 60) {
            fed.console
                .billing_minute_tick(midnight + SimDuration::from_mins(m));
        }
        let stored = fed
            .adler_share
            .with_volume(|v| v.usage_by_owner().get("heath").copied().unwrap_or(0));
        fed.console
            .billing_daily_storage(&[(id.clone(), stored)], midnight);
    }
    // Terminate at month end.
    fed.console
        .terminate_instance(
            token,
            "adler",
            a["server"]["id"].as_u64().expect("id"),
            t0 + SimDuration::from_days(30),
        )
        .expect("terminate");

    let invoices = fed.console.billing.close_month();
    assert_eq!(invoices.len(), 1);
    let inv = &invoices[0];
    // 8 + 2 cores for 720 hours = 7200 core-hours.
    assert!((inv.core_hours - 7200.0).abs() < 1.0, "{}", inv.core_hours);
    assert!(inv.total_usd > 0.0, "well beyond the free tier");

    // The catalog resolves its ARKs to storage paths.
    let page = fed.console.datasets_page(Some("EO-1"));
    let ark = page["datasets"][0]["ark"]
        .as_str()
        .expect("ark")
        .to_string();
    let location = fed.console.arks.resolve(&ark).expect("resolves");
    assert!(location.starts_with("/glusterfs/public/"));
}

#[test]
fn unenrolled_user_sees_empty_clouds_but_public_data() {
    let mut fed = Federation::build(1.2e-7, 78);
    let mut idp = ShibbolethIdp::new("urn:uchicago", b"k");
    idp.register("newbie@uchicago.edu", &[]);
    fed.console.auth.trust_idp("urn:uchicago", b"k");
    let token = fed
        .console
        .login_shibboleth(&idp.assert("newbie@uchicago.edu").expect("registered"))
        .expect("trusted");
    // No credentials enrolled → no servers, but the catalog is open.
    let page = fed
        .console
        .instances_page(token, SimTime::ZERO)
        .expect("page");
    assert!(page["servers"].as_array().expect("array").is_empty());
    assert!(!fed.console.datasets_page(None)["datasets"]
        .as_array()
        .expect("array")
        .is_empty());
}

#[test]
fn facility_headline_numbers() {
    let fed = Federation::build(1.2e-7, 79);
    assert!(fed.total_cores() > 2000);
    assert!(fed.total_disk_tb() > 2000);
    let rtt = fed
        .wan
        .topology
        .rtt(
            fed.wan.node(osdc::net::OsdcSite::ChicagoKenwood),
            fed.wan.node(osdc::net::OsdcSite::Lvoc),
        )
        .expect("connected");
    assert_eq!(rtt, SimDuration::from_millis(104));
}
