//! Tukey-focused integration: the middleware's core promise — one
//! OpenStack-shaped interface over heterogeneous stacks — checked for
//! semantic consistency, plus the sharing service wired to real storage.

use osdc::compute::InstanceState;
use osdc::storage::{FileData, GlusterVersion, Volume};
use osdc::tukey::auth::Identity;
use osdc::tukey::credentials::{CloudCredential, CredentialVault};
use osdc::tukey::sharing::{FileSharingService, Permission};
use osdc::tukey::translation::osdc_proxy;
use osdc_sim::SimTime;

fn enrolled() -> (osdc::tukey::TranslationProxy, CredentialVault, Identity) {
    let proxy = osdc_proxy(1);
    let vault = CredentialVault::new();
    let id = Identity {
        canonical: "shib:it@uchicago.edu".into(),
    };
    vault.enroll(&id, CloudCredential::new("adler", "it", "K", "S"));
    vault.enroll(&id, CloudCredential::new("sullivan", "it", "K", "S"));
    (proxy, vault, id)
}

/// Whatever the backend dialect, the aggregated view and the backend
/// controller must agree on instance count, state and flavor.
#[test]
fn aggregated_view_is_consistent_with_backends() {
    let (mut proxy, vault, id) = enrolled();
    let t = SimTime::ZERO;
    for i in 0..5 {
        proxy
            .boot_server(
                &vault,
                &id,
                "adler",
                &format!("a{i}"),
                "m1.small",
                "ubuntu-base",
                t,
            )
            .expect("boot");
        proxy
            .boot_server(
                &vault,
                &id,
                "sullivan",
                &format!("s{i}"),
                "m1.large",
                "ubuntu-base",
                t,
            )
            .expect("boot");
    }
    let listing = proxy.list_servers(&vault, &id, t);
    let servers = listing["servers"].as_array().expect("array");
    assert_eq!(servers.len(), 10);
    // Per-cloud counts in the aggregate match the controllers' truth.
    for cloud in ["adler", "sullivan"] {
        let in_aggregate = servers.iter().filter(|s| s["cloud"] == cloud).count();
        let in_controller = proxy
            .controller(cloud)
            .expect("exists")
            .all_instances()
            .filter(|i| i.state == InstanceState::Active)
            .count();
        assert_eq!(in_aggregate, in_controller, "{cloud}");
    }
    // Flavor names survived translation through both dialects.
    assert!(servers
        .iter()
        .filter(|s| s["cloud"] == "sullivan")
        .all(|s| s["flavor"]["name"] == "m1.large"));
}

/// Usage numbers (what billing consumes) agree across the two dialects.
#[test]
fn usage_is_dialect_agnostic() {
    let (mut proxy, vault, id) = enrolled();
    let t = SimTime::ZERO;
    proxy
        .boot_server(&vault, &id, "adler", "a", "m1.xlarge", "ubuntu-base", t)
        .expect("boot");
    proxy
        .boot_server(&vault, &id, "sullivan", "s", "m1.xlarge", "ubuntu-base", t)
        .expect("boot");
    let usage = proxy.usage(&vault, &id);
    assert_eq!(usage["adler"], usage["sullivan"], "same flavor, same cores");
}

/// The §6.2 flow: share directory → watcher daemon → grants → WebDAV,
/// against a real replica-2 volume.
#[test]
fn sharing_pipeline_over_real_volume() {
    let mut volume = Volume::new("share", GlusterVersion::V3_3, 4, 2, 1 << 30, 5);
    // Users drop files into their designated share directories.
    volume
        .write(
            "/share/drop/alice/results.tsv",
            FileData::bytes(b"gene\tscore".to_vec()),
            "alice",
        )
        .expect("write");
    volume
        .write(
            "/share/drop/alice/readme.md",
            FileData::bytes(b"# results".to_vec()),
            "alice",
        )
        .expect("write");
    volume
        .write(
            "/home/alice/private.key",
            FileData::bytes(b"secret".to_vec()),
            "alice",
        )
        .expect("write");

    let mut sharing = FileSharingService::new();
    let inbox = sharing
        .create_collection("alice", "drop", None)
        .expect("collection");
    let found = sharing
        .watch_directory(&volume, "/share/drop/", inbox)
        .expect("daemon pass");
    assert_eq!(found.len(), 2, "only the designated directory is scanned");

    // Grant the group; a member fetches over WebDAV; non-members bounce.
    sharing.create_group("alice", "lab");
    sharing
        .add_member("alice", "lab", "bob")
        .expect("add member");
    sharing
        .grant_group("alice", inbox, "lab", Permission::Read)
        .expect("grant");
    let listing = sharing.webdav_propfind("bob", inbox).expect("listable");
    assert_eq!(listing.len(), 2);
    let file = listing[0];
    let data = sharing
        .webdav_get(&volume, "bob", file)
        .expect("member reads");
    assert!(matches!(data, FileData::Bytes(_)));
    assert!(sharing.webdav_get(&volume, "eve", file).is_err());

    // Storage failure under the sharing layer stays invisible.
    volume.fail_brick(osdc::storage::BrickId(0));
    volume.fail_brick(osdc::storage::BrickId(2));
    assert!(
        sharing.webdav_get(&volume, "bob", file).is_ok(),
        "replicas cover"
    );
}

/// Lock-in row of Table 1, full circle: export an image from the science
/// cloud, import it into the *other* stack, boot it there.
#[test]
fn image_portability_across_stacks() {
    let (mut proxy, vault, id) = enrolled();
    let bundle = proxy
        .controller("adler")
        .expect("exists")
        .images()
        .find(|i| i.name == "bionimbus-genomics")
        .expect("catalog image")
        .export_bundle()
        .expect("science images export");
    // Re-import on sullivan under a fresh id and boot it via Tukey.
    let imported = osdc::compute::MachineImage::import_bundle(&bundle, osdc::compute::ImageId(0))
        .expect("imports");
    assert_eq!(imported.name, "bionimbus-genomics");
    let resp = proxy
        .boot_server(
            &vault,
            &id,
            "sullivan",
            "ported",
            "m1.small",
            "bionimbus-genomics",
            SimTime::ZERO,
        )
        .expect("boots from the shared alias");
    assert_eq!(resp["server"]["cloud"], "sullivan");
}
