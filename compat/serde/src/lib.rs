//! Offline compat shim: the `serde` API surface this workspace uses.
//!
//! Real serde abstracts over data formats with `Serializer`/`Deserializer`
//! visitors. The only format in this workspace is JSON (through the
//! sibling `serde_json` shim), so the traits here collapse to a direct
//! conversion through a JSON [`Value`] tree:
//!
//! * [`Serialize::to_json_value`] — `&T -> Value`
//! * [`Deserialize::from_json_value`] — `&Value -> Result<T, DeError>`
//!
//! `#[derive(Serialize, Deserialize)]` come from the sibling hand-rolled
//! `serde_derive` and generate impls of these traits. `serde_json`
//! re-exports [`Value`] and implements the text format on top.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Map type backing JSON objects. A BTreeMap keeps key order sorted and
/// deterministic, which the telemetry export determinism tests rely on.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: integers keep full 64-bit precision, everything else is
/// an f64 (mirroring serde_json's three-way split).
#[derive(Clone, Copy, Debug)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (*self, *other) {
            (PosInt(a), PosInt(b)) => a == b,
            (NegInt(a), NegInt(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (PosInt(a), NegInt(b)) | (NegInt(b), PosInt(a)) => b >= 0 && a == b as u64,
            (PosInt(a), Float(b)) | (Float(b), PosInt(a)) => a as f64 == b,
            (NegInt(a), Float(b)) | (Float(b), NegInt(a)) => a as f64 == b,
        }
    }
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(n) => Some(n as f64),
            Number::NegInt(n) => Some(n as f64),
            Number::Float(f) => Some(f),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    // serde_json prints whole floats with a trailing `.0`.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// A JSON document tree.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// `value["key"]` — Null for non-objects and missing keys, as in
    /// serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Auto-vivifying object insert: indexing Null with a key turns it into
    /// an object, and missing keys spring into existence as Null.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Map::new());
        }
        self.as_object_mut()
            .unwrap_or_else(|| panic!("cannot index non-object value with string \"{key}\""))
            .entry(key.to_string())
            .or_insert(Value::Null)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        self.as_array_mut()
            .and_then(|a| a.get_mut(idx))
            .expect("array index out of bounds")
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

macro_rules! eq_num {
    ($($ty:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                matches!(self, Value::Number(n) if *n == Number::$variant(*other as $cast))
            }
        }
        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_num! {
    u8 => PosInt as u64, u16 => PosInt as u64, u32 => PosInt as u64,
    u64 => PosInt as u64, usize => PosInt as u64,
    i8 => NegInt as i64, i16 => NegInt as i64, i32 => NegInt as i64,
    i64 => NegInt as i64, isize => NegInt as i64,
    f32 => Float as f64, f64 => Float as f64,
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

/// Conversion into the JSON data model.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

macro_rules! ser_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_json_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_json_value(&self) -> Value {
                let f = *self as f64;
                // Non-finite numbers have no JSON form; serde_json emits
                // null for them through to_value.
                if f.is_finite() {
                    Value::Number(Number::Float(f))
                } else {
                    Value::Null
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

/// Deserialization error (also reused by `serde_json::from_str`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} for `{ty}`"))
    }
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` in `{ty}`"))
    }
    pub fn unknown_variant(ty: &str, got: &str) -> Self {
        DeError(format!("unknown variant `{got}` for `{ty}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion out of the JSON data model.
pub trait Deserialize: Sized {
    fn from_json_value(value: &Value) -> Result<Self, DeError>;
}

impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

macro_rules! de_uint {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                value
                    .as_u64()
                    .and_then(|n| <$ty>::try_from(n).ok())
                    .ok_or_else(|| DeError::expected("unsigned integer", stringify!($ty)))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                value
                    .as_i64()
                    .and_then(|n| <$ty>::try_from(n).ok())
                    .ok_or_else(|| DeError::expected("integer", stringify!($ty)))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Deserialize for f32 {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        f64::from_json_value(value).map(|f| f as f32)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "map"))?
            .iter()
            .map(|(k, v)| V::from_json_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}
