//! A counting `GlobalAlloc` wrapper for zero-allocation hot-path tests
//! and peak-memory measurement.
//!
//! Install [`CountingAlloc`] as the test binary's `#[global_allocator]`,
//! then bracket the code under test with [`count_allocations`]. Counts
//! are kept in thread-local cells, so concurrently running `cargo test`
//! threads do not perturb each other's measurements.
//!
//! ```
//! use counting_alloc::{count_allocations, CountingAlloc};
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! let (stats, sum) = count_allocations(|| (0..100u64).sum::<u64>());
//! assert_eq!(stats.allocations, 0, "summing must not allocate");
//! assert_eq!(sum, 4950);
//! ```
//!
//! Beyond the window counters, the allocator tracks **live bytes** (a
//! running alloc-minus-dealloc balance) and its **high-water mark** —
//! an RSS proxy the `bench_scale` harness uses to gate peak memory per
//! tenant. Use [`reset_peak`] at a measurement boundary and
//! [`peak_live_bytes`] after the workload.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
    // Live-byte balance can dip below a `reset_peak` baseline when the
    // workload frees memory allocated before the window, so it is
    // signed.
    static LIVE_BYTES: Cell<i64> = const { Cell::new(0) };
    static PEAK_LIVE: Cell<i64> = const { Cell::new(0) };
}

#[inline]
fn track_alloc(size: usize) {
    ALLOCATIONS.with(|c| c.set(c.get() + 1));
    BYTES.with(|c| c.set(c.get() + size as u64));
    let live = LIVE_BYTES.with(|c| {
        let live = c.get() + size as i64;
        c.set(live);
        live
    });
    PEAK_LIVE.with(|c| c.set(c.get().max(live)));
}

#[inline]
fn track_dealloc(size: usize) {
    LIVE_BYTES.with(|c| c.set(c.get() - size as i64));
}

/// Wraps [`System`], counting every `alloc`/`realloc` on the current
/// thread. Frees are not *counted* (the zero-alloc tests assert that hot
/// loops acquire no memory, and a free implies a prior counted
/// acquisition) but they do *credit* the live-byte balance behind
/// [`live_bytes`]/[`peak_live_bytes`].
pub struct CountingAlloc;

impl CountingAlloc {
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates verbatim to `System`; the counters are thread-local
// and touched outside the delegated call, never re-entering the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        track_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        track_dealloc(layout.size());
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + new_size as u64));
        // A realloc frees the old block and acquires the new size.
        let live = LIVE_BYTES.with(|c| {
            let live = c.get() - layout.size() as i64 + new_size as i64;
            c.set(live);
            live
        });
        PEAK_LIVE.with(|c| c.set(c.get().max(live)));
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocation counts observed during one [`count_allocations`] window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of `alloc` + `realloc` calls on this thread.
    pub allocations: u64,
    /// Total bytes requested by those calls.
    pub bytes: u64,
}

/// Run `f`, returning the allocation counts it incurred on this thread
/// alongside its result. Requires [`CountingAlloc`] to be installed as
/// the `#[global_allocator]`; with the default allocator the counts are
/// always zero (vacuously passing), so tests should first assert that a
/// deliberate allocation is visible — see `probe_is_live`.
pub fn count_allocations<T>(f: impl FnOnce() -> T) -> (AllocStats, T) {
    let before_allocs = ALLOCATIONS.with(|c| c.get());
    let before_bytes = BYTES.with(|c| c.get());
    let value = f();
    let stats = AllocStats {
        allocations: ALLOCATIONS.with(|c| c.get()) - before_allocs,
        bytes: BYTES.with(|c| c.get()) - before_bytes,
    };
    (stats, value)
}

/// Current alloc-minus-dealloc balance on this thread, in bytes. Can be
/// negative if more pre-existing memory was freed than acquired since
/// tracking began.
pub fn live_bytes() -> i64 {
    LIVE_BYTES.with(|c| c.get())
}

/// High-water mark of [`live_bytes`] since the last [`reset_peak`] (or
/// thread start). The `bench_scale` RSS-per-tenant gate reads this.
pub fn peak_live_bytes() -> i64 {
    PEAK_LIVE.with(|c| c.get())
}

/// Restart the high-water tracking at the current live balance.
pub fn reset_peak() {
    let live = LIVE_BYTES.with(|c| c.get());
    PEAK_LIVE.with(|c| c.set(live));
}

/// Run `f`, returning the extra peak live bytes it drove above the
/// balance at entry (its *marginal* high-water mark) alongside its
/// result.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (i64, T) {
    let base = live_bytes();
    reset_peak();
    let value = f();
    let peak = (peak_live_bytes() - base).max(0);
    (peak, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc::new();

    #[test]
    fn probe_is_live() {
        let (stats, v) = count_allocations(|| vec![1u8; 4096]);
        assert!(stats.allocations >= 1, "Vec allocation must be counted");
        assert!(stats.bytes >= 4096);
        drop(v);
    }

    #[test]
    fn pure_arithmetic_counts_zero() {
        let (stats, sum) = count_allocations(|| (0..1000u64).map(|x| x ^ 0x55).sum::<u64>());
        assert_eq!(stats.allocations, 0);
        assert_eq!(stats.bytes, 0);
        assert!(sum > 0);
    }

    #[test]
    fn realloc_is_counted() {
        let (stats, v) = count_allocations(|| {
            let mut v = Vec::with_capacity(4);
            for i in 0..1000u32 {
                v.push(i); // forces several growth reallocs
            }
            v
        });
        assert!(stats.allocations >= 2, "growth reallocs must be counted");
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn peak_tracks_highwater_not_endstate() {
        let (peak, _) = measure_peak(|| {
            let big = vec![0u8; 1 << 20];
            drop(big); // freed before the window ends …
            vec![0u8; 16] // … and the end-state is tiny
        });
        assert!(
            peak >= 1 << 20,
            "peak {peak} missed the transient 1 MiB spike"
        );
    }

    #[test]
    fn peak_resets_to_current_balance() {
        let keep = vec![7u8; 1 << 16];
        reset_peak();
        assert_eq!(peak_live_bytes(), live_bytes(), "reset pins peak to live");
        let (peak, _) = measure_peak(|| vec![0u8; 256]);
        assert!(
            (256..(1 << 16)).contains(&peak),
            "marginal peak only: {peak}"
        );
        drop(keep);
    }

    #[test]
    fn dealloc_credits_live_balance() {
        let before = live_bytes();
        let v = vec![0u8; 4096];
        assert!(live_bytes() >= before + 4096);
        drop(v);
        assert!(live_bytes() <= before + 64, "free must credit the balance");
    }
}
