//! A counting `GlobalAlloc` wrapper for zero-allocation hot-path tests.
//!
//! Install [`CountingAlloc`] as the test binary's `#[global_allocator]`,
//! then bracket the code under test with [`count_allocations`]. Counts
//! are kept in thread-local cells, so concurrently running `cargo test`
//! threads do not perturb each other's measurements.
//!
//! ```
//! use counting_alloc::{count_allocations, CountingAlloc};
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! let (stats, sum) = count_allocations(|| (0..100u64).sum::<u64>());
//! assert_eq!(stats.allocations, 0, "summing must not allocate");
//! assert_eq!(sum, 4950);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Wraps [`System`], counting every `alloc`/`realloc` on the current
/// thread. Frees are not counted: the tests here assert that hot loops
/// *acquire* no memory, and a free implies a prior counted acquisition.
pub struct CountingAlloc;

impl CountingAlloc {
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates verbatim to `System`; the counters are thread-local
// and touched outside the delegated call, never re-entering the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + new_size as u64));
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocation counts observed during one [`count_allocations`] window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of `alloc` + `realloc` calls on this thread.
    pub allocations: u64,
    /// Total bytes requested by those calls.
    pub bytes: u64,
}

/// Run `f`, returning the allocation counts it incurred on this thread
/// alongside its result. Requires [`CountingAlloc`] to be installed as
/// the `#[global_allocator]`; with the default allocator the counts are
/// always zero (vacuously passing), so tests should first assert that a
/// deliberate allocation is visible — see `probe_is_live`.
pub fn count_allocations<T>(f: impl FnOnce() -> T) -> (AllocStats, T) {
    let before_allocs = ALLOCATIONS.with(|c| c.get());
    let before_bytes = BYTES.with(|c| c.get());
    let value = f();
    let stats = AllocStats {
        allocations: ALLOCATIONS.with(|c| c.get()) - before_allocs,
        bytes: BYTES.with(|c| c.get()) - before_bytes,
    };
    (stats, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc::new();

    #[test]
    fn probe_is_live() {
        let (stats, v) = count_allocations(|| vec![1u8; 4096]);
        assert!(stats.allocations >= 1, "Vec allocation must be counted");
        assert!(stats.bytes >= 4096);
        drop(v);
    }

    #[test]
    fn pure_arithmetic_counts_zero() {
        let (stats, sum) = count_allocations(|| (0..1000u64).map(|x| x ^ 0x55).sum::<u64>());
        assert_eq!(stats.allocations, 0);
        assert_eq!(stats.bytes, 0);
        assert!(sum > 0);
    }

    #[test]
    fn realloc_is_counted() {
        let (stats, v) = count_allocations(|| {
            let mut v = Vec::with_capacity(4);
            for i in 0..1000u32 {
                v.push(i); // forces several growth reallocs
            }
            v
        });
        assert!(stats.allocations >= 2, "growth reallocs must be counted");
        assert_eq!(v.len(), 1000);
    }
}
