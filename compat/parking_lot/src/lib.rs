//! Offline compat shim: the `parking_lot` API surface this workspace uses,
//! implemented over `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal, API-compatible stand-ins for its external dependencies
//! under `crates/compat/`. This one provides non-poisoning `Mutex` and
//! `RwLock`: a poisoned std lock simply has its guard recovered, matching
//! parking_lot's "panics don't poison" semantics closely enough for the
//! uses here (all guards are short-lived and protect plain data).

use std::fmt;
use std::sync::{PoisonError, TryLockError};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
