//! Offline compat shim: the `criterion` API surface this workspace's
//! benches use, backed by a simple wall-clock measurement loop.
//!
//! No statistics beyond median-of-samples and no HTML reports — each bench
//! prints one line: name, per-iteration time, and throughput when
//! configured. Good enough to compare hot paths before/after a change on
//! the same machine, which is all the workspace benches are for.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Median per-iteration nanoseconds of the last `iter` call.
    pub(crate) last_ns: f64,
    sample_size: usize,
    measure: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Measure `f`, auto-scaling the batch size so one sample takes a
    /// useful amount of wall clock.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            // `--test` smoke mode: run the body once to prove it executes,
            // skip the measurement loop entirely.
            black_box(f());
            self.last_ns = 0.0;
            return;
        }
        // Warm up and estimate the cost of one iteration.
        let mut iters = 1u64;
        let per_iter_estimate = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt > Duration::from_millis(1) || iters >= 1 << 20 {
                break dt.as_secs_f64() / iters as f64;
            }
            iters *= 2;
        };
        // Pick a batch size so `sample_size` samples fit in the window.
        let budget = self.measure.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter_estimate.max(1e-9)) as u64).clamp(1, 1 << 24);
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t0.elapsed().as_secs_f64() / batch as f64 * 1e9);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.last_ns = samples[samples.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            last_ns: 0.0,
            sample_size: self.criterion.sample_size,
            measure: self.criterion.measurement_time,
            test_mode: self.criterion.test_mode,
        };
        f(&mut b);
        self.report(&id.id, b.last_ns);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            last_ns: 0.0,
            sample_size: self.criterion.sample_size,
            measure: self.criterion.measurement_time,
            test_mode: self.criterion.test_mode,
        };
        f(&mut b, input);
        self.report(&id.id, b.last_ns);
        self
    }

    fn report(&mut self, id: &str, ns: f64) {
        if self.criterion.test_mode {
            println!("Testing {}/{id}: ok", self.name);
            self.criterion
                .results
                .push((format!("{}/{id}", self.name), ns));
            return;
        }
        let tp = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.1} MiB/s)", n as f64 / (ns / 1e9) / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) => {
                format!("  ({:.2} Melem/s)", n as f64 / (ns / 1e9) / 1e6)
            }
            None => String::new(),
        };
        let line = format!("{}/{:<40} {:>12}{}", self.name, id, format_ns(ns), tp);
        println!("{line}");
        self.criterion
            .results
            .push((format!("{}/{id}", self.name), ns));
    }

    pub fn finish(&mut self) {}
}

/// The harness entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    /// `--test` smoke mode: run every bench body once, measure nothing.
    test_mode: bool,
    /// `(full id, median ns/iter)` for every bench run so far; exposed so
    /// in-crate asserting harnesses (e.g. `telemetry_overhead`) can compare
    /// entries after running.
    pub results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honor `cargo bench -- --test` (criterion's smoke mode) from
        // `default()` rather than only `configure_from_args()`: the
        // workspace benches build their config as
        // `Criterion::default().sample_size(n)` without the latter, and CI
        // leans on `--test` to keep the bench step fast.
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            test_mode: std::env::args().any(|a| a == "--test"),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.benchmark_group("crit").bench_function(id, f);
        self
    }

    pub fn final_summary(&self) {}
}

/// `criterion_group!{name = benches; config = ..; targets = a, b}` or
/// `criterion_group!(benches, a, b)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// `criterion_main!(group_a, group_b)` — benches are `harness = false`
/// binaries, so this emits `main`. Cargo's `--bench` flag (and any other
/// CLI arguments) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
    }

    #[test]
    fn bench_reports_positive_time() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        group.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].1 > 0.0, "measured {} ns", c.results[0].1);
    }

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::new("f", "1MiB").id, "f/1MiB");
    }
}
