//! Offline compat shim: `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! without syn or quote.
//!
//! The derives hand-parse the item token stream. Supported shapes — the
//! ones this workspace actually derives on:
//!
//! * structs with named fields (`#[serde(default)]` honoured on fields),
//! * newtype tuple structs (`struct Id(pub u64)`), serialized transparently
//!   as their inner value,
//! * enums whose variants are all units, serialized as the variant name
//!   string (serde's "externally tagged" form degenerates to this).
//!
//! Anything else produces a `compile_error!` naming the limitation rather
//! than silently generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct`/`enum` item, reduced to what codegen needs.
struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// Named-field struct: `(field_name, has_serde_default)`.
    Named(Vec<(String, bool)>),
    /// Tuple struct with exactly one field.
    Newtype,
    /// Enum of unit variants.
    UnitEnum(Vec<String>),
}

fn err(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens")
}

/// Does this attribute group body (the `(...)` of `#[serde(...)]`) contain
/// the bare `default` ident?
fn serde_attr_has_default(body: &TokenStream) -> bool {
    body.clone()
        .into_iter()
        .any(|tt| matches!(&tt, TokenTree::Ident(i) if i.to_string() == "default"))
}

/// Consume leading attributes from `iter`, reporting whether any was
/// `#[serde(default)]`.
fn skip_attrs(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut has_default = false;
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // `#` is followed by a bracketed group: `[serde(default)]`,
                // `[doc = "..."]`, ...
                if let Some(TokenTree::Group(g)) = iter.next() {
                    let mut inner = g.stream().into_iter();
                    if let Some(TokenTree::Ident(name)) = inner.next() {
                        if name.to_string() == "serde" {
                            if let Some(TokenTree::Group(body)) = inner.next() {
                                has_default |= serde_attr_has_default(&body.stream());
                            }
                        }
                    }
                }
            }
            _ => return has_default,
        }
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Parse the body of a named-field struct: `{ pub a: T, #[serde(default)] b: U }`.
fn parse_named_fields(body: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let has_default = skip_attrs(&mut iter);
        skip_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in struct body: {other}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type: consume tokens until a comma at angle-bracket
        // depth zero (groups arrive as single trees, so only `<`/`>` need
        // depth tracking).
        let mut depth = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    iter.next();
                    break;
                }
                Some(_) => {
                    iter.next();
                }
            }
        }
        fields.push((name, has_default));
    }
    Ok(fields)
}

/// Parse an enum body, requiring every variant to be a unit.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        };
        match iter.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!("variant `{name}` has a discriminant; unsupported"))
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{name}` carries data; only unit variants are supported"
                ))
            }
            Some(other) => return Err(format!("unexpected token after variant `{name}`: {other}")),
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs(&mut iter);
    skip_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("`{name}` is generic; generics are unsupported"));
    }
    match (kind.as_str(), iter.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Ok(Item {
            name,
            shape: Shape::Named(parse_named_fields(g.stream())?),
        }),
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            // Count top-level fields: a comma at angle depth 0 separates.
            let mut depth = 0i32;
            let mut commas = 0usize;
            let mut nonempty = false;
            for tt in g.stream() {
                nonempty = true;
                if let TokenTree::Punct(p) = &tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 0 => commas += 1,
                        _ => {}
                    }
                }
            }
            if !nonempty || commas > 0 {
                return Err(format!(
                    "tuple struct `{name}` must have exactly one field for derive support"
                ));
            }
            Ok(Item {
                name,
                shape: Shape::Newtype,
            })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Ok(Item {
            name,
            shape: Shape::UnitEnum(parse_unit_variants(g.stream())?),
        }),
        _ => Err(format!("unsupported item shape for `{name}`")),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return err(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut inserts = String::new();
            for (f, _) in fields {
                inserts.push_str(&format!(
                    "map.insert({f:?}.to_string(), ::serde::Serialize::to_json_value(&self.{f}));\n"
                ));
            }
            format!(
                "let mut map = ::std::collections::BTreeMap::new();\n{inserts}::serde::Value::Object(map)"
            )
        }
        Shape::Newtype => "::serde::Serialize::to_json_value(&self.0)".to_string(),
        Shape::UnitEnum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!("{name}::{v} => {v:?},\n"));
            }
            format!("::serde::Value::String(String::from(match self {{ {arms} }}))")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return err(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for (f, has_default) in fields {
                let missing = if *has_default {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!("return Err(::serde::DeError::missing_field({name:?}, {f:?}))")
                };
                inits.push_str(&format!(
                    "{f}: match obj.get({f:?}) {{\n\
                         Some(v) => ::serde::Deserialize::from_json_value(v)?,\n\
                         None => {missing},\n\
                     }},\n"
                ));
            }
            format!(
                "let obj = value.as_object().ok_or_else(|| \
                     ::serde::DeError::expected(\"object\", {name:?}))?;\n\
                 Ok({name} {{ {inits} }})"
            )
        }
        Shape::Newtype => {
            format!("Ok({name}(::serde::Deserialize::from_json_value(value)?))")
        }
        Shape::UnitEnum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!("{v:?} => Ok({name}::{v}),\n"));
            }
            format!(
                "let s = value.as_str().ok_or_else(|| \
                     ::serde::DeError::expected(\"string\", {name:?}))?;\n\
                 match s {{ {arms} _ => Err(::serde::DeError::unknown_variant({name:?}, s)) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_json_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
