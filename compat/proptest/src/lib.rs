//! Offline compat shim: a deterministic property-testing mini-engine with
//! the `proptest` API surface this workspace uses.
//!
//! Differences from real proptest, acceptable here:
//! * **No shrinking.** A failing case reports its case number and seed; the
//!   run is fully deterministic (seeded from the test name), so failures
//!   reproduce exactly on re-run.
//! * Strategies are plain samplers (`Strategy::sample(&self, rng)`), not
//!   lazy value trees.
//!
//! Supported surface: `proptest! { #![proptest_config(..)] ... }` with
//! `pat in strategy` and `ident: Type` parameters, integer/float range
//! strategies, `any::<T>()`, `Just`, `prop_oneof![w => s, ...]`,
//! `.prop_map(..)`, `proptest::collection::vec(elem, size_range)`, tuple
//! strategies, and `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`.

use std::ops::Range;

/// Splitmix64: tiny, fast, deterministic; good enough for test-case
/// generation (the sim crates carry their own RNG for model fidelity).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded generation (Lemire); bias is negligible
        // for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a over the test name, used to derive per-test seeds.
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A value generator. Object-safe so `prop_oneof!` can box choices.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Chain a value-dependent strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
    {
        FlatMapStrategy { inner: self, f }
    }

    /// Erase the concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width u64/i64 inclusive range.
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).sample(rng) as f32
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (*self.start() as f64..=*self.end() as f64).sample(rng) as f32
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 2f64.powi((rng.below(613) as i32) - 306);
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII, occasionally any scalar value.
        if rng.below(4) > 0 {
            (0x20 + rng.below(0x5f)) as u8 as char
        } else {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{fffd}')
        }
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `vec(elem, 0..100)` — a vector of `elem`-generated values with
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Weighted union built by [`prop_oneof!`].
pub struct OneOf<T> {
    pub choices: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.choices.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof with zero total weight");
        let mut pick = rng.below(total);
        for (w, s) in &self.choices {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick in range")
    }
}

/// Run configuration; only `cases` is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted choice: `prop_oneof![2 => strat_a, 1 => strat_b]`; weights
/// default to 1 when omitted.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::OneOf { choices: vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ]}
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf { choices: vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ]}
    };
}

/// Bind one `proptest!` parameter list entry to a sampled value.
#[macro_export]
#[doc(hidden)]
macro_rules! __prop_bind {
    ($rng:expr;) => {};
    ($rng:expr; $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::sample(&($strat), $rng);
    };
    ($rng:expr; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::sample(&($strat), $rng);
        $crate::__prop_bind!($rng; $($rest)*);
    };
    ($rng:expr; $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary($rng);
    };
    ($rng:expr; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary($rng);
        $crate::__prop_bind!($rng; $($rest)*);
    };
}

/// Emit the test functions of one `proptest!` block.
#[macro_export]
#[doc(hidden)]
macro_rules! __prop_items {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case);
                let rng = &mut $crate::TestRng::new(seed);
                $crate::__prop_bind!(rng; $($params)*);
                $body
            }
        }
        $crate::__prop_items!($cfg; $($rest)*);
    };
}

/// The `proptest!` block: an optional `#![proptest_config(..)]` followed by
/// `#[test] fn name(bindings) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__prop_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__prop_items!(::std::default::Default::default(); $($rest)*);
    };
}

pub mod prelude {
    /// `prop::collection::vec(..)`-style paths.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..5, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec(crate::collection::vec(any::<u8>(), 0..4), 1..6),
            (a, b) in (0u32..10, 10u32..20),
        ) {
            prop_assert!((1..6).contains(&v.len()));
            prop_assert!(v.iter().all(|inner| inner.len() < 4));
            prop_assert!(a < 10 && (10..20).contains(&b));
        }

        #[test]
        fn typed_params_and_oneof(bits: u64, flag: bool) {
            let strat = prop_oneof![
                3 => Just(0u8),
                1 => (1u8..3).prop_map(|x| x * 10),
            ];
            let mut rng = crate::TestRng::new(bits);
            let v = strat.sample(&mut rng);
            prop_assert!(v == 0 || v == 10 || v == 20);
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::new(crate::seed_for("t", 3));
        let mut b = crate::TestRng::new(crate::seed_for("t", 3));
        let sa: Vec<u64> = (0..10).map(|_| a.below(100)).collect();
        let sb: Vec<u64> = (0..10).map(|_| b.below(100)).collect();
        assert_eq!(sa, sb);
    }
}
