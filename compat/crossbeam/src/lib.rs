//! Offline compat shim: the `crossbeam::thread::scope` API surface this
//! workspace uses, implemented over `std::thread::scope` (stable since
//! Rust 1.63, which postdates the original crossbeam scoped-thread API).
//!
//! Differences from real crossbeam, acceptable for the uses here:
//! * `scope` returns `Ok(..)` always; a panicking child that is never
//!   joined propagates its panic when the std scope exits instead of
//!   surfacing as `Err`. Every call site in this workspace joins all
//!   handles and `.expect()`s the result, so behaviour under panic is
//!   equivalent (the test still fails, with the same message).

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to spawned closures, mirroring crossbeam's
    /// `&Scope` parameter (used for nested spawns).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handle)),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("joins"))
                .sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 21u32).join().expect("inner") * 2);
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
