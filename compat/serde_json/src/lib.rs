//! Offline compat shim: the `serde_json` API surface this workspace uses —
//! [`json!`], [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`] and the re-exported [`Value`] tree (which lives in the
//! sibling `serde` shim so derives can target it).
//!
//! Output is deterministic: objects are BTreeMaps, so keys serialize in
//! sorted order, and float formatting goes through Rust's shortest-repr
//! `Display`. The telemetry JSONL determinism tests lean on this.

use std::fmt::Write as _;

pub use serde::{Map, Number, Value};

/// Error for both parsing and (infallible here) serialization paths.
pub type Error = serde::DeError;

/// Serialize any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Compact one-line JSON, `{"a":1,"b":[2,3]}` style.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_json_value(), &mut out);
    Ok(out)
}

/// Pretty JSON with two-space indentation, mirroring serde_json's layout.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json_value(), &mut out, 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_json_value(&value)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, elem) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(elem, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, elem)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(elem, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, elem) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(elem, out, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, elem)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(elem, out, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over bytes.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            out.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.eat_keyword("\\u") {
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through; find the char at
                    // this byte position.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let n = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        let num = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        } else if let Some(stripped) = text.strip_prefix('-') {
            let _ = stripped;
            Number::NegInt(
                text.parse::<i64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        } else {
            Number::PosInt(
                text.parse::<u64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        };
        Ok(Value::Number(num))
    }
}

// ---------------------------------------------------------------------------
// json! — a tt-muncher in the style of serde_json's, reduced to the forms
// used here (string-literal keys; values may be null, literals, nested
// arrays/objects, or arbitrary expressions of Serialize types).
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::to_value(&$other) };

    // ----- array elements ---------------------------------------------------
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----- object entries ---------------------------------------------------
    // Done.
    (@object $object:ident () ()) => {};
    // Insert entry, more to come.
    (@object $object:ident [$key:tt] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(::std::string::String::from($key), $value);
        $crate::json_internal!(@object $object () ($($rest)*));
    };
    // Insert final entry.
    (@object $object:ident [$key:tt] ($value:expr)) => {
        let _ = $object.insert(::std::string::String::from($key), $value);
    };
    // Current entry's value is a special form.
    (@object $object:ident ($key:tt) (: null $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$key] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($key:tt) (: true $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$key] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($key:tt) (: false $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$key] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($key:tt) (: [$($arr:tt)*] $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$key] ($crate::json_internal!([$($arr)*])) $($rest)*);
    };
    (@object $object:ident ($key:tt) (: {$($map:tt)*} $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$key] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Value is an expression followed by a comma, or the last one.
    (@object $object:ident ($key:tt) (: $value:expr , $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$key] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($key:tt) (: $value:expr)) => {
        $crate::json_internal!(@object $object [$key] ($crate::json_internal!($value)));
    };
    // Take the next token as the key.
    (@object $object:ident () ($key:tt $($rest:tt)*)) => {
        $crate::json_internal!(@object $object ($key) ($($rest)*));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let name = "vm-1";
        let v = json!({
            "server": {"id": 7u64, "name": name, "status": "ACTIVE"},
            "tags": ["a", "b"],
            "empty": [],
            "nothing": null,
            "flag": true,
            "computed": 6 * 7,
        });
        assert_eq!(v["server"]["id"].as_u64(), Some(7));
        assert_eq!(v["server"]["name"], "vm-1");
        assert_eq!(v["tags"][0], "a");
        assert!(v["nothing"].is_null());
        assert_eq!(v["flag"].as_bool(), Some(true));
        assert_eq!(v["computed"].as_u64(), Some(42));
        assert!(v["absent"].is_null());
    }

    #[test]
    fn compact_roundtrip() {
        let v = json!({"b": [1, 2.5, null], "a": {"x": "y\n\"z\""}});
        let s = to_string(&v).expect("serializes");
        // BTreeMap ⇒ sorted keys.
        assert_eq!(s, r#"{"a":{"x":"y\n\"z\""},"b":[1,2.5,null]}"#);
        let back: Value = from_str(&s).expect("parses");
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_layout() {
        let v = json!({"a": 1, "b": []});
        assert_eq!(
            to_string_pretty(&v).expect("ok"),
            "{\n  \"a\": 1,\n  \"b\": []\n}"
        );
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<Value>("{nope").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"open").is_err());
    }

    #[test]
    fn numbers() {
        let v: Value = from_str("[-3, 18446744073709551615, 2.5e3]").expect("parses");
        assert_eq!(v[0].as_i64(), Some(-3));
        assert_eq!(v[1].as_u64(), Some(u64::MAX));
        assert_eq!(v[2].as_f64(), Some(2500.0));
        assert_eq!(
            to_string(&v).expect("ok"),
            "[-3,18446744073709551615,2500.0]"
        );
    }

    #[test]
    fn index_mut_autovivifies() {
        let mut v = json!({"server": {"id": 1}});
        v["server"]["cloud"] = json!("adler");
        assert_eq!(v["server"]["cloud"], "adler");
    }
}
