//! Bailey–Borwein–Plouffe hexadecimal digit extraction for π.
//!
//! Blowfish initializes its P-array and S-boxes with the first 8336
//! fractional hexadecimal digits of π. Rather than embedding a thousand
//! magic constants, we compute them. The BBP formula
//!
//! ```text
//! π = Σ_{k≥0} 16^{-k} ( 4/(8k+1) − 2/(8k+4) − 1/(8k+5) − 1/(8k+6) )
//! ```
//!
//! lets us evaluate the fractional part of `16^n · π` directly with modular
//! exponentiation, yielding a window of hex digits starting at position `n`
//! without computing any earlier digit.
//!
//! Floating-point BBP implementations are only *probably* correct in their
//! trailing digits, so we take 4 digits per evaluation and verify a 4-digit
//! overlap between consecutive windows; any disagreement panics (and the
//! Blowfish test vectors would catch a miscomputed table regardless).

/// `16^exp mod m` by square-and-multiply. `m` stays below ~2^17 for the
/// table sizes we need, so intermediate products fit comfortably in `u64`.
fn pow16_mod(mut exp: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    if m == 1 {
        return 0;
    }
    let mut base = 16 % m;
    let mut acc = 1 % m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % m;
        }
        base = base * base % m;
        exp >>= 1;
    }
    acc
}

/// Fractional part of `Σ_k 16^{n−k} / (8k + j)`.
fn series_sum(n: u64, j: u64) -> f64 {
    let mut sum = 0.0f64;
    // Terms with non-negative exponent: exact via modular arithmetic.
    for k in 0..=n {
        let m = 8 * k + j;
        sum += pow16_mod(n - k, m) as f64 / m as f64;
        sum -= sum.floor(); // keep only the fractional part, bounding error
    }
    // Tail with negative exponents: converges in a few terms.
    let mut t = 1.0 / 16.0;
    let mut k = n + 1;
    while t > 1e-17 {
        sum += t / (8 * k + j) as f64;
        t /= 16.0;
        k += 1;
    }
    sum - sum.floor()
}

/// Fractional part of `16^n · π` as an `f64` in `[0, 1)`.
fn pi_frac_at(n: u64) -> f64 {
    let x = 4.0 * series_sum(n, 1) - 2.0 * series_sum(n, 4) - series_sum(n, 5) - series_sum(n, 6);
    let f = x - x.floor();
    debug_assert!((0.0..1.0).contains(&f));
    f
}

/// First 8 hex digits (most significant first) of the fractional part of
/// `16^n · π`, i.e. digits `n+1 ..= n+8` of π's hexadecimal expansion.
fn hex_window(n: u64) -> [u8; 8] {
    let mut f = pi_frac_at(n);
    let mut out = [0u8; 8];
    for d in &mut out {
        f *= 16.0;
        let digit = f.floor();
        *d = digit as u8;
        f -= digit;
    }
    out
}

/// Compute the first `count` fractional hexadecimal digits of π, verifying a
/// 4-digit overlap between consecutive BBP windows.
///
/// # Panics
/// If two overlapping windows disagree, which would indicate the f64
/// evaluation lost too much precision (does not happen for the sizes
/// Blowfish needs; the check is a safety net).
pub fn pi_hex_digits(count: usize) -> Vec<u8> {
    let mut digits = Vec::with_capacity(count + 8);
    let mut pos = 0u64;
    while digits.len() < count {
        let w = hex_window(pos);
        if pos == 0 {
            digits.extend_from_slice(&w);
        } else {
            // The first 4 digits of this window overlap the last 4 taken.
            let tail = &digits[digits.len() - 4..];
            assert_eq!(
                tail,
                &w[..4],
                "BBP overlap mismatch at hex position {pos}: precision exhausted"
            );
            digits.extend_from_slice(&w[4..]);
        }
        pos += 4;
    }
    digits.truncate(count);
    digits
}

/// Pack hex digits into big-endian `u32` words (8 digits per word).
pub fn pi_hex_words(words: usize) -> Vec<u32> {
    let digits = pi_hex_digits(words * 8);
    digits
        .chunks_exact(8)
        .map(|c| c.iter().fold(0u32, |acc, &d| (acc << 4) | d as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_digits_match_reference() {
        // π = 3.243F6A8885A308D313198A2E03707344A4093822299F31D008...
        let d = pi_hex_digits(48);
        let expected: Vec<u8> = "243F6A8885A308D313198A2E03707344A4093822299F31D0"
            .chars()
            .map(|c| c.to_digit(16).unwrap() as u8)
            .collect();
        assert_eq!(d, expected);
    }

    #[test]
    fn first_words_are_blowfish_p_array_head() {
        // The canonical Blowfish P-array begins with these words.
        let w = pi_hex_words(4);
        assert_eq!(w, vec![0x243F_6A88, 0x85A3_08D3, 0x1319_8A2E, 0x0370_7344]);
    }

    #[test]
    fn deep_window_is_consistent() {
        // Digit 1000 onward, cross-checked between a direct window and the
        // sequential scan (the overlap assertions inside pi_hex_digits also
        // exercise this continuously).
        let all = pi_hex_digits(1008);
        let w = hex_window(1000);
        assert_eq!(&all[1000..1008], &w[..]);
    }

    #[test]
    fn embedded_tables_match_bbp() {
        // The full 1042-word derivation is done once, in release mode, by
        // the generator that produced `pi_tables.rs` (see that file's
        // header). Here we re-derive a prefix spanning the whole P-array and
        // the head of S-box 1 and check it against the embedded constants;
        // the Blowfish test vectors pin the remainder (any wrong S-box word
        // fails them).
        let w = pi_hex_words(22);
        assert_eq!(&w[..18], &crate::pi_tables::PI_P[..]);
        assert_eq!(&w[18..22], &crate::pi_tables::PI_S[0][..4]);
        // Published spot values: S1[0] and P[17].
        assert_eq!(w[18], 0xD131_0BA6);
        assert_eq!(w[17], 0x8979_FB1B);
    }

    #[test]
    fn pow16_mod_edges() {
        assert_eq!(pow16_mod(0, 7), 1);
        assert_eq!(pow16_mod(5, 1), 0);
        assert_eq!(pow16_mod(3, 9), 4096 % 9);
    }
}
