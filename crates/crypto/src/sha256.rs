//! SHA-256 (FIPS 180-4) — the digest pinning experiment artifacts.
//!
//! The scale harness (`exp_scale`) proves determinism by hashing its
//! invoice and notification streams and printing the digest; MD5 already
//! serves the rsync strong checksum, but artifact pinning wants a digest
//! nobody can collide by accident. Streaming API: [`Sha256::update`]
//! then [`Sha256::finalize`], or the one-shot [`sha256`] /
//! [`sha256_hex`].

/// `K[i]` — first 32 bits of the fractional parts of the cube roots of
/// the first 64 primes, hardcoded per the standard.
#[rustfmt::skip]
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5,
    0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3,
    0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5,
    0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 state.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09_e667,
                0xbb67_ae85,
                0x3c6e_f372,
                0xa54f_f53a,
                0x510e_527f,
                0x9b05_688c,
                0x1f83_d9ab,
                0x5be0_cd19,
            ],
            buffer: [0u8; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }

    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bytes = self.length_bytes.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered < 64 {
                // Partial block still pending; don't fall through to the
                // remainder copy, which would clobber the buffered count.
                return;
            }
            let block = self.buffer;
            self.compress(&block);
            self.buffered = 0;
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rest = chunks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffered = rest.len();
    }

    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.length_bytes.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Length is appended big-endian, so bypass `update`'s counter.
        let mut block = self.buffer;
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot digest.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot digest as lowercase hex — the form the harnesses print.
pub fn sha256_hex(data: &[u8]) -> String {
    to_hex(&sha256(data))
}

/// Lowercase hex of a digest.
pub fn to_hex(digest: &[u8; 32]) -> String {
    let mut s = String::with_capacity(64);
    for b in digest {
        s.push(char::from_digit(u32::from(b >> 4), 16).unwrap());
        s.push(char::from_digit(u32::from(b & 0xF), 16).unwrap());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            to_hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_every_split() {
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(31) >> 1) as u8)
            .collect();
        let whole = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }
}
