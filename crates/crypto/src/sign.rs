//! Keyed signatures for the sharing layer's capabilities.
//!
//! The 2012-era OSDC federation exchanged *symmetric* trust material out
//! of band — Shibboleth federation metadata, shared NRPE secrets, cloud
//! API keypairs — so capability signatures here are HMAC-MD5 (RFC 2104)
//! under per-principal secrets registered in a federation [`Keyring`],
//! not public-key signatures. The flow being reproduced is "only a
//! holder of the grantor's key could have minted this capability, and
//! any data center holding the federation keyring can check it"; the
//! same scope note as the rest of this crate applies — fidelity to the
//! protocol, not vetted cryptography.
//!
//! Wire format of a [`Signature`]: 8 bytes of little-endian [`KeyId`]
//! followed by the 16-byte MAC — 24 bytes total, so truncation is a
//! typed decode error ([`SignatureError::Truncated`]) rather than a
//! silent misverify.

use std::collections::BTreeMap;

use crate::md5::md5;

/// HMAC block size for MD5 (RFC 2104).
const BLOCK: usize = 64;

/// RFC 2104 HMAC-MD5 over `payload` with an arbitrary-length key.
pub fn hmac_md5(key: &[u8], payload: &[u8]) -> [u8; 16] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..16].copy_from_slice(&md5(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(BLOCK + payload.len());
    inner.extend(k.iter().map(|b| b ^ 0x36));
    inner.extend_from_slice(payload);
    let inner_digest = md5(&inner);
    let mut outer = Vec::with_capacity(BLOCK + 16);
    outer.extend(k.iter().map(|b| b ^ 0x5c));
    outer.extend_from_slice(&inner_digest);
    md5(&outer)
}

/// Stable identifier of a signing key: the first 8 bytes of
/// `MD5("osdc-keyid" ‖ secret)`, little-endian. Deriving the id from the
/// secret keeps it collision-spread without a registry round-trip.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyId(pub u64);

impl std::fmt::Display for KeyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "key:{:016x}", self.0)
    }
}

/// A per-principal signing secret.
#[derive(Clone)]
pub struct SigningKey {
    secret: [u8; 16],
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never render the secret.
        write!(f, "SigningKey({})", self.id())
    }
}

impl SigningKey {
    /// Derive a key from a 64-bit seed (experiment harnesses).
    pub fn from_seed(seed: u64) -> Self {
        let mut buf = *b"osdc-signing-key........";
        buf[16..].copy_from_slice(&seed.to_le_bytes());
        SigningKey { secret: md5(&buf) }
    }

    /// Derive a key from a passphrase (operator-facing flows).
    pub fn from_passphrase(passphrase: &str) -> Self {
        SigningKey {
            secret: md5(passphrase.as_bytes()),
        }
    }

    pub fn id(&self) -> KeyId {
        let mut buf = Vec::with_capacity(10 + 16);
        buf.extend_from_slice(b"osdc-keyid");
        buf.extend_from_slice(&self.secret);
        let d = md5(&buf);
        KeyId(u64::from_le_bytes(d[..8].try_into().expect("8 bytes")))
    }

    /// Sign `payload`, binding the signature to this key's id.
    pub fn sign(&self, payload: &[u8]) -> Signature {
        Signature {
            key: self.id(),
            mac: hmac_md5(&self.secret, payload),
        }
    }
}

/// A detached signature: which key, and the MAC it produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Signature {
    pub key: KeyId,
    pub mac: [u8; 16],
}

impl Signature {
    pub const WIRE_LEN: usize = 24;

    pub fn to_bytes(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[..8].copy_from_slice(&self.key.0.to_le_bytes());
        out[8..].copy_from_slice(&self.mac);
        out
    }

    /// Decode a wire signature. Anything but exactly
    /// [`Signature::WIRE_LEN`] bytes is a typed error — a truncated
    /// signature must fail *decoding*, never verify against a prefix.
    pub fn from_bytes(bytes: &[u8]) -> Result<Signature, SignatureError> {
        if bytes.len() != Self::WIRE_LEN {
            return Err(SignatureError::Truncated { got: bytes.len() });
        }
        let key = KeyId(u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")));
        let mut mac = [0u8; 16];
        mac.copy_from_slice(&bytes[8..]);
        Ok(Signature { key, mac })
    }
}

/// Why a signature failed to decode or verify.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignatureError {
    /// Wire bytes were not exactly [`Signature::WIRE_LEN`] long.
    Truncated { got: usize },
    /// The signing key is not registered in the verifying keyring.
    UnknownKey(KeyId),
    /// The MAC does not match the payload under the named key.
    BadMac(KeyId),
}

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignatureError::Truncated { got } => write!(
                f,
                "signature truncated: {got} byte(s), expected {}",
                Signature::WIRE_LEN
            ),
            SignatureError::UnknownKey(k) => write!(f, "unknown signing {k}"),
            SignatureError::BadMac(k) => write!(f, "bad MAC under {k}"),
        }
    }
}

impl std::error::Error for SignatureError {}

/// The federation keyring: every signing secret the verifier trusts,
/// keyed by [`KeyId`] (the symmetric analogue of federation metadata).
#[derive(Clone, Debug, Default)]
pub struct Keyring {
    keys: BTreeMap<KeyId, [u8; 16]>,
}

impl Keyring {
    pub fn new() -> Self {
        Self::default()
    }

    /// Trust a key. Idempotent; returns the key's id for convenience.
    pub fn register(&mut self, key: &SigningKey) -> KeyId {
        let id = key.id();
        self.keys.insert(id, key.secret);
        id
    }

    pub fn contains(&self, id: KeyId) -> bool {
        self.keys.contains_key(&id)
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Verify `sig` over `payload`: the key must be registered and the
    /// MAC must match (compared in full — both 16-byte arrays).
    pub fn verify(&self, payload: &[u8], sig: &Signature) -> Result<(), SignatureError> {
        let secret = self
            .keys
            .get(&sig.key)
            .ok_or(SignatureError::UnknownKey(sig.key))?;
        if hmac_md5(secret, payload) == sig.mac {
            Ok(())
        } else {
            Err(SignatureError::BadMac(sig.key))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 2202 §2 — HMAC-MD5 test vectors. These pin the primitive the
    // whole capability trust chain hangs off.
    #[test]
    fn rfc2202_vector_1() {
        let key = [0x0bu8; 16];
        assert_eq!(
            hex(&hmac_md5(&key, b"Hi There")),
            "9294727a3638bb1c13f48ef8158bfc9d"
        );
    }

    #[test]
    fn rfc2202_vector_2() {
        assert_eq!(
            hex(&hmac_md5(b"Jefe", b"what do ya want for nothing?")),
            "750c783e6ab0b503eaa86e310a5db738"
        );
    }

    #[test]
    fn rfc2202_vector_6_key_longer_than_block() {
        let key = [0xaau8; 80];
        assert_eq!(
            hex(&hmac_md5(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "6b1ab7fe4bd7bf8f0b62e6ce61b9d0cd"
        );
    }

    #[test]
    fn sign_verify_round_trip() {
        let key = SigningKey::from_seed(2012);
        let mut ring = Keyring::new();
        ring.register(&key);
        let sig = key.sign(b"grant alice /public/1000genomes view");
        assert!(ring
            .verify(b"grant alice /public/1000genomes view", &sig)
            .is_ok());
        assert_eq!(
            ring.verify(b"grant alice /public/1000genomes COPY", &sig),
            Err(SignatureError::BadMac(key.id()))
        );
    }

    #[test]
    fn key_ids_are_stable_and_spread() {
        let a = SigningKey::from_seed(1);
        let b = SigningKey::from_seed(2);
        assert_eq!(a.id(), SigningKey::from_seed(1).id());
        assert_ne!(a.id(), b.id());
        assert_ne!(
            SigningKey::from_passphrase("pw").id(),
            SigningKey::from_passphrase("pw2").id()
        );
    }

    #[test]
    fn wire_round_trip() {
        let sig = SigningKey::from_seed(7).sign(b"payload");
        let decoded = Signature::from_bytes(&sig.to_bytes()).expect("full wire");
        assert_eq!(decoded, sig);
    }
}
