//! Block-cipher modes of operation over 64-bit block ciphers.
//!
//! The transfer simulations encrypt realistic byte streams: rsync-over-ssh
//! used CBC with PKCS#7-style padding, while UDR's Blowfish ran in a
//! counter-style stream configuration. Both are provided, over any
//! [`BlockCipher64`].

/// A cipher with a 64-bit block, keyed at construction.
pub trait BlockCipher64 {
    fn encrypt_block_u64(&self, block: u64) -> u64;
    fn decrypt_block_u64(&self, block: u64) -> u64;

    /// Encrypt many *independent* blocks in place (ECB/CTR building
    /// block). The default loops one block at a time; ciphers override it
    /// with interleaved multi-block kernels that produce identical bytes
    /// (pinned by `tests/batched_equivalence.rs`).
    fn encrypt_blocks_u64(&self, blocks: &mut [u64]) {
        for b in blocks {
            *b = self.encrypt_block_u64(*b);
        }
    }

    /// Decrypt many independent blocks in place; see
    /// [`BlockCipher64::encrypt_blocks_u64`].
    fn decrypt_blocks_u64(&self, blocks: &mut [u64]) {
        for b in blocks {
            *b = self.decrypt_block_u64(*b);
        }
    }

    /// Encrypt an 8-byte block in place (big-endian convention).
    fn encrypt_block(&self, block: &mut [u8; 8]) {
        *block = self
            .encrypt_block_u64(u64::from_be_bytes(*block))
            .to_be_bytes();
    }

    /// Decrypt an 8-byte block in place.
    fn decrypt_block(&self, block: &mut [u8; 8]) {
        *block = self
            .decrypt_block_u64(u64::from_be_bytes(*block))
            .to_be_bytes();
    }
}

/// Blocks per stack slab in the batched ECB/CBC kernels.
const ECB_SLAB_BLOCKS: usize = 32;

/// ECB encryption over a block-aligned byte buffer, `ECB_SLAB_BLOCKS`
/// blocks per cipher call (big-endian block convention, identical bytes
/// to a per-block loop). Panics if `data.len()` is not a multiple of 8.
pub fn ecb_encrypt<C: BlockCipher64>(cipher: &C, data: &mut [u8]) {
    ecb_apply(data, |slab| cipher.encrypt_blocks_u64(slab));
}

/// ECB decryption; the inverse of [`ecb_encrypt`].
pub fn ecb_decrypt<C: BlockCipher64>(cipher: &C, data: &mut [u8]) {
    ecb_apply(data, |slab| cipher.decrypt_blocks_u64(slab));
}

fn ecb_apply(data: &mut [u8], mut kernel: impl FnMut(&mut [u64])) {
    assert!(
        data.len().is_multiple_of(8),
        "ECB needs block-aligned data, got {} bytes",
        data.len()
    );
    let mut slab = [0u64; ECB_SLAB_BLOCKS];
    for chunk in data.chunks_mut(ECB_SLAB_BLOCKS * 8) {
        let n = chunk.len() / 8;
        for (s, b) in slab[..n].iter_mut().zip(chunk.chunks_exact(8)) {
            *s = u64::from_be_bytes(b.try_into().expect("8-byte block"));
        }
        kernel(&mut slab[..n]);
        for (s, b) in slab[..n].iter().zip(chunk.chunks_exact_mut(8)) {
            b.copy_from_slice(&s.to_be_bytes());
        }
    }
}

/// PKCS#7 padding for 8-byte blocks.
pub struct Pkcs7;

impl Pkcs7 {
    /// Pad `data` to a multiple of 8 bytes; always appends 1..=8 bytes.
    pub fn pad(data: &mut Vec<u8>) {
        let pad = 8 - data.len() % 8;
        data.resize(data.len() + pad, pad as u8);
    }

    /// Strip and validate padding. Returns `None` on malformed padding.
    pub fn unpad(data: &mut Vec<u8>) -> Option<()> {
        let &last = data.last()?;
        let pad = last as usize;
        if pad == 0 || pad > 8 || pad > data.len() {
            return None;
        }
        if !data[data.len() - pad..].iter().all(|&b| b == last) {
            return None;
        }
        data.truncate(data.len() - pad);
        Some(())
    }
}

/// CBC encryption/decryption with PKCS#7 padding.
pub struct CbcEncryptor<'c, C: BlockCipher64> {
    cipher: &'c C,
    iv: u64,
}

impl<'c, C: BlockCipher64> CbcEncryptor<'c, C> {
    pub fn new(cipher: &'c C, iv: u64) -> Self {
        CbcEncryptor { cipher, iv }
    }

    pub fn encrypt(&self, plaintext: &[u8]) -> Vec<u8> {
        let mut data = plaintext.to_vec();
        Pkcs7::pad(&mut data);
        let mut prev = self.iv;
        for chunk in data.chunks_exact_mut(8) {
            let block = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
            prev = self.cipher.encrypt_block_u64(block ^ prev);
            chunk.copy_from_slice(&prev.to_be_bytes());
        }
        data
    }

    /// Returns `None` if the ciphertext length is not block-aligned or the
    /// padding is invalid (i.e. wrong key/IV or corruption).
    ///
    /// Unlike encryption (inherently serial: each block's input chains on
    /// the previous ciphertext), CBC decryption runs the cipher over
    /// independent ciphertext blocks, so it batches through
    /// [`BlockCipher64::decrypt_blocks_u64`] with the XOR chain applied
    /// afterwards.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Option<Vec<u8>> {
        if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(8) {
            return None;
        }
        let mut data = ciphertext.to_vec();
        let mut prev = self.iv;
        for chunk in data.chunks_mut(ECB_SLAB_BLOCKS * 8) {
            let n = chunk.len() / 8;
            let mut ct = [0u64; ECB_SLAB_BLOCKS];
            for (c, b) in ct[..n].iter_mut().zip(chunk.chunks_exact(8)) {
                *c = u64::from_be_bytes(b.try_into().expect("8-byte block"));
            }
            let mut slab = ct;
            self.cipher.decrypt_blocks_u64(&mut slab[..n]);
            for (i, b) in chunk.chunks_exact_mut(8).enumerate() {
                b.copy_from_slice(&(slab[i] ^ prev).to_be_bytes());
                prev = ct[i];
            }
        }
        Pkcs7::unpad(&mut data)?;
        Some(data)
    }
}

/// Counter-mode keystream: encryption and decryption are the same XOR, so
/// one type serves both directions. Suitable for UDR's packetized stream.
///
/// Keystream is generated in batches of up to [`CTR_BATCH_BLOCKS`]
/// blocks into a fixed buffer (refills are sized to the bytes actually
/// needed, so short messages never pay for a full batch), and the XOR
/// runs over word-sized chunks. The byte stream — counter sequence,
/// big-endian block serialization, resumption mid-block across `apply`
/// calls — is identical to applying one block at a time.
pub struct CtrStream<'c, C: BlockCipher64> {
    cipher: &'c C,
    nonce: u64,
    counter: u64,
    keystream: [u8; CTR_BATCH_BLOCKS * 8],
    /// Valid bytes in `keystream` (a multiple of the block size).
    filled: usize,
    /// Bytes of `keystream[..filled]` already consumed.
    used: usize,
}

/// Blocks generated per [`CtrStream`] keystream refill.
pub const CTR_BATCH_BLOCKS: usize = 32;

impl<'c, C: BlockCipher64> CtrStream<'c, C> {
    /// Blocks generated per keystream refill.
    pub const BATCH_BLOCKS: usize = CTR_BATCH_BLOCKS;

    pub fn new(cipher: &'c C, nonce: u64) -> Self {
        CtrStream {
            cipher,
            nonce,
            counter: 0,
            keystream: [0u8; CTR_BATCH_BLOCKS * 8],
            filled: 0,
            used: 0,
        }
    }

    /// Generate enough blocks for `need` more bytes, capped at one batch.
    /// The counter blocks are laid out in a slab and encrypted through one
    /// [`BlockCipher64::encrypt_blocks_u64`] call.
    fn refill(&mut self, need: usize) {
        let blocks = need.div_ceil(8).clamp(1, CTR_BATCH_BLOCKS);
        let mut slab = [0u64; CTR_BATCH_BLOCKS];
        for s in slab.iter_mut().take(blocks) {
            *s = self.nonce ^ self.counter;
            self.counter = self.counter.wrapping_add(1);
        }
        self.cipher.encrypt_blocks_u64(&mut slab[..blocks]);
        for (out, s) in self.keystream.chunks_exact_mut(8).zip(&slab[..blocks]) {
            out.copy_from_slice(&s.to_be_bytes());
        }
        self.filled = blocks * 8;
        self.used = 0;
    }

    /// XOR the keystream into `data` in place.
    pub fn apply(&mut self, data: &mut [u8]) {
        let mut i = 0;
        while i < data.len() {
            if self.used == self.filled {
                self.refill(data.len() - i);
            }
            let n = (self.filled - self.used).min(data.len() - i);
            let dst = &mut data[i..i + n];
            let ks = &self.keystream[self.used..self.used + n];
            let mut j = 0;
            while j + 8 <= n {
                let d = u64::from_ne_bytes(dst[j..j + 8].try_into().expect("8 bytes"));
                let k = u64::from_ne_bytes(ks[j..j + 8].try_into().expect("8 bytes"));
                dst[j..j + 8].copy_from_slice(&(d ^ k).to_ne_bytes());
                j += 8;
            }
            while j < n {
                dst[j] ^= ks[j];
                j += 1;
            }
            self.used += n;
            i += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blowfish::Blowfish;
    use crate::des::TripleDes;

    #[test]
    fn pkcs7_roundtrip_all_lengths() {
        for len in 0..=32usize {
            let mut v: Vec<u8> = (0..len as u8).collect();
            let orig = v.clone();
            Pkcs7::pad(&mut v);
            assert_eq!(v.len() % 8, 0);
            assert!(v.len() > orig.len(), "padding always adds bytes");
            Pkcs7::unpad(&mut v).expect("valid padding");
            assert_eq!(v, orig);
        }
    }

    #[test]
    fn pkcs7_rejects_malformed() {
        assert!(Pkcs7::unpad(&mut vec![]).is_none());
        assert!(Pkcs7::unpad(&mut vec![0u8]).is_none()); // pad byte 0
        assert!(Pkcs7::unpad(&mut vec![9u8]).is_none()); // pad byte > 8
        assert!(Pkcs7::unpad(&mut vec![1, 2, 3, 3, 2]).is_none()); // inconsistent
    }

    #[test]
    fn cbc_roundtrip_blowfish() {
        let bf = Blowfish::new(b"session-key");
        let cbc = CbcEncryptor::new(&bf, 0x0123_4567_89AB_CDEF);
        for len in [0usize, 1, 7, 8, 9, 100, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let ct = cbc.encrypt(&pt);
            assert_ne!(ct, pt, "ciphertext must differ (len {len})");
            assert_eq!(cbc.decrypt(&ct).expect("roundtrip"), pt);
        }
    }

    #[test]
    fn cbc_roundtrip_3des() {
        let mut key = [0u8; 24];
        for (i, b) in key.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(11).wrapping_add(3);
        }
        let tdes = TripleDes::new(key);
        let cbc = CbcEncryptor::new(&tdes, 42);
        let pt = b"The Design of a Community Science Cloud".to_vec();
        let ct = cbc.encrypt(&pt);
        assert_eq!(cbc.decrypt(&ct).expect("roundtrip"), pt);
    }

    #[test]
    fn cbc_detects_wrong_iv_or_truncation() {
        let bf = Blowfish::new(b"k");
        let cbc = CbcEncryptor::new(&bf, 1);
        let ct = cbc.encrypt(b"hello world, osdc");
        assert!(cbc.decrypt(&ct[..ct.len() - 1]).is_none(), "unaligned");
        // Wrong IV corrupts only the first block, which usually breaks
        // padding only probabilistically; corrupt the final block instead.
        let mut bad = ct.clone();
        let n = bad.len();
        bad[n - 1] ^= 0xFF;
        // Either padding fails (None) or the plaintext differs.
        if let Some(pt) = CbcEncryptor::new(&bf, 1).decrypt(&bad) {
            assert_ne!(pt, b"hello world, osdc");
        }
    }

    #[test]
    fn cbc_identical_blocks_produce_distinct_ciphertext() {
        let bf = Blowfish::new(b"k2");
        let cbc = CbcEncryptor::new(&bf, 7);
        let pt = vec![0u8; 32]; // four identical blocks
        let ct = cbc.encrypt(&pt);
        assert_ne!(&ct[0..8], &ct[8..16], "CBC must not leak block equality");
    }

    #[test]
    fn ctr_is_symmetric() {
        let bf = Blowfish::new(b"udr-stream");
        let mut data: Vec<u8> = (0..1000).map(|i| (i % 256) as u8).collect();
        let orig = data.clone();
        CtrStream::new(&bf, 99).apply(&mut data);
        assert_ne!(data, orig);
        CtrStream::new(&bf, 99).apply(&mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn ctr_chunked_equals_whole() {
        let bf = Blowfish::new(b"udr-stream");
        let mut whole: Vec<u8> = (0..500).map(|i| (i * 3 % 256) as u8).collect();
        let mut chunked = whole.clone();
        CtrStream::new(&bf, 5).apply(&mut whole);
        let mut s = CtrStream::new(&bf, 5);
        for chunk in chunked.chunks_mut(13) {
            s.apply(chunk);
        }
        assert_eq!(whole, chunked);
    }

    #[test]
    fn ctr_batched_matches_per_block_reference() {
        // The pre-batching implementation: one block of keystream at a
        // time, XORed bytewise. The batched stream must be bit-identical,
        // whatever the chunking.
        struct Reference<'c, C: BlockCipher64> {
            cipher: &'c C,
            nonce: u64,
            counter: u64,
            keystream: [u8; 8],
            used: usize,
        }
        impl<C: BlockCipher64> Reference<'_, C> {
            fn apply(&mut self, data: &mut [u8]) {
                for byte in data {
                    if self.used == 8 {
                        let block = self.nonce ^ self.counter;
                        self.counter = self.counter.wrapping_add(1);
                        self.keystream = self.cipher.encrypt_block_u64(block).to_be_bytes();
                        self.used = 0;
                    }
                    *byte ^= self.keystream[self.used];
                    self.used += 1;
                }
            }
        }
        let bf = Blowfish::new(b"udr-stream");
        for chunk_size in [1usize, 3, 7, 8, 9, 63, 64, 65, 200] {
            let mut batched: Vec<u8> = (0..731).map(|i| (i * 5 % 256) as u8).collect();
            let mut reference = batched.clone();
            let mut s = CtrStream::new(&bf, 77);
            for chunk in batched.chunks_mut(chunk_size) {
                s.apply(chunk);
            }
            let mut r = Reference {
                cipher: &bf,
                nonce: 77,
                counter: 0,
                keystream: [0u8; 8],
                used: 8,
            };
            for chunk in reference.chunks_mut(chunk_size) {
                r.apply(chunk);
            }
            assert_eq!(batched, reference, "chunk_size={chunk_size}");
        }
    }

    #[test]
    fn ctr_nonces_differ() {
        let bf = Blowfish::new(b"udr-stream");
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        CtrStream::new(&bf, 1).apply(&mut a);
        CtrStream::new(&bf, 2).apply(&mut b);
        assert_ne!(a, b);
    }
}
