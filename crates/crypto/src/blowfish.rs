//! Blowfish (Schneier, 1993) — the cipher UDR shipped with (§7.2).
//!
//! 64-bit block, 16 Feistel rounds, key-dependent S-boxes. The initial
//! P-array/S-box constants are π's hex digits, produced by [`crate::bbp`]
//! and cached in a process-wide `OnceLock`. Correctness is pinned by the
//! published Eric Young test vectors below.

use crate::modes::BlockCipher64;
use crate::pi_tables::{PI_P, PI_S};

const ROUNDS: usize = 16;

/// A keyed Blowfish instance.
#[derive(Clone)]
pub struct Blowfish {
    p: [u32; ROUNDS + 2],
    s: [[u32; 256]; 4],
}

impl Blowfish {
    /// Key length must be 1..=56 bytes (448 bits), per the specification.
    pub fn new(key: &[u8]) -> Self {
        assert!(
            !key.is_empty() && key.len() <= 56,
            "Blowfish key must be 1..=56 bytes, got {}",
            key.len()
        );
        let mut bf = Blowfish { p: PI_P, s: PI_S };
        // XOR the key cyclically into the P-array.
        let mut key_pos = 0;
        for p in bf.p.iter_mut() {
            let mut word = 0u32;
            for _ in 0..4 {
                word = (word << 8) | key[key_pos] as u32;
                key_pos = (key_pos + 1) % key.len();
            }
            *p ^= word;
        }
        // Replace P and S entries by repeatedly encrypting the zero block.
        let mut block = (0u32, 0u32);
        for i in (0..ROUNDS + 2).step_by(2) {
            block = bf.encrypt_words(block.0, block.1);
            bf.p[i] = block.0;
            bf.p[i + 1] = block.1;
        }
        for sbox in 0..4 {
            for i in (0..256).step_by(2) {
                block = bf.encrypt_words(block.0, block.1);
                bf.s[sbox][i] = block.0;
                bf.s[sbox][i + 1] = block.1;
            }
        }
        bf
    }

    #[inline]
    fn feistel(&self, x: u32) -> u32 {
        let a = (x >> 24) as usize;
        let b = (x >> 16 & 0xFF) as usize;
        let c = (x >> 8 & 0xFF) as usize;
        let d = (x & 0xFF) as usize;
        (self.s[0][a].wrapping_add(self.s[1][b]) ^ self.s[2][c]).wrapping_add(self.s[3][d])
    }

    /// Encrypt one block given as two big-endian words.
    #[inline]
    pub fn encrypt_words(&self, mut l: u32, mut r: u32) -> (u32, u32) {
        for i in 0..ROUNDS {
            l ^= self.p[i];
            r ^= self.feistel(l);
            std::mem::swap(&mut l, &mut r);
        }
        std::mem::swap(&mut l, &mut r);
        r ^= self.p[ROUNDS];
        l ^= self.p[ROUNDS + 1];
        (l, r)
    }

    /// Decrypt one block given as two big-endian words.
    #[inline]
    pub fn decrypt_words(&self, mut l: u32, mut r: u32) -> (u32, u32) {
        for i in (2..ROUNDS + 2).rev() {
            l ^= self.p[i];
            r ^= self.feistel(l);
            std::mem::swap(&mut l, &mut r);
        }
        std::mem::swap(&mut l, &mut r);
        r ^= self.p[1];
        l ^= self.p[0];
        (l, r)
    }

    /// Encrypt four independent blocks with the rounds interleaved. Each
    /// Feistel round's four table lookups are data-dependent on the
    /// previous round, so a single block serializes on memory latency;
    /// four lanes give the core independent loads to overlap. Bytes are
    /// identical to four `encrypt_words` calls.
    #[inline]
    fn encrypt_words4(&self, l: &mut [u32; 4], r: &mut [u32; 4]) {
        for i in 0..ROUNDS {
            let p = self.p[i];
            for lane in 0..4 {
                l[lane] ^= p;
                r[lane] ^= self.feistel(l[lane]);
            }
            std::mem::swap(l, r);
        }
        std::mem::swap(l, r);
        for lane in 0..4 {
            r[lane] ^= self.p[ROUNDS];
            l[lane] ^= self.p[ROUNDS + 1];
        }
    }

    /// Four-lane decryption; see [`Blowfish::encrypt_words4`].
    #[inline]
    fn decrypt_words4(&self, l: &mut [u32; 4], r: &mut [u32; 4]) {
        for i in (2..ROUNDS + 2).rev() {
            let p = self.p[i];
            for lane in 0..4 {
                l[lane] ^= p;
                r[lane] ^= self.feistel(l[lane]);
            }
            std::mem::swap(l, r);
        }
        std::mem::swap(l, r);
        for lane in 0..4 {
            r[lane] ^= self.p[1];
            l[lane] ^= self.p[0];
        }
    }
}

#[inline]
fn split4(blocks: &[u64]) -> ([u32; 4], [u32; 4]) {
    let mut l = [0u32; 4];
    let mut r = [0u32; 4];
    for lane in 0..4 {
        l[lane] = (blocks[lane] >> 32) as u32;
        r[lane] = blocks[lane] as u32;
    }
    (l, r)
}

#[inline]
fn join4(blocks: &mut [u64], l: &[u32; 4], r: &[u32; 4]) {
    for lane in 0..4 {
        blocks[lane] = (l[lane] as u64) << 32 | r[lane] as u64;
    }
}

impl BlockCipher64 for Blowfish {
    fn encrypt_block_u64(&self, block: u64) -> u64 {
        let (l, r) = self.encrypt_words((block >> 32) as u32, block as u32);
        (l as u64) << 32 | r as u64
    }

    fn decrypt_block_u64(&self, block: u64) -> u64 {
        let (l, r) = self.decrypt_words((block >> 32) as u32, block as u32);
        (l as u64) << 32 | r as u64
    }

    fn encrypt_blocks_u64(&self, blocks: &mut [u64]) {
        let mut chunks = blocks.chunks_exact_mut(4);
        for quad in &mut chunks {
            let (mut l, mut r) = split4(quad);
            self.encrypt_words4(&mut l, &mut r);
            join4(quad, &l, &r);
        }
        for b in chunks.into_remainder() {
            *b = self.encrypt_block_u64(*b);
        }
    }

    fn decrypt_blocks_u64(&self, blocks: &mut [u64]) {
        let mut chunks = blocks.chunks_exact_mut(4);
        for quad in &mut chunks {
            let (mut l, mut r) = split4(quad);
            self.decrypt_words4(&mut l, &mut r);
            join4(quad, &l, &r);
        }
        for b in chunks.into_remainder() {
            *b = self.decrypt_block_u64(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::BlockCipher64;

    fn hex_u64(s: &str) -> u64 {
        u64::from_str_radix(s, 16).unwrap()
    }

    fn key_bytes(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// Published Blowfish test vectors (Eric Young's set, as distributed
    /// with the reference implementation).
    const VECTORS: &[(&str, &str, &str)] = &[
        ("0000000000000000", "0000000000000000", "4EF997456198DD78"),
        ("FFFFFFFFFFFFFFFF", "FFFFFFFFFFFFFFFF", "51866FD5B85ECB8A"),
        ("3000000000000000", "1000000000000001", "7D856F9A613063F2"),
        ("1111111111111111", "1111111111111111", "2466DD878B963C9D"),
        ("0123456789ABCDEF", "1111111111111111", "61F9C3802281B096"),
        ("1111111111111111", "0123456789ABCDEF", "7D0CC630AFDA1EC7"),
        ("FEDCBA9876543210", "0123456789ABCDEF", "0ACEAB0FC6A0A28D"),
        ("7CA110454A1A6E57", "01A1D6D039776742", "59C68245EB05282B"),
        ("0131D9619DC1376E", "5CD54CA83DEF57DA", "B1B8CC0B250F09A0"),
        ("07A1133E4A0B2686", "0248D43806F67172", "1730E5778BEA1DA4"),
    ];

    #[test]
    fn published_vectors_encrypt() {
        for (key, pt, ct) in VECTORS {
            let bf = Blowfish::new(&key_bytes(key));
            assert_eq!(
                bf.encrypt_block_u64(hex_u64(pt)),
                hex_u64(ct),
                "key={key} pt={pt}"
            );
        }
    }

    #[test]
    fn published_vectors_decrypt() {
        for (key, pt, ct) in VECTORS {
            let bf = Blowfish::new(&key_bytes(key));
            assert_eq!(
                bf.decrypt_block_u64(hex_u64(ct)),
                hex_u64(pt),
                "key={key} ct={ct}"
            );
        }
    }

    #[test]
    fn roundtrip_many_blocks() {
        let bf = Blowfish::new(b"osdc wan transfer key");
        let mut x = 0x0123_4567_89AB_CDEFu64;
        for _ in 0..1000 {
            let c = bf.encrypt_block_u64(x);
            assert_eq!(bf.decrypt_block_u64(c), x);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
    }

    #[test]
    fn variable_key_lengths() {
        for len in [1usize, 8, 16, 24, 56] {
            let key = vec![0xABu8; len];
            let bf = Blowfish::new(&key);
            let c = bf.encrypt_block_u64(42);
            assert_eq!(bf.decrypt_block_u64(c), 42);
        }
    }

    #[test]
    #[should_panic]
    fn empty_key_rejected() {
        Blowfish::new(&[]);
    }

    #[test]
    #[should_panic]
    fn oversized_key_rejected() {
        Blowfish::new(&[0u8; 57]);
    }

    #[test]
    fn different_keys_differ() {
        let a = Blowfish::new(b"key-a");
        let b = Blowfish::new(b"key-b");
        assert_ne!(a.encrypt_block_u64(0), b.encrypt_block_u64(0));
    }
}
