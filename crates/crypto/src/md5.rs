//! MD5 (RFC 1321) — the strong block checksum for the rsync delta engine.
//!
//! rsync pairs a cheap rolling checksum with a strong digest per block;
//! `osdc-transfer` uses this MD5 for the strong half (and `osdc-storage`
//! uses it for content addressing). Streaming API: [`Md5::update`] then
//! [`Md5::finalize`], or the one-shot [`md5`].

/// Per-round left-rotate amounts.
#[rustfmt::skip]
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5,  9, 14, 20, 5,  9, 14, 20, 5,  9, 14, 20, 5,  9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// `K[i] = floor(2^32 * |sin(i + 1)|)` — hardcoded because libm `sin` is not
/// guaranteed bit-identical across platforms and the digest must be.
#[rustfmt::skip]
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
    0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
    0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05,
    0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039,
    0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Streaming MD5 state.
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    pub fn new() -> Self {
        Md5 {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476],
            buffer: [0u8; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }

    fn compress(state: &mut [u32; 4], block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let [mut a, mut b, mut c, mut d] = *state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
    }

    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bytes = self.length_bytes.wrapping_add(data.len() as u64);
        // Top up a partial buffer first.
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                Self::compress(&mut self.state, &block);
                self.buffered = 0;
            }
            if !data.is_empty() {
                // Anything left implies the buffer just flushed.
                debug_assert_eq!(self.buffered, 0);
            } else {
                return; // partial buffer retained; nothing more to do
            }
        }
        // Whole blocks straight from the input.
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            Self::compress(&mut self.state, chunk.try_into().expect("64-byte chunk"));
        }
        let rem = chunks.remainder();
        self.buffer[..rem.len()].copy_from_slice(rem);
        self.buffered = rem.len();
    }

    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.length_bytes.wrapping_mul(8);
        // Padding: 0x80 then zeros until 8 bytes remain in the final block.
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Length in bits, little-endian. Bypass update's length bookkeeping
        // by feeding the final 8 bytes directly.
        self.buffer[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buffer;
        Self::compress(&mut self.state, &block);
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }
}

/// One-shot digest.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// Render a digest as lowercase hex (for catalog metadata and tests).
pub fn hex_digest(digest: &[u8; 16]) -> String {
    let mut s = String::with_capacity(32);
    for b in digest {
        use std::fmt::Write;
        write!(s, "{b:02x}").expect("write to String cannot fail");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        hex_digest(&md5(data))
    }

    #[test]
    fn rfc1321_test_suite() {
        assert_eq!(hex(b""), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(hex(b"a"), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(hex(b"abc"), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(hex(b"message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
        assert_eq!(
            hex(b"abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
        assert_eq!(
            hex(b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
        assert_eq!(
            hex(
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"
            ),
            "57edf4a22be3c955ac49da2e2107b67a"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let oneshot = md5(&data);
        for chunk_size in [1, 3, 63, 64, 65, 1000] {
            let mut h = Md5::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Padding edge cases: lengths around the 56-byte padding boundary.
        for len in 54..=66usize {
            let data = vec![0x5Au8; len];
            let d1 = md5(&data);
            let mut h = Md5::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(md5(b"hello"), md5(b"hellp"));
    }
}
