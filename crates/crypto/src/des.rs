//! DES (FIPS 46-3) and Triple-DES (EDE3).
//!
//! §7.2 notes that "the standard encryption used by the current version of
//! rsync is 3des" — i.e. rsync-over-ssh with the `3des-cbc` transport — so
//! the Table 3 reproduction needs a real 3DES. This is the straightforward
//! table-driven implementation: bit positions follow the FIPS convention
//! (bit 1 = most significant bit of the 64-bit block).

use crate::modes::BlockCipher64;

// ---- FIPS 46-3 tables -----------------------------------------------------

#[rustfmt::skip]
const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10,  2, 60, 52, 44, 36, 28, 20, 12,  4,
    62, 54, 46, 38, 30, 22, 14,  6, 64, 56, 48, 40, 32, 24, 16,  8,
    57, 49, 41, 33, 25, 17,  9,  1, 59, 51, 43, 35, 27, 19, 11,  3,
    61, 53, 45, 37, 29, 21, 13,  5, 63, 55, 47, 39, 31, 23, 15,  7,
];

#[rustfmt::skip]
const FP: [u8; 64] = [
    40,  8, 48, 16, 56, 24, 64, 32, 39,  7, 47, 15, 55, 23, 63, 31,
    38,  6, 46, 14, 54, 22, 62, 30, 37,  5, 45, 13, 53, 21, 61, 29,
    36,  4, 44, 12, 52, 20, 60, 28, 35,  3, 43, 11, 51, 19, 59, 27,
    34,  2, 42, 10, 50, 18, 58, 26, 33,  1, 41,  9, 49, 17, 57, 25,
];

#[rustfmt::skip]
const E: [u8; 48] = [
    32,  1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,
     8,  9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32,  1,
];

#[rustfmt::skip]
const P: [u8; 32] = [
    16,  7, 20, 21, 29, 12, 28, 17,  1, 15, 23, 26,  5, 18, 31, 10,
     2,  8, 24, 14, 32, 27,  3,  9, 19, 13, 30,  6, 22, 11,  4, 25,
];

#[rustfmt::skip]
const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17,  9,  1, 58, 50, 42, 34, 26, 18,
    10,  2, 59, 51, 43, 35, 27, 19, 11,  3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15,  7, 62, 54, 46, 38, 30, 22,
    14,  6, 61, 53, 45, 37, 29, 21, 13,  5, 28, 20, 12,  4,
];

#[rustfmt::skip]
const PC2: [u8; 48] = [
    14, 17, 11, 24,  1,  5,  3, 28, 15,  6, 21, 10,
    23, 19, 12,  4, 26,  8, 16,  7, 27, 20, 13,  2,
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

#[rustfmt::skip]
const SBOX: [[u8; 64]; 8] = [
    [
        14,  4, 13,  1,  2, 15, 11,  8,  3, 10,  6, 12,  5,  9,  0,  7,
         0, 15,  7,  4, 14,  2, 13,  1, 10,  6, 12, 11,  9,  5,  3,  8,
         4,  1, 14,  8, 13,  6,  2, 11, 15, 12,  9,  7,  3, 10,  5,  0,
        15, 12,  8,  2,  4,  9,  1,  7,  5, 11,  3, 14, 10,  0,  6, 13,
    ],
    [
        15,  1,  8, 14,  6, 11,  3,  4,  9,  7,  2, 13, 12,  0,  5, 10,
         3, 13,  4,  7, 15,  2,  8, 14, 12,  0,  1, 10,  6,  9, 11,  5,
         0, 14,  7, 11, 10,  4, 13,  1,  5,  8, 12,  6,  9,  3,  2, 15,
        13,  8, 10,  1,  3, 15,  4,  2, 11,  6,  7, 12,  0,  5, 14,  9,
    ],
    [
        10,  0,  9, 14,  6,  3, 15,  5,  1, 13, 12,  7, 11,  4,  2,  8,
        13,  7,  0,  9,  3,  4,  6, 10,  2,  8,  5, 14, 12, 11, 15,  1,
        13,  6,  4,  9,  8, 15,  3,  0, 11,  1,  2, 12,  5, 10, 14,  7,
         1, 10, 13,  0,  6,  9,  8,  7,  4, 15, 14,  3, 11,  5,  2, 12,
    ],
    [
         7, 13, 14,  3,  0,  6,  9, 10,  1,  2,  8,  5, 11, 12,  4, 15,
        13,  8, 11,  5,  6, 15,  0,  3,  4,  7,  2, 12,  1, 10, 14,  9,
        10,  6,  9,  0, 12, 11,  7, 13, 15,  1,  3, 14,  5,  2,  8,  4,
         3, 15,  0,  6, 10,  1, 13,  8,  9,  4,  5, 11, 12,  7,  2, 14,
    ],
    [
         2, 12,  4,  1,  7, 10, 11,  6,  8,  5,  3, 15, 13,  0, 14,  9,
        14, 11,  2, 12,  4,  7, 13,  1,  5,  0, 15, 10,  3,  9,  8,  6,
         4,  2,  1, 11, 10, 13,  7,  8, 15,  9, 12,  5,  6,  3,  0, 14,
        11,  8, 12,  7,  1, 14,  2, 13,  6, 15,  0,  9, 10,  4,  5,  3,
    ],
    [
        12,  1, 10, 15,  9,  2,  6,  8,  0, 13,  3,  4, 14,  7,  5, 11,
        10, 15,  4,  2,  7, 12,  9,  5,  6,  1, 13, 14,  0, 11,  3,  8,
         9, 14, 15,  5,  2,  8, 12,  3,  7,  0,  4, 10,  1, 13, 11,  6,
         4,  3,  2, 12,  9,  5, 15, 10, 11, 14,  1,  7,  6,  0,  8, 13,
    ],
    [
         4, 11,  2, 14, 15,  0,  8, 13,  3, 12,  9,  7,  5, 10,  6,  1,
        13,  0, 11,  7,  4,  9,  1, 10, 14,  3,  5, 12,  2, 15,  8,  6,
         1,  4, 11, 13, 12,  3,  7, 14, 10, 15,  6,  8,  0,  5,  9,  2,
         6, 11, 13,  8,  1,  4, 10,  7,  9,  5,  0, 15, 14,  2,  3, 12,
    ],
    [
        13,  2,  8,  4,  6, 15, 11,  1, 10,  9,  3, 14,  5,  0, 12,  7,
         1, 15, 13,  8, 10,  3,  7,  4, 12,  5,  6, 11,  0, 14,  9,  2,
         7, 11,  4,  1,  9, 12, 14,  2,  0,  6, 10, 13, 15,  3,  5,  8,
         2,  1, 14,  7,  4, 10,  8, 13, 15, 12,  9,  0,  3,  5,  6, 11,
    ],
];

/// Permute `input` (of width `in_bits`, FIPS bit-1 = MSB) through `table`,
/// producing `table.len()` output bits.
#[inline]
fn permute(input: u64, in_bits: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for &src in table {
        out = (out << 1) | (input >> (in_bits - src as u32)) & 1;
    }
    out
}

/// `permute`, const-evaluable, for building the lookup tables below.
const fn permute_const<const N: usize>(input: u64, in_bits: u32, table: &[u8; N]) -> u64 {
    let mut out = 0u64;
    let mut i = 0;
    while i < N {
        out = (out << 1) | (input >> (in_bits - table[i] as u32)) & 1;
        i += 1;
    }
    out
}

// ---- Precomputed hot-path tables ------------------------------------------
//
// A bit permutation is linear over OR of disjoint inputs, so any 64→64
// permutation splits into eight per-input-byte tables whose ORed outputs
// reconstruct the full permutation — one table lookup per byte instead of
// one shift-and-mask per output *bit*. The same trick covers the 32→48 E
// expansion (four tables), and the S-box + P stage collapses into eight
// "SPE" tables mapping each 6-bit S-box input straight to its P-permuted
// 32-bit contribution. All tables are const-evaluated from the FIPS
// tables above, so the ciphertext is bit-identical to the reference
// `permute` path (pinned by the vectors below and by
// `tests/batched_equivalence.rs`).

/// Per-byte split of a 64→64 permutation.
const fn build_perm64(table: &[u8; 64]) -> [[u64; 256]; 8] {
    let mut out = [[0u64; 256]; 8];
    let mut byte = 0;
    while byte < 8 {
        let mut v = 0usize;
        while v < 256 {
            out[byte][v] = permute_const((v as u64) << (56 - 8 * byte), 64, table);
            v += 1;
        }
        byte += 1;
    }
    out
}

/// Per-byte split of the 32→48 E expansion.
const fn build_e_tab() -> [[u64; 256]; 4] {
    let mut out = [[0u64; 256]; 4];
    let mut byte = 0;
    while byte < 4 {
        let mut v = 0usize;
        while v < 256 {
            out[byte][v] = permute_const((v as u64) << (24 - 8 * byte), 32, &E);
            v += 1;
        }
        byte += 1;
    }
    out
}

/// S-box output pre-permuted through P: `SPE[i][six]` is the 32-bit
/// contribution of S-box `i` fed the 6-bit value `six`.
const fn build_spe() -> [[u32; 64]; 8] {
    let mut out = [[0u32; 64]; 8];
    let mut i = 0;
    while i < 8 {
        let mut six = 0usize;
        while six < 64 {
            let s = six as u8;
            let row = ((s & 0x20) >> 4) | (s & 1);
            let col = (s >> 1) & 0x0F;
            let val = SBOX[i][(row * 16 + col) as usize] as u64;
            let placed = val << (4 * (7 - i)); // nibble position i of the 32-bit word
            out[i][six] = permute_const(placed, 32, &P) as u32;
            six += 1;
        }
        i += 1;
    }
    out
}

static IP_TAB: [[u64; 256]; 8] = build_perm64(&IP);
static FP_TAB: [[u64; 256]; 8] = build_perm64(&FP);
static E_TAB: [[u64; 256]; 4] = build_e_tab();
static SPE: [[u32; 64]; 8] = build_spe();

/// Apply a per-byte-split 64→64 permutation.
#[inline]
fn apply_perm64(tab: &[[u64; 256]; 8], x: u64) -> u64 {
    tab[0][(x >> 56) as usize]
        | tab[1][(x >> 48 & 0xFF) as usize]
        | tab[2][(x >> 40 & 0xFF) as usize]
        | tab[3][(x >> 32 & 0xFF) as usize]
        | tab[4][(x >> 24 & 0xFF) as usize]
        | tab[5][(x >> 16 & 0xFF) as usize]
        | tab[6][(x >> 8 & 0xFF) as usize]
        | tab[7][(x & 0xFF) as usize]
}

/// Single-key DES.
#[derive(Clone)]
pub struct Des {
    /// 16 round subkeys, each 48 bits.
    subkeys: [u64; 16],
}

impl Des {
    /// Build from an 8-byte key. Parity bits (LSB of each byte) are ignored,
    /// as in FIPS 46-3.
    pub fn new(key: [u8; 8]) -> Self {
        let key64 = u64::from_be_bytes(key);
        let cd = permute(key64, 64, &PC1); // 56 bits
        let mut c = (cd >> 28) as u32 & 0x0FFF_FFFF;
        let mut d = cd as u32 & 0x0FFF_FFFF;
        let mut subkeys = [0u64; 16];
        for (round, &shift) in SHIFTS.iter().enumerate() {
            c = ((c << shift) | (c >> (28 - shift as u32))) & 0x0FFF_FFFF;
            d = ((d << shift) | (d >> (28 - shift as u32))) & 0x0FFF_FFFF;
            let combined = (c as u64) << 28 | d as u64;
            subkeys[round] = permute(combined, 56, &PC2);
        }
        Des { subkeys }
    }

    /// The round function over the precomputed E/SPE tables: four lookups
    /// expand R, eight lookups fold S-boxes and P together.
    #[inline]
    fn f(r: u32, subkey: u64) -> u32 {
        let expanded = (E_TAB[0][(r >> 24) as usize]
            | E_TAB[1][(r >> 16 & 0xFF) as usize]
            | E_TAB[2][(r >> 8 & 0xFF) as usize]
            | E_TAB[3][(r & 0xFF) as usize])
            ^ subkey;
        SPE[0][(expanded >> 42 & 0x3F) as usize]
            ^ SPE[1][(expanded >> 36 & 0x3F) as usize]
            ^ SPE[2][(expanded >> 30 & 0x3F) as usize]
            ^ SPE[3][(expanded >> 24 & 0x3F) as usize]
            ^ SPE[4][(expanded >> 18 & 0x3F) as usize]
            ^ SPE[5][(expanded >> 12 & 0x3F) as usize]
            ^ SPE[6][(expanded >> 6 & 0x3F) as usize]
            ^ SPE[7][(expanded & 0x3F) as usize]
    }

    fn crypt(&self, block: u64, decrypt: bool) -> u64 {
        let ip = apply_perm64(&IP_TAB, block);
        let mut l = (ip >> 32) as u32;
        let mut r = ip as u32;
        for round in 0..16 {
            let subkey = if decrypt {
                self.subkeys[15 - round]
            } else {
                self.subkeys[round]
            };
            let next_r = l ^ Self::f(r, subkey);
            l = r;
            r = next_r;
        }
        // Note the final swap: output is (R16, L16).
        let preoutput = (r as u64) << 32 | l as u64;
        apply_perm64(&FP_TAB, preoutput)
    }

    /// Four blocks with the rounds interleaved: each round's E/SPE
    /// lookups serialize within a block, so independent lanes let the
    /// core overlap the loads. Bytes identical to four `crypt` calls.
    #[inline]
    fn crypt4(&self, blocks: &mut [u64], decrypt: bool) {
        let mut l = [0u32; 4];
        let mut r = [0u32; 4];
        for lane in 0..4 {
            let ip = apply_perm64(&IP_TAB, blocks[lane]);
            l[lane] = (ip >> 32) as u32;
            r[lane] = ip as u32;
        }
        for round in 0..16 {
            let subkey = if decrypt {
                self.subkeys[15 - round]
            } else {
                self.subkeys[round]
            };
            for lane in 0..4 {
                let next_r = l[lane] ^ Self::f(r[lane], subkey);
                l[lane] = r[lane];
                r[lane] = next_r;
            }
        }
        for lane in 0..4 {
            let preoutput = (r[lane] as u64) << 32 | l[lane] as u64;
            blocks[lane] = apply_perm64(&FP_TAB, preoutput);
        }
    }

    fn crypt_blocks(&self, blocks: &mut [u64], decrypt: bool) {
        let mut chunks = blocks.chunks_exact_mut(4);
        for quad in &mut chunks {
            self.crypt4(quad, decrypt);
        }
        for b in chunks.into_remainder() {
            *b = self.crypt(*b, decrypt);
        }
    }
}

impl BlockCipher64 for Des {
    fn encrypt_block_u64(&self, block: u64) -> u64 {
        self.crypt(block, false)
    }
    fn decrypt_block_u64(&self, block: u64) -> u64 {
        self.crypt(block, true)
    }
    fn encrypt_blocks_u64(&self, blocks: &mut [u64]) {
        self.crypt_blocks(blocks, false);
    }
    fn decrypt_blocks_u64(&self, blocks: &mut [u64]) {
        self.crypt_blocks(blocks, true);
    }
}

/// Triple-DES in EDE3 configuration: `C = E_{k3}(D_{k2}(E_{k1}(P)))`.
#[derive(Clone)]
pub struct TripleDes {
    k1: Des,
    k2: Des,
    k3: Des,
}

impl TripleDes {
    /// Build from a 24-byte key bundle (three independent DES keys).
    pub fn new(key: [u8; 24]) -> Self {
        let mut k = [[0u8; 8]; 3];
        for (i, chunk) in key.chunks_exact(8).enumerate() {
            k[i].copy_from_slice(chunk);
        }
        TripleDes {
            k1: Des::new(k[0]),
            k2: Des::new(k[1]),
            k3: Des::new(k[2]),
        }
    }

    /// Keying option 3 (K1 = K2 = K3) degenerates to single DES; used for
    /// backwards-compat checks.
    pub fn from_single(key: [u8; 8]) -> Self {
        let mut bundle = [0u8; 24];
        for chunk in bundle.chunks_exact_mut(8) {
            chunk.copy_from_slice(&key);
        }
        Self::new(bundle)
    }
}

impl BlockCipher64 for TripleDes {
    fn encrypt_block_u64(&self, block: u64) -> u64 {
        self.k3
            .encrypt_block_u64(self.k2.decrypt_block_u64(self.k1.encrypt_block_u64(block)))
    }

    fn decrypt_block_u64(&self, block: u64) -> u64 {
        self.k1
            .decrypt_block_u64(self.k2.encrypt_block_u64(self.k3.decrypt_block_u64(block)))
    }

    /// Three interleaved sweeps instead of three serial DES calls per
    /// block — the EDE3 stages batch independently.
    fn encrypt_blocks_u64(&self, blocks: &mut [u64]) {
        self.k1.crypt_blocks(blocks, false);
        self.k2.crypt_blocks(blocks, true);
        self.k3.crypt_blocks(blocks, false);
    }

    fn decrypt_blocks_u64(&self, blocks: &mut [u64]) {
        self.k3.crypt_blocks(blocks, true);
        self.k2.crypt_blocks(blocks, false);
        self.k1.crypt_blocks(blocks, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_fips_vector() {
        // The worked example from the FIPS validation literature.
        let des = Des::new(0x1334_5779_9BBC_DFF1u64.to_be_bytes());
        assert_eq!(
            des.encrypt_block_u64(0x0123_4567_89AB_CDEF),
            0x85E8_1354_0F0A_B405
        );
        assert_eq!(
            des.decrypt_block_u64(0x85E8_1354_0F0A_B405),
            0x0123_4567_89AB_CDEF
        );
    }

    #[test]
    fn handbook_vector() {
        // "Now is t" under key 0123456789ABCDEF.
        let des = Des::new(0x0123_4567_89AB_CDEFu64.to_be_bytes());
        let pt = u64::from_be_bytes(*b"Now is t");
        assert_eq!(des.encrypt_block_u64(pt), 0x3FA4_0E8A_984D_4815);
    }

    #[test]
    fn roundtrip_random_blocks() {
        let des = Des::new(*b"OSDCkey!");
        let mut x = 0xDEAD_BEEF_CAFE_F00Du64;
        for _ in 0..500 {
            assert_eq!(des.decrypt_block_u64(des.encrypt_block_u64(x)), x);
            x = x
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add(0x14057B7EF767814F);
        }
    }

    #[test]
    fn parity_bits_are_ignored() {
        // Flipping the LSB (parity bit) of each key byte must not change the
        // schedule.
        let base = 0x1334_5779_9BBC_DFF1u64;
        let flipped = base ^ 0x0101_0101_0101_0101;
        let a = Des::new(base.to_be_bytes());
        let b = Des::new(flipped.to_be_bytes());
        assert_eq!(a.encrypt_block_u64(12345), b.encrypt_block_u64(12345));
    }

    #[test]
    fn ede3_with_equal_keys_is_des() {
        let key = 0x0123_4567_89AB_CDEFu64.to_be_bytes();
        let des = Des::new(key);
        let tdes = TripleDes::from_single(key);
        for block in [0u64, 1, u64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(tdes.encrypt_block_u64(block), des.encrypt_block_u64(block));
        }
    }

    #[test]
    fn ede3_roundtrip_distinct_keys() {
        let mut key = [0u8; 24];
        for (i, b) in key.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let tdes = TripleDes::new(key);
        for block in [0u64, 42, u64::MAX, 0xFEDC_BA98_7654_3210] {
            assert_eq!(tdes.decrypt_block_u64(tdes.encrypt_block_u64(block)), block);
        }
    }

    #[test]
    fn ede3_differs_from_single_des_with_distinct_keys() {
        let mut key = [0u8; 24];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8 + 1;
        }
        let tdes = TripleDes::new(key);
        let des = Des::new(key[..8].try_into().unwrap());
        assert_ne!(tdes.encrypt_block_u64(7), des.encrypt_block_u64(7));
    }

    #[test]
    fn permute_identity_check() {
        // IP followed by FP is the identity.
        for x in [0u64, 1, u64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(permute(permute(x, 64, &IP), 64, &FP), x);
        }
    }
}
