//! # osdc-crypto — the ciphers and digests behind Table 3
//!
//! The paper's quantitative evaluation (Table 3) compares UDR and rsync with
//! *no encryption*, *Blowfish*, and *3DES* over a 104 ms WAN path. The
//! encrypted rows are cipher-throughput-bound, so this crate implements the
//! actual ciphers from scratch:
//!
//! * [`blowfish::Blowfish`] — Schneier's Blowfish. The P-array and S-boxes
//!   are the hexadecimal digits of π; instead of pasting 1042 magic words we
//!   derive them at first use with the Bailey–Borwein–Plouffe digit-extraction
//!   algorithm ([`bbp`]) and pin correctness with the published test vectors.
//! * [`des::Des`] / [`des::TripleDes`] — FIPS 46-3 DES and EDE3 3DES (the
//!   default cipher of the era's rsync-over-ssh, per §7.2).
//! * [`md5::Md5`] — used by the rsync delta algorithm in `osdc-transfer` as
//!   its strong block checksum (real rsync used MD4/MD5 depending on
//!   version).
//! * [`modes`] — ECB/CBC/CTR modes over any 64-bit block cipher, and PKCS#7
//!   padding, so transfer sessions can encrypt realistic byte streams.
//! * [`sha256::Sha256`] — FIPS 180-4 SHA-256; the scale harnesses pin
//!   their invoice and notification streams with it so `--jobs`
//!   byte-identity is checkable from a single printed digest.
//! * [`sign`] — HMAC-MD5 (RFC 2104) keyed signatures and the federation
//!   [`Keyring`], used by `osdc-sharing` to mint and verify revocable
//!   capabilities (symmetric trust, as the era's federations exchanged).
//!
//! Everything here is pure safe Rust with no dependencies; the hot paths
//! (round functions, compression function) are branch-free and allocation-
//! free per the workspace performance guidelines.
//!
//! **Scope note:** these implementations exist to make the reproduction
//! *executable and measurable*, not to be a vetted cryptography library. Do
//! not use them to protect real data.

pub mod bbp;
pub mod blowfish;
pub mod des;
pub mod md5;
pub mod modes;
mod pi_tables;
pub mod sha256;
pub mod sign;

pub use blowfish::Blowfish;
pub use des::{Des, TripleDes};
pub use md5::Md5;
pub use modes::{ecb_decrypt, ecb_encrypt, BlockCipher64, CbcEncryptor, CtrStream, Pkcs7};
pub use sha256::{sha256, sha256_hex, Sha256};
pub use sign::{KeyId, Keyring, Signature, SignatureError, SigningKey};

/// Ciphers named in the paper's Table 3 rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CipherKind {
    /// No transport encryption.
    None,
    /// Blowfish (the only cipher UDR implemented at publication time).
    Blowfish,
    /// Triple-DES (the era's default for `rsync` over ssh).
    TripleDes,
}

impl CipherKind {
    pub fn label(self) -> &'static str {
        match self {
            CipherKind::None => "no encryption",
            CipherKind::Blowfish => "blowfish",
            CipherKind::TripleDes => "3des",
        }
    }
}

impl std::fmt::Display for CipherKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}
