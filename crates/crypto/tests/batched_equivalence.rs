//! Batched-kernel equivalence: the multi-block entry points
//! (`encrypt_blocks_u64` overrides, ECB slab kernels, slab-refilled CTR,
//! batched CBC decrypt) must produce byte-identical results to a strict
//! one-block-at-a-time reference for Blowfish, DES, and 3DES, at every
//! message length from empty through two slabs plus a ragged tail —
//! covering the 4-lane interleave remainder (0..4 blocks) and every
//! partial-block CTR tail 0..2×block.

use osdc_crypto::modes::{ecb_decrypt, ecb_encrypt};
use osdc_crypto::{BlockCipher64, Blowfish, CbcEncryptor, CtrStream, Des, TripleDes};

/// Wrapper that forbids batching: every call funnels through the
/// single-block methods, i.e. the pre-batching behaviour.
struct PerBlock<'c, C: BlockCipher64>(&'c C);

impl<C: BlockCipher64> BlockCipher64 for PerBlock<'_, C> {
    fn encrypt_block_u64(&self, block: u64) -> u64 {
        self.0.encrypt_block_u64(block)
    }
    fn decrypt_block_u64(&self, block: u64) -> u64 {
        self.0.decrypt_block_u64(block)
    }
    // Pin the defaults so a future override on C cannot leak through.
    fn encrypt_blocks_u64(&self, blocks: &mut [u64]) {
        for b in blocks {
            *b = self.0.encrypt_block_u64(*b);
        }
    }
    fn decrypt_blocks_u64(&self, blocks: &mut [u64]) {
        for b in blocks {
            *b = self.0.decrypt_block_u64(*b);
        }
    }
}

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i.wrapping_mul(131) >> 3) as u8).collect()
}

/// Block counts that exercise the interleave remainder and slab
/// boundaries: 0..=9 blocks, then around one and two 32-block slabs.
fn block_counts() -> impl Iterator<Item = usize> {
    (0..=9).chain([31, 32, 33, 63, 64, 65])
}

/// Byte lengths for streaming/padded modes: every tail 0..2×block around
/// each block-count boundary.
fn byte_lengths() -> Vec<usize> {
    let mut lens: Vec<usize> = (0..=16).collect();
    for base in [8 * 31, 8 * 32, 8 * 64] {
        lens.extend((0..=16).map(|t| base + t));
    }
    lens
}

fn check_cipher<C: BlockCipher64>(cipher: &C, name: &str) {
    let reference = PerBlock(cipher);

    // Raw block batches: override == default loop, both directions.
    for nblocks in block_counts() {
        let blocks: Vec<u64> = (0..nblocks as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5bd1_e995)
            .collect();
        let mut batched = blocks.clone();
        let mut looped = blocks.clone();
        cipher.encrypt_blocks_u64(&mut batched);
        reference.encrypt_blocks_u64(&mut looped);
        assert_eq!(batched, looped, "{name}: encrypt batch of {nblocks}");
        cipher.decrypt_blocks_u64(&mut batched);
        assert_eq!(batched, blocks, "{name}: decrypt batch of {nblocks}");
    }

    // ECB kernels over byte buffers.
    for nblocks in block_counts() {
        let pt = payload(nblocks * 8);
        let mut fast = pt.clone();
        ecb_encrypt(cipher, &mut fast);
        let mut slow = pt.clone();
        ecb_encrypt(&reference, &mut slow);
        assert_eq!(fast, slow, "{name}: ECB encrypt {nblocks} blocks");
        ecb_decrypt(cipher, &mut fast);
        assert_eq!(fast, pt, "{name}: ECB decrypt {nblocks} blocks");
    }

    // CTR: slab-refilled keystream == per-block keystream at every tail
    // length and under ragged chunking.
    for &len in &byte_lengths() {
        let pt = payload(len);
        let mut fast = pt.clone();
        CtrStream::new(cipher, 0xA5A5).apply(&mut fast);
        let mut slow = pt.clone();
        CtrStream::new(&reference, 0xA5A5).apply(&mut slow);
        assert_eq!(fast, slow, "{name}: CTR len {len}");
        let mut chunked = pt.clone();
        let mut s = CtrStream::new(cipher, 0xA5A5);
        for chunk in chunked.chunks_mut(5) {
            s.apply(chunk);
        }
        assert_eq!(chunked, slow, "{name}: CTR len {len} chunked");
    }

    // CBC: batched decrypt == per-block decrypt, and roundtrips.
    for &len in &byte_lengths() {
        let pt = payload(len);
        let fast_cbc = CbcEncryptor::new(cipher, 0x0123_4567_89AB_CDEF);
        let slow_cbc = CbcEncryptor::new(&reference, 0x0123_4567_89AB_CDEF);
        let ct = fast_cbc.encrypt(&pt);
        assert_eq!(ct, slow_cbc.encrypt(&pt), "{name}: CBC encrypt len {len}");
        assert_eq!(
            fast_cbc.decrypt(&ct).expect("valid padding"),
            slow_cbc.decrypt(&ct).expect("valid padding"),
            "{name}: CBC decrypt len {len}"
        );
        assert_eq!(
            fast_cbc.decrypt(&ct).expect("valid padding"),
            pt,
            "{name}: CBC roundtrip len {len}"
        );
    }
}

#[test]
fn blowfish_batched_equivalence() {
    check_cipher(&Blowfish::new(b"table3-udr-blowfish"), "blowfish");
}

#[test]
fn des_batched_equivalence() {
    check_cipher(&Des::new(*b"OSDCkey!"), "des");
}

#[test]
fn triple_des_batched_equivalence() {
    let mut key = [0u8; 24];
    for (i, b) in key.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(37).wrapping_add(11);
    }
    check_cipher(&TripleDes::new(key), "3des");
}
