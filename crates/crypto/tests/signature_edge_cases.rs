//! Signature-verification edge cases for the capability trust chain.
//!
//! `osdc-sharing` treats a verified signature as proof that a grant or
//! revocation came from a key the federation trusts. Every way that
//! proof can be forged or misread therefore needs a pinned test:
//! truncated wire bytes, verification under the wrong key, empty
//! payloads, tampered ids, and prefix/extension confusions.

use osdc_crypto::sign::hmac_md5;
use osdc_crypto::{KeyId, Keyring, Signature, SignatureError, SigningKey};

fn ring_with(keys: &[&SigningKey]) -> Keyring {
    let mut ring = Keyring::new();
    for k in keys {
        ring.register(k);
    }
    ring
}

#[test]
fn truncated_signature_is_a_decode_error_not_a_misverify() {
    let key = SigningKey::from_seed(11);
    let wire = key.sign(b"cap").to_bytes();
    for cut in [0, 1, 8, 15, 23] {
        assert_eq!(
            Signature::from_bytes(&wire[..cut]),
            Err(SignatureError::Truncated { got: cut }),
            "cut at {cut}"
        );
    }
    // Trailing garbage is equally typed — never silently ignored.
    let mut long = wire.to_vec();
    long.push(0);
    assert_eq!(
        Signature::from_bytes(&long),
        Err(SignatureError::Truncated { got: 25 })
    );
    assert_eq!(Signature::from_bytes(&wire), Ok(key.sign(b"cap")));
}

#[test]
fn wrong_key_verify_fails_closed() {
    let grantor = SigningKey::from_seed(1);
    let mallory = SigningKey::from_seed(2);
    let ring = ring_with(&[&grantor, &mallory]);
    let payload = b"grant mallory /projects/genomics transfer";

    // Mallory signs with her own (trusted!) key but claims the grantor's
    // key id: the MAC check under the claimed key must fail.
    let mut forged = mallory.sign(payload);
    forged.key = grantor.id();
    assert_eq!(
        ring.verify(payload, &forged),
        Err(SignatureError::BadMac(grantor.id()))
    );

    // A signature from a key the ring never registered is UnknownKey,
    // reported with the offending id.
    let outsider = SigningKey::from_seed(3);
    let sig = outsider.sign(payload);
    assert_eq!(
        ring.verify(payload, &sig),
        Err(SignatureError::UnknownKey(outsider.id()))
    );
}

#[test]
fn empty_payload_signs_and_verifies_but_binds_nothing_else() {
    let key = SigningKey::from_seed(5);
    let ring = ring_with(&[&key]);
    let sig = key.sign(b"");
    assert!(ring.verify(b"", &sig).is_ok());
    // The empty-payload MAC is not a wildcard: any non-empty payload
    // must reject under the same signature.
    assert_eq!(
        ring.verify(b"x", &sig),
        Err(SignatureError::BadMac(key.id()))
    );
    // And the empty payload's MAC differs from a zero-byte-containing one.
    assert_ne!(sig.mac, key.sign(&[0u8]).mac);
}

#[test]
fn payload_prefix_and_extension_do_not_verify() {
    let key = SigningKey::from_seed(9);
    let ring = ring_with(&[&key]);
    let payload = b"grant bob /public view until=3600";
    let sig = key.sign(payload);
    assert!(ring.verify(payload, &sig).is_ok());
    assert!(ring.verify(&payload[..10], &sig).is_err(), "prefix");
    let mut extended = payload.to_vec();
    extended.extend_from_slice(b" and everything else");
    assert!(ring.verify(&extended, &sig).is_err(), "extension");
}

#[test]
fn mac_tamper_any_single_bit_rejects() {
    let key = SigningKey::from_seed(13);
    let ring = ring_with(&[&key]);
    let sig = key.sign(b"revoke cap 7");
    for byte in 0..16 {
        let mut bad = sig;
        bad.mac[byte] ^= 1;
        assert_eq!(
            ring.verify(b"revoke cap 7", &bad),
            Err(SignatureError::BadMac(key.id())),
            "byte {byte}"
        );
    }
}

#[test]
fn keyring_registration_is_idempotent_and_queryable() {
    let key = SigningKey::from_seed(21);
    let mut ring = Keyring::new();
    assert!(ring.is_empty());
    assert!(!ring.contains(key.id()));
    let a = ring.register(&key);
    let b = ring.register(&key);
    assert_eq!(a, b);
    assert_eq!(ring.len(), 1);
    assert!(ring.contains(key.id()));
    assert!(!ring.contains(KeyId(a.0 ^ 1)));
}

#[test]
fn hmac_differs_from_plain_md5_concat() {
    // The envelope construction must actually be HMAC, not md5(key ‖ m):
    // the classic length-extension-prone shortcut would agree with
    // md5(key ‖ m) and differ from the RFC vectors.
    let mac = hmac_md5(b"Jefe", b"what do ya want for nothing?");
    let mut concat = b"Jefe".to_vec();
    concat.extend_from_slice(b"what do ya want for nothing?");
    assert_ne!(mac, osdc_crypto::md5::md5(&concat));
}
