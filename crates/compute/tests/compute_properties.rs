//! Property tests on the cloud controller: resource accounting under
//! arbitrary boot/stop/start/terminate interleavings never leaks or
//! double-frees capacity.

use osdc_compute::{CloudController, Host, HostId, ImageId, InstanceId, InstanceState};
use osdc_sim::SimTime;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Boot { flavor: u8 },
    Stop { idx: u8 },
    Start { idx: u8 },
    Terminate { idx: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..4).prop_map(|flavor| Op::Boot { flavor }),
        1 => any::<u8>().prop_map(|idx| Op::Stop { idx }),
        1 => any::<u8>().prop_map(|idx| Op::Start { idx }),
        1 => any::<u8>().prop_map(|idx| Op::Terminate { idx }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn accounting_is_exact_under_arbitrary_lifecycles(
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        let hosts = (0..6)
            .map(|i| Host::new(HostId(i), format!("h{i}"), 8, 32_768, 8_000))
            .collect();
        let mut cloud = CloudController::new("prop", hosts);
        let flavors = ["m1.small", "m1.medium", "m1.large", "m1.xlarge"];
        let mut instances: Vec<InstanceId> = Vec::new();
        let mut t = 0u64;

        for op in ops {
            t += 1;
            let now = SimTime(t);
            match op {
                Op::Boot { flavor } => {
                    // Boot may legitimately fail on capacity; both paths ok.
                    if let Ok(id) =
                        cloud.boot("u", "vm", flavors[flavor as usize], ImageId(1), now)
                    {
                        instances.push(id);
                    }
                }
                Op::Stop { idx } if !instances.is_empty() => {
                    let id = instances[idx as usize % instances.len()];
                    cloud.stop(id, now).expect("stop never errors on known ids");
                }
                Op::Start { idx } if !instances.is_empty() => {
                    let id = instances[idx as usize % instances.len()];
                    // Start may fail if cores were given away meanwhile.
                    let _ = cloud.start(id, now);
                }
                Op::Terminate { idx } if !instances.is_empty() => {
                    let id = instances[idx as usize % instances.len()];
                    cloud.terminate(id, now).expect("terminate never errors on known ids");
                }
                _ => {}
            }
            // Invariant: allocated cores equal the sum over running
            // instances, always.
            let expected: u32 = cloud
                .all_instances()
                .filter(|i| {
                    matches!(i.state, InstanceState::Active | InstanceState::Building)
                })
                .map(|i| i.flavor.vcpus)
                .sum();
            prop_assert_eq!(cloud.allocated_cores(), expected);
            prop_assert!(cloud.allocated_cores() <= cloud.total_cores());
        }

        // Terminate everything: the cloud must return to exactly zero.
        let t_final = SimTime(t + 1);
        for id in &instances {
            cloud.terminate(*id, t_final).expect("terminate");
        }
        prop_assert_eq!(cloud.allocated_cores(), 0);
        // And the whole capacity is usable again.
        for i in 0..6 {
            let name = format!("refill{i}");
            prop_assert!(cloud.boot("u", &name, "m1.xlarge", ImageId(1), t_final).is_ok());
        }
    }
}
