//! # osdc-compute — the utility-cloud substrate under Tukey
//!
//! The OSDC "operates a PB-scale Eucalyptus, OpenStack, and Hadoop-based
//! infrastructure" (§3.2); OSDC-Adler and OSDC-Sullivan are "OpenStack &
//! Eucalyptus based utility cloud\[s\]" of 1248 cores (Table 2). Tukey's
//! defining feature is translating one console API onto those *different*
//! native stacks (§5.2), so this crate supplies:
//!
//! * [`cloud::CloudController`] — hosts, flavors, images, a least-loaded
//!   first-fit scheduler, instance lifecycle and per-user usage snapshots
//!   (the data the §6.4 billing poller reads every minute);
//! * [`api::OpenStackApi`] — a Nova-style JSON/REST dialect;
//! * [`api::EucalyptusApi`] — an EC2 query-parameter dialect with
//!   XML-flavoured responses.
//!
//! The two dialects expose the *same* controller semantics through
//! deliberately incompatible wire formats — precisely the impedance
//! mismatch Tukey's translation proxies (in `osdc-tukey`) exist to absorb.
//! Machine images record their portability (§3.2 rule 6: "mechanisms to
//! both import and export data and the associated computing environment"),
//! which the Table 1 lock-in comparison exercises.

pub mod api;
pub mod cloud;
pub mod host;
pub mod image;
pub mod instance;

pub use api::{ApiError, EucalyptusApi, OpenStackApi};
pub use cloud::{CloudController, SchedulingError, UsageSnapshot};
pub use host::{Host, HostId};
pub use image::{ImageId, MachineImage};
pub use instance::{Instance, InstanceFlavor, InstanceId, InstanceState};
