//! Physical hosts: the 39-server, 8-core/8-TB racks of footnote 2.

/// Identifies a host within one cloud.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub usize);

/// One physical server.
#[derive(Clone, Debug)]
pub struct Host {
    pub id: HostId,
    pub name: String,
    pub cores: u32,
    pub ram_mb: u64,
    pub disk_gb: u64,
    allocated_cores: u32,
    allocated_ram_mb: u64,
    allocated_disk_gb: u64,
    /// Power/network state: a down host schedules nothing. Fault injection
    /// flips this via [`crate::CloudController::fail_host`].
    up: bool,
}

impl Host {
    pub fn new(id: HostId, name: impl Into<String>, cores: u32, ram_mb: u64, disk_gb: u64) -> Self {
        Host {
            id,
            name: name.into(),
            cores,
            ram_mb,
            disk_gb,
            allocated_cores: 0,
            allocated_ram_mb: 0,
            allocated_disk_gb: 0,
            up: true,
        }
    }

    /// The paper's standard rack unit: "39 servers, each with 8 cores and
    /// 8 TB of disk" (§9.1 footnote), with an era-typical 32 GB of RAM.
    pub fn osdc_standard(id: HostId, name: impl Into<String>) -> Self {
        Host::new(id, name, 8, 32_768, 8_000)
    }

    pub fn free_cores(&self) -> u32 {
        self.cores - self.allocated_cores
    }
    pub fn free_ram_mb(&self) -> u64 {
        self.ram_mb - self.allocated_ram_mb
    }
    pub fn free_disk_gb(&self) -> u64 {
        self.disk_gb - self.allocated_disk_gb
    }
    pub fn allocated_cores(&self) -> u32 {
        self.allocated_cores
    }

    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Flip power/network state. Releasing the placed instances is the
    /// controller's job (it knows which instances live here).
    pub fn set_up(&mut self, up: bool) {
        self.up = up;
    }

    pub fn fits(&self, cores: u32, ram_mb: u64, disk_gb: u64) -> bool {
        self.up
            && self.free_cores() >= cores
            && self.free_ram_mb() >= ram_mb
            && self.free_disk_gb() >= disk_gb
    }

    /// Claim resources; returns false (unchanged) if they do not fit.
    pub fn allocate(&mut self, cores: u32, ram_mb: u64, disk_gb: u64) -> bool {
        if !self.fits(cores, ram_mb, disk_gb) {
            return false;
        }
        self.allocated_cores += cores;
        self.allocated_ram_mb += ram_mb;
        self.allocated_disk_gb += disk_gb;
        true
    }

    pub fn release(&mut self, cores: u32, ram_mb: u64, disk_gb: u64) {
        debug_assert!(
            self.allocated_cores >= cores,
            "release more cores than allocated"
        );
        self.allocated_cores = self.allocated_cores.saturating_sub(cores);
        self.allocated_ram_mb = self.allocated_ram_mb.saturating_sub(ram_mb);
        self.allocated_disk_gb = self.allocated_disk_gb.saturating_sub(disk_gb);
    }

    /// Core utilization in [0, 1].
    pub fn utilization(&self) -> f64 {
        self.allocated_cores as f64 / self.cores as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_host_matches_paper_footnote() {
        let h = Host::osdc_standard(HostId(0), "r1s1");
        assert_eq!(h.cores, 8);
        assert_eq!(h.disk_gb, 8_000);
    }

    #[test]
    fn allocate_and_release() {
        let mut h = Host::new(HostId(0), "h", 8, 1000, 100);
        assert!(h.allocate(4, 500, 50));
        assert_eq!(h.free_cores(), 4);
        assert!((h.utilization() - 0.5).abs() < 1e-12);
        assert!(!h.allocate(5, 1, 1), "over cores");
        assert!(!h.allocate(1, 501, 1), "over ram");
        assert!(!h.allocate(1, 1, 51), "over disk");
        assert_eq!(h.free_cores(), 4, "failed allocation must not change state");
        h.release(4, 500, 50);
        assert_eq!(h.free_cores(), 8);
        assert_eq!(h.utilization(), 0.0);
    }

    #[test]
    fn exact_fit() {
        let mut h = Host::new(HostId(0), "h", 2, 10, 10);
        assert!(h.allocate(2, 10, 10));
        assert!(!h.fits(1, 0, 0));
    }
}
