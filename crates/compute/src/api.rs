//! The two native wire dialects Tukey must reconcile (§5.2).
//!
//! "The translation proxies take in requests based on the OpenStack API
//! and then issue commands to each cloud based on mappings outlined in
//! configuration files for each cloud. The result of each request is then
//! transformed according to the rules of the configuration file, tagged
//! with the cloud name and aggregated into a JSON response that matches
//! the format of the OpenStack API."
//!
//! To make that translation real, the two stacks speak *different*
//! languages end to end:
//!
//! * [`OpenStackApi`] — Nova-style REST: method + path + JSON body, JSON
//!   responses (`{"server": {...}}`, `{"servers": [...]}`).
//! * [`EucalyptusApi`] — EC2 query style: a flat `Action=...&Key=Value`
//!   parameter string, XML-ish responses
//!   (`<RunInstancesResponse>...</RunInstancesResponse>`).

use std::collections::BTreeMap;

use osdc_sim::SimTime;
use serde_json::{json, Value};

use crate::cloud::{CloudController, SchedulingError};
use crate::image::ImageId;
use crate::instance::{InstanceId, InstanceState};

/// Errors either dialect can return.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiError {
    BadRequest(String),
    NotFound(String),
    /// Scheduler-level failure (capacity, unknown flavor/image).
    Compute(String),
}

impl From<SchedulingError> for ApiError {
    fn from(e: SchedulingError) -> Self {
        match e {
            SchedulingError::UnknownInstance(id) => ApiError::NotFound(format!("instance {id:?}")),
            other => ApiError::Compute(format!("{other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// OpenStack dialect
// ---------------------------------------------------------------------------

/// Nova-style JSON API over a [`CloudController`].
pub struct OpenStackApi<'c> {
    pub cloud: &'c mut CloudController,
}

impl<'c> OpenStackApi<'c> {
    pub fn new(cloud: &'c mut CloudController) -> Self {
        OpenStackApi { cloud }
    }

    /// Dispatch `method path` with an optional JSON body, acting as
    /// `user`. Supported routes: `POST /servers`, `GET /servers`,
    /// `GET /servers/{id}`, `DELETE /servers/{id}`, `GET /flavors`,
    /// `GET /images`.
    pub fn handle(
        &mut self,
        user: &str,
        method: &str,
        path: &str,
        body: Option<&Value>,
        now: SimTime,
    ) -> Result<Value, ApiError> {
        match (method, path) {
            ("POST", "/servers") => {
                let server = body
                    .and_then(|b| b.get("server"))
                    .ok_or_else(|| ApiError::BadRequest("missing 'server' object".into()))?;
                let name = server
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ApiError::BadRequest("missing server.name".into()))?;
                let flavor = server
                    .get("flavorRef")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ApiError::BadRequest("missing server.flavorRef".into()))?;
                let image_id = server
                    .get("imageRef")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| ApiError::BadRequest("missing server.imageRef".into()))?;
                let id = self
                    .cloud
                    .boot(user, name, flavor, ImageId(image_id), now)?;
                Ok(json!({"server": {"id": id.0, "name": name, "status": "ACTIVE"}}))
            }
            ("GET", "/servers") => {
                let servers: Vec<Value> = self
                    .cloud
                    .instances_of(user)
                    .filter(|i| i.state != InstanceState::Terminated)
                    .map(|i| {
                        json!({
                            "id": i.id.0,
                            "name": i.name,
                            "status": i.state.openstack(),
                            "flavor": {"name": i.flavor.name, "vcpus": i.flavor.vcpus},
                            "image": {"id": i.image.0},
                        })
                    })
                    .collect();
                Ok(json!({ "servers": servers }))
            }
            ("GET", "/flavors") => {
                let flavors: Vec<Value> = self
                    .cloud
                    .flavors()
                    .iter()
                    .map(|f| {
                        json!({"name": f.name, "vcpus": f.vcpus, "ram": f.ram_mb, "disk": f.disk_gb})
                    })
                    .collect();
                Ok(json!({ "flavors": flavors }))
            }
            ("GET", "/images") => {
                let images: Vec<Value> = self
                    .cloud
                    .images()
                    .map(|i| json!({"id": i.id.0, "name": i.name, "tools": i.tools}))
                    .collect();
                Ok(json!({ "images": images }))
            }
            _ => {
                // Parameterized routes.
                if let Some(rest) = path.strip_prefix("/servers/") {
                    // Nova action routes: POST /servers/{id}/action.
                    if let Some(id_str) = rest.strip_suffix("/action") {
                        if method != "POST" {
                            return Err(ApiError::BadRequest(format!("{method} {path}")));
                        }
                        let id: u64 = id_str.parse().map_err(|_| {
                            ApiError::BadRequest(format!("bad server id '{id_str}'"))
                        })?;
                        let id = InstanceId(id);
                        if self.cloud.instance(id).map(|i| i.owner.as_str()) != Some(user) {
                            return Err(ApiError::NotFound(format!("server {}", id.0)));
                        }
                        let body = body
                            .ok_or_else(|| ApiError::BadRequest("action requires a body".into()))?;
                        if body.get("os-stop").is_some() {
                            self.cloud.stop(id, now)?;
                        } else if body.get("os-start").is_some() {
                            self.cloud.start(id, now)?;
                        } else {
                            return Err(ApiError::BadRequest("unknown action".into()));
                        }
                        let i = self.cloud.instance(id).expect("checked above");
                        return Ok(json!({"server": {"id": id.0, "status": i.state.openstack()}}));
                    }
                    let id: u64 = rest
                        .parse()
                        .map_err(|_| ApiError::BadRequest(format!("bad server id '{rest}'")))?;
                    let id = InstanceId(id);
                    return match method {
                        "GET" => {
                            let i = self
                                .cloud
                                .instance(id)
                                .filter(|i| i.owner == user)
                                .ok_or_else(|| ApiError::NotFound(format!("server {}", id.0)))?;
                            Ok(json!({"server": {
                                "id": i.id.0,
                                "name": i.name,
                                "status": i.state.openstack(),
                            }}))
                        }
                        "DELETE" => {
                            if self.cloud.instance(id).map(|i| i.owner.as_str()) != Some(user) {
                                return Err(ApiError::NotFound(format!("server {}", id.0)));
                            }
                            self.cloud.terminate(id, now)?;
                            Ok(json!({}))
                        }
                        _ => Err(ApiError::BadRequest(format!("{method} {path}"))),
                    };
                }
                Err(ApiError::BadRequest(format!("{method} {path}")))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Eucalyptus dialect
// ---------------------------------------------------------------------------

/// EC2-query-style API over a [`CloudController`].
pub struct EucalyptusApi<'c> {
    pub cloud: &'c mut CloudController,
}

impl<'c> EucalyptusApi<'c> {
    pub fn new(cloud: &'c mut CloudController) -> Self {
        EucalyptusApi { cloud }
    }

    fn parse_query(query: &str) -> BTreeMap<&str, &str> {
        query
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .collect()
    }

    fn parse_ec2_id(s: &str) -> Option<InstanceId> {
        u64::from_str_radix(s.strip_prefix("i-")?, 16)
            .ok()
            .map(InstanceId)
    }

    fn parse_emi(s: &str) -> Option<ImageId> {
        u64::from_str_radix(s.strip_prefix("emi-")?, 16)
            .ok()
            .map(ImageId)
    }

    /// Dispatch an `Action=...` query string, acting as `user`. Supported:
    /// `RunInstances`, `DescribeInstances`, `TerminateInstances`,
    /// `DescribeImages`.
    pub fn handle(&mut self, user: &str, query: &str, now: SimTime) -> Result<String, ApiError> {
        let params = Self::parse_query(query);
        match params.get("Action").copied() {
            Some("RunInstances") => {
                let image = params
                    .get("ImageId")
                    .and_then(|s| Self::parse_emi(s))
                    .ok_or_else(|| ApiError::BadRequest("missing/invalid ImageId".into()))?;
                let flavor = params
                    .get("InstanceType")
                    .copied()
                    .ok_or_else(|| ApiError::BadRequest("missing InstanceType".into()))?;
                let name = params
                    .get("ClientToken")
                    .copied()
                    .unwrap_or("euca-instance");
                let id = self.cloud.boot(user, name, flavor, image, now)?;
                Ok(format!(
                    "<RunInstancesResponse><instancesSet><item><instanceId>{}</instanceId>\
                     <imageId>{}</imageId><instanceState><name>running</name></instanceState>\
                     </item></instancesSet></RunInstancesResponse>",
                    id.ec2(),
                    image.emi()
                ))
            }
            Some("DescribeInstances") => {
                let items: String = self
                    .cloud
                    .instances_of(user)
                    .filter(|i| i.state != InstanceState::Terminated)
                    .map(|i| {
                        format!(
                            "<item><instanceId>{}</instanceId><instanceType>{}</instanceType>\
                             <instanceState><name>{}</name></instanceState></item>",
                            i.id.ec2(),
                            i.flavor.name,
                            i.state.ec2()
                        )
                    })
                    .collect();
                Ok(format!(
                    "<DescribeInstancesResponse><reservationSet>{items}</reservationSet>\
                     </DescribeInstancesResponse>"
                ))
            }
            Some("TerminateInstances") => {
                let id = params
                    .get("InstanceId.1")
                    .and_then(|s| Self::parse_ec2_id(s))
                    .ok_or_else(|| ApiError::BadRequest("missing/invalid InstanceId.1".into()))?;
                if self.cloud.instance(id).map(|i| i.owner.as_str()) != Some(user) {
                    return Err(ApiError::NotFound(format!("instance {}", id.ec2())));
                }
                self.cloud.terminate(id, now)?;
                Ok(format!(
                    "<TerminateInstancesResponse><instancesSet><item><instanceId>{}</instanceId>\
                     <currentState><name>terminated</name></currentState></item></instancesSet>\
                     </TerminateInstancesResponse>",
                    id.ec2()
                ))
            }
            Some(action @ ("StopInstances" | "StartInstances")) => {
                let id = params
                    .get("InstanceId.1")
                    .and_then(|s| Self::parse_ec2_id(s))
                    .ok_or_else(|| ApiError::BadRequest("missing/invalid InstanceId.1".into()))?;
                if self.cloud.instance(id).map(|i| i.owner.as_str()) != Some(user) {
                    return Err(ApiError::NotFound(format!("instance {}", id.ec2())));
                }
                if action == "StopInstances" {
                    self.cloud.stop(id, now)?;
                } else {
                    self.cloud.start(id, now)?;
                }
                let state = self.cloud.instance(id).expect("checked above").state.ec2();
                Ok(format!(
                    "<{action}Response><instancesSet><item><instanceId>{}</instanceId>\
                     <currentState><name>{state}</name></currentState></item></instancesSet>\
                     </{action}Response>",
                    id.ec2()
                ))
            }
            Some("DescribeImages") => {
                let items: String = self
                    .cloud
                    .images()
                    .map(|i| {
                        format!(
                            "<item><imageId>{}</imageId><name>{}</name></item>",
                            i.id.emi(),
                            i.name
                        )
                    })
                    .collect();
                Ok(format!(
                    "<DescribeImagesResponse><imagesSet>{items}</imagesSet></DescribeImagesResponse>"
                ))
            }
            Some(other) => Err(ApiError::BadRequest(format!("unsupported Action={other}"))),
            None => Err(ApiError::BadRequest("missing Action".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{Host, HostId};

    fn cloud() -> CloudController {
        let hosts = (0..2)
            .map(|i| Host::new(HostId(i), format!("h{i}"), 8, 32_768, 8_000))
            .collect();
        CloudController::new("adler", hosts)
    }

    #[test]
    fn openstack_boot_list_delete() {
        let mut c = cloud();
        let mut api = OpenStackApi::new(&mut c);
        let resp = api
            .handle(
                "alice",
                "POST",
                "/servers",
                Some(&json!({"server": {"name": "vm1", "flavorRef": "m1.small", "imageRef": 1}})),
                SimTime::ZERO,
            )
            .expect("boots");
        let id = resp["server"]["id"].as_u64().expect("id present");
        assert_eq!(resp["server"]["status"], "ACTIVE");

        let list = api
            .handle("alice", "GET", "/servers", None, SimTime(1))
            .expect("lists");
        assert_eq!(list["servers"].as_array().expect("array").len(), 1);

        api.handle(
            "alice",
            "DELETE",
            &format!("/servers/{id}"),
            None,
            SimTime(2),
        )
        .expect("deletes");
        let list = api
            .handle("alice", "GET", "/servers", None, SimTime(3))
            .expect("lists");
        assert!(list["servers"].as_array().expect("array").is_empty());
    }

    #[test]
    fn openstack_listing_is_per_user() {
        let mut c = cloud();
        let mut api = OpenStackApi::new(&mut c);
        api.handle(
            "alice",
            "POST",
            "/servers",
            Some(&json!({"server": {"name": "a", "flavorRef": "m1.small", "imageRef": 1}})),
            SimTime::ZERO,
        )
        .expect("boots");
        let bob = api
            .handle("bob", "GET", "/servers", None, SimTime(1))
            .expect("lists");
        assert!(bob["servers"].as_array().expect("array").is_empty());
    }

    #[test]
    fn openstack_cannot_delete_foreign_server() {
        let mut c = cloud();
        let mut api = OpenStackApi::new(&mut c);
        let resp = api
            .handle(
                "alice",
                "POST",
                "/servers",
                Some(&json!({"server": {"name": "a", "flavorRef": "m1.small", "imageRef": 1}})),
                SimTime::ZERO,
            )
            .expect("boots");
        let id = resp["server"]["id"].as_u64().expect("id");
        let err = api
            .handle(
                "mallory",
                "DELETE",
                &format!("/servers/{id}"),
                None,
                SimTime(1),
            )
            .expect_err("foreign delete rejected");
        assert!(matches!(err, ApiError::NotFound(_)));
    }

    #[test]
    fn openstack_bad_requests() {
        let mut c = cloud();
        let mut api = OpenStackApi::new(&mut c);
        assert!(matches!(
            api.handle("u", "POST", "/servers", Some(&json!({})), SimTime::ZERO),
            Err(ApiError::BadRequest(_))
        ));
        assert!(matches!(
            api.handle("u", "PATCH", "/servers", None, SimTime::ZERO),
            Err(ApiError::BadRequest(_))
        ));
        assert!(matches!(
            api.handle("u", "GET", "/servers/notanumber", None, SimTime::ZERO),
            Err(ApiError::BadRequest(_))
        ));
    }

    #[test]
    fn openstack_flavors_and_images() {
        let mut c = cloud();
        let mut api = OpenStackApi::new(&mut c);
        let flavors = api
            .handle("u", "GET", "/flavors", None, SimTime::ZERO)
            .expect("flavors");
        assert_eq!(flavors["flavors"].as_array().expect("array").len(), 4);
        let images = api
            .handle("u", "GET", "/images", None, SimTime::ZERO)
            .expect("images");
        assert!(images["images"].as_array().expect("array").len() >= 4);
    }

    #[test]
    fn eucalyptus_run_describe_terminate() {
        let mut c = cloud();
        let mut api = EucalyptusApi::new(&mut c);
        let resp = api
            .handle(
                "alice",
                "Action=RunInstances&ImageId=emi-00000001&InstanceType=m1.small&ClientToken=vm1",
                SimTime::ZERO,
            )
            .expect("runs");
        assert!(
            resp.contains("<instanceId>i-00000001</instanceId>"),
            "{resp}"
        );
        assert!(resp.contains("running"));

        let desc = api
            .handle("alice", "Action=DescribeInstances", SimTime(1))
            .expect("describes");
        assert!(desc.contains("i-00000001"));
        assert!(desc.contains("<instanceType>m1.small</instanceType>"));

        let term = api
            .handle(
                "alice",
                "Action=TerminateInstances&InstanceId.1=i-00000001",
                SimTime(2),
            )
            .expect("terminates");
        assert!(term.contains("terminated"));
        let desc = api
            .handle("alice", "Action=DescribeInstances", SimTime(3))
            .expect("describes");
        assert!(!desc.contains("i-00000001"));
    }

    #[test]
    fn eucalyptus_rejects_bad_input() {
        let mut c = cloud();
        let mut api = EucalyptusApi::new(&mut c);
        assert!(matches!(
            api.handle(
                "u",
                "Action=RunInstances&InstanceType=m1.small",
                SimTime::ZERO
            ),
            Err(ApiError::BadRequest(_))
        ));
        assert!(matches!(
            api.handle("u", "Action=FlyToTheMoon", SimTime::ZERO),
            Err(ApiError::BadRequest(_))
        ));
        assert!(matches!(
            api.handle("u", "NoAction=1", SimTime::ZERO),
            Err(ApiError::BadRequest(_))
        ));
    }

    #[test]
    fn eucalyptus_ownership_enforced() {
        let mut c = cloud();
        let mut api = EucalyptusApi::new(&mut c);
        api.handle(
            "alice",
            "Action=RunInstances&ImageId=emi-00000001&InstanceType=m1.small",
            SimTime::ZERO,
        )
        .expect("runs");
        let err = api
            .handle(
                "mallory",
                "Action=TerminateInstances&InstanceId.1=i-00000001",
                SimTime(1),
            )
            .expect_err("foreign terminate rejected");
        assert!(matches!(err, ApiError::NotFound(_)));
    }

    #[test]
    fn openstack_stop_start_actions() {
        let mut c = cloud();
        let mut api = OpenStackApi::new(&mut c);
        let resp = api
            .handle(
                "alice",
                "POST",
                "/servers",
                Some(&json!({"server": {"name": "a", "flavorRef": "m1.small", "imageRef": 1}})),
                SimTime::ZERO,
            )
            .expect("boots");
        let id = resp["server"]["id"].as_u64().expect("id");
        let stopped = api
            .handle(
                "alice",
                "POST",
                &format!("/servers/{id}/action"),
                Some(&json!({"os-stop": null})),
                SimTime(1),
            )
            .expect("stops");
        assert_eq!(stopped["server"]["status"], "SHUTOFF");
        let started = api
            .handle(
                "alice",
                "POST",
                &format!("/servers/{id}/action"),
                Some(&json!({"os-start": null})),
                SimTime(2),
            )
            .expect("starts");
        assert_eq!(started["server"]["status"], "ACTIVE");
        // Unknown action and foreign access rejected.
        assert!(matches!(
            api.handle(
                "alice",
                "POST",
                &format!("/servers/{id}/action"),
                Some(&json!({"reboot": null})),
                SimTime(3)
            ),
            Err(ApiError::BadRequest(_))
        ));
        assert!(matches!(
            api.handle(
                "mallory",
                "POST",
                &format!("/servers/{id}/action"),
                Some(&json!({"os-stop": null})),
                SimTime(4)
            ),
            Err(ApiError::NotFound(_))
        ));
    }

    #[test]
    fn eucalyptus_stop_start_actions() {
        let mut c = cloud();
        let mut api = EucalyptusApi::new(&mut c);
        api.handle(
            "alice",
            "Action=RunInstances&ImageId=emi-00000001&InstanceType=m1.medium",
            SimTime::ZERO,
        )
        .expect("runs");
        let stopped = api
            .handle(
                "alice",
                "Action=StopInstances&InstanceId.1=i-00000001",
                SimTime(1),
            )
            .expect("stops");
        assert!(stopped.contains("<name>stopped</name>"), "{stopped}");
        let started = api
            .handle(
                "alice",
                "Action=StartInstances&InstanceId.1=i-00000001",
                SimTime(2),
            )
            .expect("starts");
        assert!(started.contains("<name>running</name>"), "{started}");
    }

    #[test]
    fn dialects_share_one_controller() {
        // Boot via OpenStack, observe via Eucalyptus: same cloud state.
        let mut c = cloud();
        OpenStackApi::new(&mut c)
            .handle(
                "alice",
                "POST",
                "/servers",
                Some(&json!({"server": {"name": "x", "flavorRef": "m1.large", "imageRef": 2}})),
                SimTime::ZERO,
            )
            .expect("boots");
        let desc = EucalyptusApi::new(&mut c)
            .handle("alice", "Action=DescribeInstances", SimTime(1))
            .expect("describes");
        assert!(desc.contains("m1.large"), "{desc}");
    }
}
