//! Machine images: the community tool-stacks of §3.2 and §4.1.
//!
//! "Make available computing images via infrastructure as a service that
//! contain the software tools and applications commonly used by a
//! community" (§3.2 rule 5) — and, against lock-in, "provide mechanisms to
//! both import and export data and the associated computing environment so
//! that researchers can easily move their computing infrastructures
//! between science clouds" (rule 6). §9: "In general, OSDC machine images
//! can also run on AWS."

use serde::{Deserialize, Serialize};

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ImageId(pub u64);

impl ImageId {
    /// Eucalyptus machine-image rendering.
    pub fn emi(self) -> String {
        format!("emi-{:08x}", self.0)
    }
}

/// A bootable image with its community tool inventory.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineImage {
    pub id: ImageId,
    pub name: String,
    pub os: String,
    /// Pre-installed community pipelines/tools (e.g. bwa, samtools for the
    /// Bionimbus images).
    pub tools: Vec<String>,
    pub size_gb: u64,
    /// Whether the image can be exported to run on another CSP (science-CSP
    /// property in Table 1; commercial CSPs favour lock-in).
    pub exportable: bool,
}

impl MachineImage {
    /// The image catalog the examples and experiments boot from.
    pub fn osdc_catalog() -> Vec<MachineImage> {
        let mk = |id: u64, name: &str, tools: &[&str], size_gb| MachineImage {
            id: ImageId(id),
            name: name.to_string(),
            os: "ubuntu-12.04".to_string(),
            tools: tools.iter().map(|s| s.to_string()).collect(),
            size_gb,
            exportable: true,
        };
        vec![
            mk(1, "ubuntu-base", &[], 2),
            mk(
                2,
                "bionimbus-genomics",
                &["bwa", "samtools", "bowtie", "tophat", "gatk"],
                12,
            ),
            mk(
                3,
                "matsu-earth-obs",
                &["gdal", "hadoop-client", "flood-detect"],
                8,
            ),
            mk(4, "bookworm-nlp", &["ngrams", "mysql", "solr"], 10),
        ]
    }

    /// Export the image as a portable bundle descriptor (what moves to AWS
    /// or another science cloud). Returns `None` for locked-in images.
    pub fn export_bundle(&self) -> Option<String> {
        self.exportable.then(|| {
            format!(
                "bundle:{}:{}:{}gb:tools={}",
                self.id.emi(),
                self.name,
                self.size_gb,
                self.tools.join(",")
            )
        })
    }

    /// Import a bundle produced by [`Self::export_bundle`] (possibly from
    /// another cloud), assigning a fresh local id.
    pub fn import_bundle(bundle: &str, new_id: ImageId) -> Option<MachineImage> {
        let mut parts = bundle.split(':');
        if parts.next() != Some("bundle") {
            return None;
        }
        let _foreign_id = parts.next()?;
        let name = parts.next()?.to_string();
        let size_gb: u64 = parts.next()?.strip_suffix("gb")?.parse().ok()?;
        let tools_part = parts.next()?.strip_prefix("tools=")?;
        let tools = if tools_part.is_empty() {
            Vec::new()
        } else {
            tools_part.split(',').map(str::to_string).collect()
        };
        Some(MachineImage {
            id: new_id,
            name,
            os: "ubuntu-12.04".to_string(),
            tools,
            size_gb,
            exportable: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_community_images() {
        let cat = MachineImage::osdc_catalog();
        assert!(cat.iter().any(|i| i.name == "bionimbus-genomics"));
        let bio = cat
            .iter()
            .find(|i| i.name == "bionimbus-genomics")
            .expect("exists");
        assert!(bio.tools.iter().any(|t| t == "samtools"));
    }

    #[test]
    fn export_import_roundtrip() {
        let img = &MachineImage::osdc_catalog()[1];
        let bundle = img.export_bundle().expect("exportable");
        let back = MachineImage::import_bundle(&bundle, ImageId(77)).expect("parses");
        assert_eq!(back.id, ImageId(77));
        assert_eq!(back.name, img.name);
        assert_eq!(back.tools, img.tools);
        assert_eq!(back.size_gb, img.size_gb);
    }

    #[test]
    fn locked_in_image_cannot_export() {
        let mut img = MachineImage::osdc_catalog()[0].clone();
        img.exportable = false;
        assert!(img.export_bundle().is_none());
    }

    #[test]
    fn import_rejects_garbage() {
        assert!(MachineImage::import_bundle("not a bundle", ImageId(1)).is_none());
        assert!(MachineImage::import_bundle("bundle:xx", ImageId(1)).is_none());
        assert!(MachineImage::import_bundle("bundle:id:name:XXgb:tools=", ImageId(1)).is_none());
    }

    #[test]
    fn import_empty_toolset() {
        let img = &MachineImage::osdc_catalog()[0]; // no tools
        let bundle = img.export_bundle().expect("exportable");
        let back = MachineImage::import_bundle(&bundle, ImageId(5)).expect("parses");
        assert!(back.tools.is_empty());
    }

    #[test]
    fn emi_format() {
        assert_eq!(ImageId(255).emi(), "emi-000000ff");
    }
}
