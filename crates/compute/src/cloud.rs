//! The cloud controller: scheduler, lifecycle, usage snapshots.
//!
//! One `CloudController` models one utility cloud (an OSDC-Adler, an
//! OSDC-Sullivan). Both native API dialects in [`crate::api`] are thin
//! translations over this type, which is the point: the *controller*
//! semantics are common, the *wire formats* are not, and Tukey bridges the
//! difference.

use std::collections::BTreeMap;

use osdc_sim::SimTime;

use crate::host::{Host, HostId};
use crate::image::{ImageId, MachineImage};
use crate::instance::{Instance, InstanceFlavor, InstanceId, InstanceState};

/// Why a boot request failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedulingError {
    UnknownFlavor(String),
    UnknownImage(ImageId),
    /// No host has room for the flavor.
    NoCapacity {
        requested_cores: u32,
    },
    UnknownInstance(InstanceId),
}

/// Point-in-time usage for one user — what the §6.4 billing poller reads
/// each minute.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UsageSnapshot {
    pub instances: u32,
    pub cores: u32,
    pub ram_mb: u64,
}

/// One IaaS cloud.
pub struct CloudController {
    pub name: String,
    hosts: Vec<Host>,
    flavors: Vec<InstanceFlavor>,
    images: BTreeMap<ImageId, MachineImage>,
    instances: BTreeMap<InstanceId, Instance>,
    next_instance: u64,
    next_image: u64,
}

impl CloudController {
    pub fn new(name: impl Into<String>, hosts: Vec<Host>) -> Self {
        let images: BTreeMap<ImageId, MachineImage> = MachineImage::osdc_catalog()
            .into_iter()
            .map(|i| (i.id, i))
            .collect();
        let next_image = images.keys().map(|i| i.0).max().unwrap_or(0) + 1;
        CloudController {
            name: name.into(),
            hosts,
            flavors: InstanceFlavor::standard_set(),
            images,
            instances: BTreeMap::new(),
            next_instance: 1,
            next_image,
        }
    }

    /// Build a cloud of `racks` standard OSDC racks (39 × 8-core servers).
    pub fn with_racks(name: impl Into<String>, racks: usize) -> Self {
        let name = name.into();
        let hosts = (0..racks * 39)
            .map(|i| {
                Host::osdc_standard(HostId(i), format!("{name}-rack{}-server{}", i / 39, i % 39))
            })
            .collect();
        CloudController::new(name, hosts)
    }

    pub fn total_cores(&self) -> u32 {
        self.hosts.iter().map(|h| h.cores).sum()
    }

    pub fn total_disk_gb(&self) -> u64 {
        self.hosts.iter().map(|h| h.disk_gb).sum()
    }

    pub fn allocated_cores(&self) -> u32 {
        self.hosts.iter().map(|h| h.allocated_cores()).sum()
    }

    pub fn utilization(&self) -> f64 {
        self.allocated_cores() as f64 / self.total_cores() as f64
    }

    pub fn flavors(&self) -> &[InstanceFlavor] {
        &self.flavors
    }

    pub fn find_flavor(&self, name: &str) -> Option<&InstanceFlavor> {
        self.flavors.iter().find(|f| f.name == name)
    }

    pub fn images(&self) -> impl Iterator<Item = &MachineImage> {
        self.images.values()
    }

    pub fn image(&self, id: ImageId) -> Option<&MachineImage> {
        self.images.get(&id)
    }

    pub fn register_image(&mut self, mut image: MachineImage) -> ImageId {
        let id = ImageId(self.next_image);
        self.next_image += 1;
        image.id = id;
        self.images.insert(id, image);
        id
    }

    /// Boot an instance: least-loaded host that fits (spreading, the Nova
    /// default weigher of the era).
    pub fn boot(
        &mut self,
        owner: &str,
        name: &str,
        flavor_name: &str,
        image: ImageId,
        now: SimTime,
    ) -> Result<InstanceId, SchedulingError> {
        let flavor = self
            .find_flavor(flavor_name)
            .cloned()
            .ok_or_else(|| SchedulingError::UnknownFlavor(flavor_name.to_string()))?;
        if !self.images.contains_key(&image) {
            return Err(SchedulingError::UnknownImage(image));
        }
        let host_idx = self
            .hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| h.fits(flavor.vcpus, flavor.ram_mb, flavor.disk_gb))
            .min_by(|(_, a), (_, b)| {
                a.utilization()
                    .partial_cmp(&b.utilization())
                    .expect("utilization is finite")
            })
            .map(|(i, _)| i)
            .ok_or(SchedulingError::NoCapacity {
                requested_cores: flavor.vcpus,
            })?;
        assert!(self.hosts[host_idx].allocate(flavor.vcpus, flavor.ram_mb, flavor.disk_gb));
        let id = InstanceId(self.next_instance);
        self.next_instance += 1;
        self.instances.insert(
            id,
            Instance {
                id,
                name: name.to_string(),
                owner: owner.to_string(),
                flavor,
                image,
                state: InstanceState::Active,
                host: self.hosts[host_idx].id,
                launched_at: now,
                terminated_at: None,
            },
        );
        Ok(id)
    }

    pub fn instance(&self, id: InstanceId) -> Option<&Instance> {
        self.instances.get(&id)
    }

    pub fn instances_of<'a>(&'a self, owner: &'a str) -> impl Iterator<Item = &'a Instance> + 'a {
        self.instances.values().filter(move |i| i.owner == owner)
    }

    pub fn all_instances(&self) -> impl Iterator<Item = &Instance> {
        self.instances.values()
    }

    /// Stop a running instance: cores and RAM are released (the paper's
    /// §6.4 billing counts Building/Active only), but the root disk stays
    /// allocated on the host, as both stacks of the era did.
    pub fn stop(&mut self, id: InstanceId, now: SimTime) -> Result<(), SchedulingError> {
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(SchedulingError::UnknownInstance(id))?;
        if inst.state != InstanceState::Active && inst.state != InstanceState::Building {
            return Ok(()); // stop is idempotent on non-running states
        }
        inst.state = InstanceState::Shutoff;
        let host = inst.host;
        let (c, r) = (inst.flavor.vcpus, inst.flavor.ram_mb);
        self.hosts[host.0].release(c, r, 0);
        let _ = now;
        Ok(())
    }

    /// Restart a stopped instance on its original host (disk is still
    /// there); fails with `NoCapacity` if the cores have been given away.
    pub fn start(&mut self, id: InstanceId, now: SimTime) -> Result<(), SchedulingError> {
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(SchedulingError::UnknownInstance(id))?;
        if inst.state != InstanceState::Shutoff {
            return Ok(()); // start is idempotent on running states
        }
        let host = inst.host;
        let (c, r) = (inst.flavor.vcpus, inst.flavor.ram_mb);
        if !self.hosts[host.0].allocate(c, r, 0) {
            return Err(SchedulingError::NoCapacity { requested_cores: c });
        }
        inst.state = InstanceState::Active;
        inst.launched_at = now;
        Ok(())
    }

    pub fn terminate(&mut self, id: InstanceId, now: SimTime) -> Result<(), SchedulingError> {
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(SchedulingError::UnknownInstance(id))?;
        if inst.state == InstanceState::Terminated {
            return Ok(()); // idempotent, as both real APIs are
        }
        let host = inst.host;
        // A Shutoff instance already gave back cores and RAM; only its
        // root disk remains to release.
        let (c, r) = if inst.state == InstanceState::Shutoff {
            (0, 0)
        } else {
            (inst.flavor.vcpus, inst.flavor.ram_mb)
        };
        let d = inst.flavor.disk_gb;
        inst.state = InstanceState::Terminated;
        inst.terminated_at = Some(now);
        self.hosts[host.0].release(c, r, d);
        Ok(())
    }

    /// Hardware failure: the host drops off the network, every instance on
    /// it dies (terminated, resources released), and the scheduler stops
    /// considering it. Returns how many instances were killed.
    pub fn fail_host(&mut self, host: HostId, now: SimTime) -> u32 {
        let doomed: Vec<InstanceId> = self
            .instances
            .values()
            .filter(|i| i.host == host && i.state != InstanceState::Terminated)
            .map(|i| i.id)
            .collect();
        let killed = doomed.len() as u32;
        for id in doomed {
            self.terminate(id, now).expect("instance exists");
        }
        self.hosts[host.0].set_up(false);
        killed
    }

    /// Bring a failed host back into the scheduling pool (repaired or
    /// rebooted — its instances are gone either way).
    pub fn restore_host(&mut self, host: HostId) {
        self.hosts[host.0].set_up(true);
    }

    pub fn host_is_up(&self, host: HostId) -> bool {
        self.hosts[host.0].is_up()
    }

    pub fn hosts_up(&self) -> usize {
        self.hosts.iter().filter(|h| h.is_up()).count()
    }

    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Kill one instance out from under its owner (OOM, kernel panic, a
    /// chaos monkey): terminate semantics, without touching the host.
    pub fn kill_instance(&mut self, id: InstanceId, now: SimTime) -> Result<(), SchedulingError> {
        self.terminate(id, now)
    }

    /// Per-minute billing poll: live resources for one user.
    pub fn usage(&self, owner: &str) -> UsageSnapshot {
        let mut snap = UsageSnapshot::default();
        for i in self.instances_of(owner).filter(|i| i.billable()) {
            snap.instances += 1;
            snap.cores += i.flavor.vcpus;
            snap.ram_mb += i.flavor.ram_mb;
        }
        snap
    }

    /// All users with any billable usage right now.
    pub fn active_users(&self) -> Vec<String> {
        let mut users: Vec<String> = self
            .instances
            .values()
            .filter(|i| i.billable())
            .map(|i| i.owner.clone())
            .collect();
        users.sort_unstable();
        users.dedup();
        users
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cloud() -> CloudController {
        let hosts = (0..4)
            .map(|i| Host::new(HostId(i), format!("h{i}"), 8, 32_768, 8_000))
            .collect();
        CloudController::new("test-cloud", hosts)
    }

    #[test]
    fn rack_arithmetic_matches_table2() {
        // OSDC-Adler & Sullivan: 1248 cores = 4 racks × 39 × 8.
        let cloud = CloudController::with_racks("adler-sullivan", 4);
        assert_eq!(cloud.total_cores(), 1248);
        // 4 racks × 39 × 8 TB = 1248 TB ≈ the paper's "1.2PB disk".
        assert_eq!(cloud.total_disk_gb(), 1_248_000);
    }

    #[test]
    fn boot_and_terminate_lifecycle() {
        let mut cloud = small_cloud();
        let id = cloud
            .boot("alice", "analysis-1", "m1.large", ImageId(2), SimTime::ZERO)
            .expect("boots");
        let inst = cloud.instance(id).expect("exists");
        assert_eq!(inst.state, InstanceState::Active);
        assert_eq!(cloud.allocated_cores(), 4);
        cloud.terminate(id, SimTime(60)).expect("terminates");
        assert_eq!(
            cloud.instance(id).expect("still listed").state,
            InstanceState::Terminated
        );
        assert_eq!(cloud.allocated_cores(), 0);
        // Idempotent: resources are not double-released.
        cloud.terminate(id, SimTime(61)).expect("idempotent");
        assert_eq!(cloud.allocated_cores(), 0);
    }

    #[test]
    fn scheduler_spreads_load() {
        let mut cloud = small_cloud();
        for i in 0..4 {
            cloud
                .boot(
                    "u",
                    &format!("vm{i}"),
                    "m1.medium",
                    ImageId(1),
                    SimTime::ZERO,
                )
                .expect("boots");
        }
        // Least-loaded spreading: one VM per host.
        let hosts: Vec<HostId> = cloud.all_instances().map(|i| i.host).collect();
        let mut unique = hosts.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4, "VMs should spread: {hosts:?}");
    }

    #[test]
    fn capacity_exhaustion() {
        let mut cloud = small_cloud(); // 32 cores total
        for i in 0..4 {
            cloud
                .boot(
                    "u",
                    &format!("big{i}"),
                    "m1.xlarge",
                    ImageId(1),
                    SimTime::ZERO,
                )
                .expect("boots");
        }
        let err = cloud
            .boot("u", "one-too-many", "m1.small", ImageId(1), SimTime::ZERO)
            .expect_err("full");
        assert_eq!(err, SchedulingError::NoCapacity { requested_cores: 1 });
    }

    #[test]
    fn terminated_capacity_is_reusable() {
        let mut cloud = small_cloud();
        let ids: Vec<InstanceId> = (0..4)
            .map(|i| {
                cloud
                    .boot(
                        "u",
                        &format!("vm{i}"),
                        "m1.xlarge",
                        ImageId(1),
                        SimTime::ZERO,
                    )
                    .expect("boots")
            })
            .collect();
        cloud.terminate(ids[0], SimTime(1)).expect("terminate");
        cloud
            .boot("u", "replacement", "m1.xlarge", ImageId(1), SimTime(2))
            .expect("fits again");
    }

    #[test]
    fn unknown_flavor_and_image_rejected() {
        let mut cloud = small_cloud();
        assert!(matches!(
            cloud.boot("u", "x", "m9.hyper", ImageId(1), SimTime::ZERO),
            Err(SchedulingError::UnknownFlavor(_))
        ));
        assert!(matches!(
            cloud.boot("u", "x", "m1.small", ImageId(999), SimTime::ZERO),
            Err(SchedulingError::UnknownImage(ImageId(999)))
        ));
    }

    #[test]
    fn usage_snapshot_tracks_billables() {
        let mut cloud = small_cloud();
        let a = cloud
            .boot("alice", "a1", "m1.large", ImageId(1), SimTime::ZERO)
            .expect("boots");
        cloud
            .boot("alice", "a2", "m1.small", ImageId(1), SimTime::ZERO)
            .expect("boots");
        cloud
            .boot("bob", "b1", "m1.medium", ImageId(1), SimTime::ZERO)
            .expect("boots");
        let alice = cloud.usage("alice");
        assert_eq!(alice.instances, 2);
        assert_eq!(alice.cores, 5);
        assert_eq!(cloud.usage("bob").cores, 2);
        assert_eq!(
            cloud.active_users(),
            vec!["alice".to_string(), "bob".to_string()]
        );
        cloud.terminate(a, SimTime(9)).expect("terminate");
        assert_eq!(cloud.usage("alice").cores, 1);
    }

    #[test]
    fn stop_releases_cores_but_keeps_disk() {
        let mut cloud = small_cloud();
        let id = cloud
            .boot("alice", "vm", "m1.xlarge", ImageId(1), SimTime::ZERO)
            .expect("boots");
        assert_eq!(cloud.allocated_cores(), 8);
        cloud.stop(id, SimTime(1)).expect("stops");
        assert_eq!(
            cloud.instance(id).expect("exists").state,
            InstanceState::Shutoff
        );
        assert_eq!(cloud.allocated_cores(), 0, "cores returned");
        assert!(
            !cloud.instance(id).expect("exists").billable(),
            "§6.4: stopped VMs stop billing"
        );
        // Stop is idempotent.
        cloud.stop(id, SimTime(2)).expect("idempotent");
        assert_eq!(cloud.allocated_cores(), 0);
        // Restart re-claims cores on the same host.
        cloud.start(id, SimTime(3)).expect("starts");
        assert_eq!(cloud.allocated_cores(), 8);
        assert_eq!(
            cloud.instance(id).expect("exists").state,
            InstanceState::Active
        );
    }

    #[test]
    fn start_fails_when_host_cores_taken() {
        // One-host cloud: stop a VM, fill the host, then try to restart.
        let hosts = vec![Host::new(HostId(0), "h0", 8, 32_768, 8_000)];
        let mut cloud = CloudController::new("tiny", hosts);
        let parked = cloud
            .boot("alice", "parked", "m1.xlarge", ImageId(1), SimTime::ZERO)
            .expect("boots");
        cloud.stop(parked, SimTime(1)).expect("stops");
        cloud
            .boot("bob", "squatter", "m1.xlarge", ImageId(1), SimTime(2))
            .expect("boots into the freed cores");
        let err = cloud.start(parked, SimTime(3)).expect_err("cores gone");
        assert_eq!(err, SchedulingError::NoCapacity { requested_cores: 8 });
        assert_eq!(
            cloud.instance(parked).expect("exists").state,
            InstanceState::Shutoff
        );
    }

    #[test]
    fn terminate_after_stop_releases_disk_only_once() {
        let mut cloud = small_cloud();
        let id = cloud
            .boot("alice", "vm", "m1.large", ImageId(1), SimTime::ZERO)
            .expect("boots");
        cloud.stop(id, SimTime(1)).expect("stops");
        cloud.terminate(id, SimTime(2)).expect("terminates");
        assert_eq!(cloud.allocated_cores(), 0);
        // Everything is reusable afterwards: fill the cloud completely.
        for i in 0..4 {
            cloud
                .boot("x", &format!("vm{i}"), "m1.xlarge", ImageId(1), SimTime(3))
                .expect("full capacity available");
        }
    }

    #[test]
    fn failed_host_kills_instances_and_leaves_pool() {
        let mut cloud = small_cloud();
        let ids: Vec<InstanceId> = (0..4)
            .map(|i| {
                cloud
                    .boot("u", &format!("vm{i}"), "m1.xlarge", ImageId(1), SimTime(0))
                    .expect("boots")
            })
            .collect();
        let victim_host = cloud.instance(ids[0]).expect("exists").host;
        let killed = cloud.fail_host(victim_host, SimTime(5));
        assert_eq!(killed, 1, "spread placement put one VM here");
        assert_eq!(
            cloud.instance(ids[0]).expect("listed").state,
            InstanceState::Terminated
        );
        assert_eq!(cloud.hosts_up(), 3);
        // Full-cloud boot pressure now fails: the down host takes no work.
        let err = cloud
            .boot("u", "fits-nowhere", "m1.small", ImageId(1), SimTime(6))
            .expect_err("3 survivors are full with xlarge VMs");
        assert_eq!(err, SchedulingError::NoCapacity { requested_cores: 1 });
        cloud.restore_host(victim_host);
        assert_eq!(cloud.hosts_up(), 4);
        cloud
            .boot("u", "recovered", "m1.xlarge", ImageId(1), SimTime(7))
            .expect("restored host schedules again");
    }

    #[test]
    fn kill_instance_releases_resources() {
        let mut cloud = small_cloud();
        let id = cloud
            .boot("u", "vm", "m1.large", ImageId(1), SimTime(0))
            .expect("boots");
        cloud.kill_instance(id, SimTime(1)).expect("killed");
        assert_eq!(cloud.allocated_cores(), 0);
        assert_eq!(
            cloud.instance(id).expect("listed").state,
            InstanceState::Terminated
        );
    }

    #[test]
    fn imported_image_is_bootable() {
        let mut cloud = small_cloud();
        let bundle = MachineImage::osdc_catalog()[1]
            .export_bundle()
            .expect("exportable");
        let img = MachineImage::import_bundle(&bundle, ImageId(0)).expect("parses");
        let id = cloud.register_image(img);
        cloud
            .boot("alice", "from-aws", "m1.small", id, SimTime::ZERO)
            .expect("boots from imported image");
    }
}
