//! Flavors and virtual-machine instances.

use osdc_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::host::HostId;
use crate::image::ImageId;

/// Identifies an instance within one cloud.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(pub u64);

impl InstanceId {
    /// EC2-style rendering used by the Eucalyptus dialect.
    pub fn ec2(self) -> String {
        format!("i-{:08x}", self.0)
    }
}

/// A VM size. The set mirrors the EC2-descended flavor family both stacks
/// of the era shipped.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceFlavor {
    pub name: String,
    pub vcpus: u32,
    pub ram_mb: u64,
    pub disk_gb: u64,
}

impl InstanceFlavor {
    pub fn standard_set() -> Vec<InstanceFlavor> {
        let mk = |name: &str, vcpus, ram_mb, disk_gb| InstanceFlavor {
            name: name.to_string(),
            vcpus,
            ram_mb,
            disk_gb,
        };
        vec![
            mk("m1.small", 1, 2_048, 20),
            mk("m1.medium", 2, 4_096, 40),
            mk("m1.large", 4, 8_192, 80),
            mk("m1.xlarge", 8, 16_384, 160),
        ]
    }
}

/// Lifecycle states (the OpenStack vocabulary; Eucalyptus names are mapped
/// in its API dialect).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceState {
    Building,
    Active,
    Shutoff,
    Terminated,
}

impl InstanceState {
    pub fn openstack(self) -> &'static str {
        match self {
            InstanceState::Building => "BUILD",
            InstanceState::Active => "ACTIVE",
            InstanceState::Shutoff => "SHUTOFF",
            InstanceState::Terminated => "DELETED",
        }
    }

    pub fn ec2(self) -> &'static str {
        match self {
            InstanceState::Building => "pending",
            InstanceState::Active => "running",
            InstanceState::Shutoff => "stopped",
            InstanceState::Terminated => "terminated",
        }
    }
}

/// A provisioned VM.
#[derive(Clone, Debug)]
pub struct Instance {
    pub id: InstanceId,
    pub name: String,
    pub owner: String,
    pub flavor: InstanceFlavor,
    pub image: ImageId,
    pub state: InstanceState,
    pub host: HostId,
    pub launched_at: SimTime,
    /// Set when the instance stops accruing core-hours.
    pub terminated_at: Option<SimTime>,
}

impl Instance {
    /// Whether this instance accrues core-hours at `now` (§6.4 polls
    /// "the number and types of virtual machine a user has provisioned").
    pub fn billable(&self) -> bool {
        matches!(self.state, InstanceState::Building | InstanceState::Active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flavor_set_is_monotone() {
        let flavors = InstanceFlavor::standard_set();
        assert_eq!(flavors.len(), 4);
        for w in flavors.windows(2) {
            assert!(w[0].vcpus < w[1].vcpus);
            assert!(w[0].ram_mb < w[1].ram_mb);
        }
    }

    #[test]
    fn state_vocabularies() {
        assert_eq!(InstanceState::Active.openstack(), "ACTIVE");
        assert_eq!(InstanceState::Active.ec2(), "running");
        assert_eq!(InstanceState::Terminated.openstack(), "DELETED");
        assert_eq!(InstanceState::Terminated.ec2(), "terminated");
    }

    #[test]
    fn ec2_id_format() {
        assert_eq!(InstanceId(0xAB).ec2(), "i-000000ab");
    }

    #[test]
    fn billability() {
        let mk = |state| Instance {
            id: InstanceId(1),
            name: "vm".into(),
            owner: "alice".into(),
            flavor: InstanceFlavor::standard_set()[0].clone(),
            image: ImageId(1),
            state,
            host: HostId(0),
            launched_at: SimTime::ZERO,
            terminated_at: None,
        };
        assert!(mk(InstanceState::Building).billable());
        assert!(mk(InstanceState::Active).billable());
        assert!(!mk(InstanceState::Shutoff).billable());
        assert!(!mk(InstanceState::Terminated).billable());
    }
}
