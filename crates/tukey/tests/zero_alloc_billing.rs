//! Counting-allocator proof that the billing hot paths are zero-alloc
//! at steady state. Per-tenant state lives in a `TenantStore` slab keyed
//! by interned ids, so after the tenant population is established:
//!
//! * `poll_compute` / `sweep_storage` by *name* do a no-alloc interner
//!   lookup plus two index operations (the former `BTreeMap<String, _>`
//!   cloned the key on every counted sample);
//! * `record_cores` / `record_stored` folds are pure arithmetic on the
//!   slab entry;
//! * a steady-state `close_month` reuses its retained scratch buffer
//!   (invoice `String`s for *non-empty* cycles still allocate, so the
//!   measured closes run over folded-to-zero cycles).

use counting_alloc::{count_allocations, CountingAlloc};
use osdc_sim::{SimDuration, SimTime};
use osdc_tukey::billing::{BillingService, Rates};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn at_min(m: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_mins(m)
}

#[test]
fn allocator_probe_is_live() {
    let (stats, v) = count_allocations(|| vec![0u8; 1 << 16]);
    assert!(stats.allocations >= 1);
    drop(v);
}

#[test]
fn poll_and_sweep_by_name_are_zero_alloc_after_first_touch() {
    let mut b = BillingService::new(Rates::default());
    let users: Vec<String> = (0..256).map(|u| format!("user{u}")).collect();
    // Warm-up: intern every user and establish slab capacity.
    for (m, user) in users.iter().enumerate() {
        b.poll_compute(user, 4, at_min(m as u64));
        b.sweep_storage(user, 1_000_000_000_000, at_min(m as u64));
    }
    let (stats, counted) = count_allocations(|| {
        let mut counted = 0usize;
        for m in 300..1300u64 {
            for user in &users {
                counted += usize::from(b.poll_compute(user, 4, at_min(m)));
            }
        }
        counted
    });
    assert_eq!(counted, 256 * 1000, "every poll counted");
    assert_eq!(
        stats.allocations, 0,
        "poll_compute allocated {} times ({} bytes) at steady state",
        stats.allocations, stats.bytes
    );
}

#[test]
fn delta_folds_by_id_are_zero_alloc() {
    let mut b = BillingService::new(Rates::default());
    let ids: Vec<_> = (0..256).map(|u| b.user_id(&format!("user{u}"))).collect();
    // Warm-up: create every slab entry.
    for &id in &ids {
        b.record_cores_id(id, 1, at_min(0));
        b.record_stored_id(id, 1_000_000_000_000, at_min(0));
    }
    let (stats, _) = count_allocations(|| {
        for round in 1..2000u64 {
            for (i, &id) in ids.iter().enumerate() {
                b.record_cores_id(id, (round as u32 + i as u32) % 8, at_min(round * 3));
            }
        }
    });
    assert_eq!(
        stats.allocations, 0,
        "record_cores_id allocated {} times ({} bytes) at steady state",
        stats.allocations, stats.bytes
    );
}

#[test]
fn empty_cycle_close_reuses_scratch() {
    let mut b = BillingService::new(Rates::default());
    for u in 0..64 {
        b.record_cores(&format!("user{u}"), 2, at_min(0));
        b.record_cores(&format!("user{u}"), 0, at_min(10));
    }
    // First close invoices everyone (allocates invoice strings) and
    // sizes the scratch buffer.
    let first = b.close_month_at(at_min(20));
    assert_eq!(first.len(), 64);
    // Later cycles are empty: no usage, no invoices — and no allocation
    // from the sweep-over-tenants fold or the (empty) batch.
    let (stats, batches) = count_allocations(|| {
        let mut n = 0;
        for k in 1..100u64 {
            n += b.close_month_at(at_min(20 + k)).len();
        }
        n
    });
    assert_eq!(batches, 0, "folded-to-zero cycles issue no invoices");
    assert_eq!(
        stats.allocations, 0,
        "empty close allocated {} times ({} bytes)",
        stats.allocations, stats.bytes
    );
}
