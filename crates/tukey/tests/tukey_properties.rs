//! Property tests on Tukey's user-facing invariants: ARK identifiers,
//! billing arithmetic, the secure channel, and sharing-permission
//! monotonicity.

use osdc_sim::{SimDuration, SimTime};
use osdc_tukey::ark::{ArkRecord, ArkService};
use osdc_tukey::billing::{BillingService, Rates};
use osdc_tukey::channel::channel_pair;
use osdc_tukey::sharing::{FileSharingService, Permission};
use proptest::prelude::*;

fn record() -> ArkRecord {
    ArkRecord {
        who: "OSDC".into(),
        what: "ds".into(),
        when: "2012".into(),
        where_: "/x".into(),
        commitment: "replicated".into(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every minted ARK parses back to itself, resolves, and any
    /// single-character corruption of the name is rejected (check char)
    /// or at worst resolves to nothing — never to the wrong record.
    #[test]
    fn ark_mint_parse_resolve(mint_count in 1usize..60, corrupt_pos_seed: u8) {
        let svc = ArkService::new("31807", "b2");
        let mut uris = Vec::new();
        for _ in 0..mint_count {
            let ark = svc.mint(record());
            let (parsed, _) = ArkService::parse(&ark.to_uri()).expect("own mint parses");
            prop_assert_eq!(parsed.to_uri(), ark.to_uri());
            prop_assert!(svc.resolve(&ark.to_uri()).is_ok());
            uris.push(ark.to_uri());
        }
        // Uniqueness.
        let mut sorted = uris.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), uris.len());
        // Corrupt one betanumeric character of the last URI's name.
        let uri = uris.last().expect("minted at least one").clone();
        let name_start = uri.rfind('/').expect("ark has name") + 1;
        let pos = name_start + (corrupt_pos_seed as usize % (uri.len() - name_start));
        let mut chars: Vec<char> = uri.chars().collect();
        let alphabet = "0123456789bcdfghjkmnpqrstvwxz";
        let original = chars[pos];
        let replacement = alphabet
            .chars()
            .find(|&c| c != original)
            .expect("alphabet has 29 symbols");
        chars[pos] = replacement;
        let corrupted: String = chars.into_iter().collect();
        match ArkService::parse(&corrupted) {
            Err(_) => {} // check character caught it
            Ok((ark, _)) => {
                // Parsed (corruption in the check char itself can yield a
                // *different* valid ARK) — it must not resolve to a record.
                prop_assert!(svc.resolve(&ark.to_uri()).is_err());
            }
        }
    }

    /// Billing: total equals rate × billable units, free tier saturates
    /// at zero, and the cycle resets exactly.
    #[test]
    fn billing_arithmetic(
        polls in proptest::collection::vec(0u32..64, 0..200),
        daily_tb in proptest::collection::vec(0u64..20, 0..40),
        free_hours in 0.0f64..50.0,
    ) {
        let rates = Rates {
            per_core_hour: 0.07,
            per_tb_day: 0.11,
            free_core_hours: free_hours,
            free_tb_days: 1.0,
        };
        let mut b = BillingService::new(rates);
        for (m, &c) in polls.iter().enumerate() {
            b.poll_compute("u", c, SimTime::ZERO + SimDuration::from_mins(m as u64));
        }
        for (d, &tb) in daily_tb.iter().enumerate() {
            b.sweep_storage(
                "u",
                tb * 1_000_000_000_000,
                SimTime::ZERO + SimDuration::from_days(d as u64),
            );
        }
        let core_minutes: f64 = polls.iter().map(|&c| c as f64).sum();
        let tb_days: f64 = daily_tb.iter().map(|&t| t as f64).sum();
        let invoices = b.close_month();
        if core_minutes == 0.0 && tb_days == 0.0 {
            prop_assert!(invoices.is_empty());
        } else {
            let inv = &invoices[0];
            prop_assert!((inv.core_hours - core_minutes / 60.0).abs() < 1e-9);
            prop_assert!((inv.tb_days - tb_days).abs() < 1e-9);
            let expected = (inv.core_hours - free_hours).max(0.0) * 0.07
                + (tb_days - 1.0).max(0.0) * 0.11;
            prop_assert!((inv.total_usd - expected).abs() < 1e-9);
            prop_assert!(inv.total_usd >= 0.0);
        }
        // Cycle reset: a fresh close yields nothing.
        prop_assert!(b.close_month().is_empty());
    }

    /// Billing dedup: re-delivering any minute's poll never changes the
    /// total, no matter where a `close_month` lands in the stream — the
    /// cursor survives the month boundary, so minutes are neither lost
    /// nor double-counted.
    #[test]
    fn billing_poll_dedup_is_idempotent_across_close(
        raw_minutes in proptest::collection::vec(0u64..240, 1..80),
        close_idx in 0usize..80,
    ) {
        let mut b = BillingService::new(Rates {
            per_core_hour: 1.0,
            per_tb_day: 0.0,
            free_core_hours: 0.0,
            free_tb_days: 0.0,
        });
        let mut minutes = raw_minutes.clone();
        minutes.sort_unstable();
        let mut billed = 0.0;
        for (i, &m) in minutes.iter().enumerate() {
            if i == close_idx {
                for inv in b.close_month() {
                    billed += inv.core_hours * 60.0;
                }
            }
            let t = SimTime::ZERO + SimDuration::from_mins(m);
            b.poll_compute("u", 2, t);
            b.poll_compute("u", 2, t); // duplicate delivery of the same sample
        }
        for inv in b.close_month() {
            billed += inv.core_hours * 60.0;
        }
        let mut uniq = minutes.clone();
        uniq.dedup();
        prop_assert!(
            (billed - 2.0 * uniq.len() as f64).abs() < 1e-6,
            "billed {} core-minutes for {} unique minutes", billed, uniq.len()
        );
    }

    /// Storage-sweep dedup: double sweeps within a day bill once, and a
    /// month close between them does not reopen the day.
    #[test]
    fn storage_sweep_dedup_across_close(
        raw_days in proptest::collection::vec(0u64..60, 1..40),
        close_idx in 0usize..40,
    ) {
        let mut b = BillingService::new(Rates {
            per_core_hour: 0.0,
            per_tb_day: 1.0,
            free_core_hours: 0.0,
            free_tb_days: 0.0,
        });
        let mut days = raw_days.clone();
        days.sort_unstable();
        let mut billed = 0.0;
        for (i, &d) in days.iter().enumerate() {
            if i == close_idx {
                for inv in b.close_month() {
                    billed += inv.tb_days;
                }
            }
            let t = SimTime::ZERO + SimDuration::from_days(d);
            b.sweep_storage("u", 1_000_000_000_000, t);
            b.sweep_storage("u", 1_000_000_000_000, t + SimDuration::from_hours(2));
        }
        for inv in b.close_month() {
            billed += inv.tb_days;
        }
        let mut uniq = days.clone();
        uniq.dedup();
        prop_assert!(
            (billed - uniq.len() as f64).abs() < 1e-6,
            "billed {} TB-days for {} unique days", billed, uniq.len()
        );
    }

    /// The secure channel round-trips arbitrary payloads in order and
    /// never accepts a bit-flipped message.
    #[test]
    fn channel_roundtrip_and_integrity(
        messages in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..300), 1..20),
        flip_byte: u8,
    ) {
        let (mut tx, mut rx) = channel_pair(b"prop-secret");
        for m in &messages {
            let sealed = tx.seal(m);
            let opened = rx.open(&sealed).expect("authentic in-order message");
            prop_assert_eq!(&opened, m);
        }
        // Tamper with the next message: flip one ciphertext byte (or the
        // seq for empty payloads); authentication must fail.
        let mut sealed = tx.seal(b"victim");
        let len = sealed.ciphertext.len();
        sealed.ciphertext[flip_byte as usize % len] ^= 0x01;
        prop_assert!(rx.open(&sealed).is_err());
    }

    /// Permission monotonicity: granting never removes access; access
    /// implies access to everything an ancestor grant covered.
    #[test]
    fn sharing_grants_are_monotone(depth in 1usize..6, grant_level in 0usize..6) {
        let mut s = FileSharingService::new();
        let mut chain = vec![s.create_collection("owner", "root", None).expect("create")];
        for i in 1..depth {
            let id = s
                .create_collection("owner", &format!("c{i}"), Some(chain[i - 1]))
                .expect("create");
            chain.push(id);
        }
        let leaf = *chain.last().expect("non-empty");
        let grant_at = chain[grant_level.min(depth - 1)];
        prop_assert!(!s.can_access("bob", leaf, Permission::Read));
        s.grant_user("owner", grant_at, "bob", Permission::Read).expect("grant");
        // Everything at or below the grant is readable.
        for (i, &node) in chain.iter().enumerate() {
            let expected = i >= grant_level.min(depth - 1);
            prop_assert_eq!(
                s.can_access("bob", node, Permission::Read),
                expected,
                "node {} grant at {}", i, grant_level
            );
        }
        // A second grant elsewhere never revokes.
        s.grant_user("owner", chain[0], "bob", Permission::Read).expect("grant");
        prop_assert!(s.can_access("bob", leaf, Permission::Read));
    }
}
