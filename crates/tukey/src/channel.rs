//! Encrypted inter-component channels (§5.1).
//!
//! "Since all components of the application communicate through sockets,
//! they can be moved to separate servers and use encrypted channels on
//! our private network." The console ↔ middleware ↔ proxy hops are
//! therefore modelled as an authenticated-encryption message channel:
//! Blowfish-CTR confidentiality plus an MD5-based MAC
//! (encrypt-then-MAC), with a monotone sequence number to stop replays.
//! Era-appropriate primitives from `osdc-crypto` — the *protocol shape*
//! is what is being reproduced, not modern AEAD.

use osdc_crypto::modes::CtrStream;
use osdc_crypto::Blowfish;

/// A sealed message on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedMessage {
    pub seq: u64,
    pub ciphertext: Vec<u8>,
    pub mac: [u8; 16],
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChannelError {
    /// MAC mismatch: tampered or wrong key.
    AuthenticationFailed,
    /// Sequence number not strictly increasing: replay or reordering.
    Replayed { got: u64, expected_above: u64 },
}

/// One direction of a component-to-component channel.
pub struct SecureChannel {
    cipher: Blowfish,
    mac_key: Vec<u8>,
    send_seq: u64,
    recv_seq: u64,
}

impl SecureChannel {
    /// Derive cipher and MAC keys from a shared secret (both ends build
    /// the same pair from the same secret).
    pub fn new(shared_secret: &[u8]) -> Self {
        let mut enc_key = shared_secret.to_vec();
        enc_key.push(0x01);
        let mut mac_key = shared_secret.to_vec();
        mac_key.push(0x02);
        SecureChannel {
            cipher: Blowfish::new(&osdc_crypto::md5::md5(&enc_key)),
            mac_key: osdc_crypto::md5::md5(&mac_key).to_vec(),
            send_seq: 0,
            recv_seq: 0,
        }
    }

    fn mac(&self, seq: u64, ciphertext: &[u8]) -> [u8; 16] {
        // HMAC-shaped MD5 MAC: H(key ‖ seq ‖ H(key ‖ data)).
        let mut inner = self.mac_key.clone();
        inner.extend_from_slice(ciphertext);
        let inner_digest = osdc_crypto::md5::md5(&inner);
        let mut outer = self.mac_key.clone();
        outer.extend_from_slice(&seq.to_be_bytes());
        outer.extend_from_slice(&inner_digest);
        osdc_crypto::md5::md5(&outer)
    }

    /// Seal a plaintext for the peer.
    pub fn seal(&mut self, plaintext: &[u8]) -> SealedMessage {
        self.send_seq += 1;
        let seq = self.send_seq;
        let mut ciphertext = plaintext.to_vec();
        CtrStream::new(&self.cipher, seq).apply(&mut ciphertext);
        let mac = self.mac(seq, &ciphertext);
        SealedMessage {
            seq,
            ciphertext,
            mac,
        }
    }

    /// Open a message from the peer, enforcing authenticity and ordering.
    pub fn open(&mut self, msg: &SealedMessage) -> Result<Vec<u8>, ChannelError> {
        if self.mac(msg.seq, &msg.ciphertext) != msg.mac {
            return Err(ChannelError::AuthenticationFailed);
        }
        if msg.seq <= self.recv_seq {
            return Err(ChannelError::Replayed {
                got: msg.seq,
                expected_above: self.recv_seq,
            });
        }
        self.recv_seq = msg.seq;
        let mut plaintext = msg.ciphertext.clone();
        CtrStream::new(&self.cipher, msg.seq).apply(&mut plaintext);
        Ok(plaintext)
    }
}

/// A console↔middleware socket pair sharing one secret.
pub fn channel_pair(shared_secret: &[u8]) -> (SecureChannel, SecureChannel) {
    (
        SecureChannel::new(shared_secret),
        SecureChannel::new(shared_secret),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let (mut console, mut middleware) = channel_pair(b"private-network-secret");
        let msg = console.seal(b"POST /servers {\"server\": {...}}");
        assert_ne!(
            msg.ciphertext,
            b"POST /servers {\"server\": {...}}".to_vec()
        );
        let opened = middleware.open(&msg).expect("authentic");
        assert_eq!(opened, b"POST /servers {\"server\": {...}}");
    }

    #[test]
    fn sequence_of_messages() {
        let (mut a, mut b) = channel_pair(b"s");
        for i in 0..20u32 {
            let body = format!("request {i}");
            let sealed = a.seal(body.as_bytes());
            assert_eq!(b.open(&sealed).expect("authentic"), body.as_bytes());
        }
    }

    #[test]
    fn tampering_detected() {
        let (mut a, mut b) = channel_pair(b"s");
        let mut msg = a.seal(b"terminate instance 7");
        msg.ciphertext[5] ^= 0x01;
        assert_eq!(
            b.open(&msg).unwrap_err(),
            ChannelError::AuthenticationFailed
        );
        // Tampering with the sequence number also breaks the MAC.
        let mut msg2 = a.seal(b"x");
        msg2.seq += 1;
        assert_eq!(
            b.open(&msg2).unwrap_err(),
            ChannelError::AuthenticationFailed
        );
    }

    #[test]
    fn replay_rejected() {
        let (mut a, mut b) = channel_pair(b"s");
        let msg1 = a.seal(b"bill user 100 core-hours");
        b.open(&msg1).expect("first delivery");
        assert!(matches!(
            b.open(&msg1).unwrap_err(),
            ChannelError::Replayed { .. }
        ));
    }

    #[test]
    fn wrong_secret_fails_auth() {
        let mut a = SecureChannel::new(b"secret-a");
        let mut b = SecureChannel::new(b"secret-b");
        let msg = a.seal(b"hello");
        assert_eq!(
            b.open(&msg).unwrap_err(),
            ChannelError::AuthenticationFailed
        );
    }

    #[test]
    fn identical_plaintexts_produce_distinct_wire_bytes() {
        let (mut a, _) = channel_pair(b"s");
        let m1 = a.seal(b"poll");
        let m2 = a.seal(b"poll");
        assert_ne!(
            m1.ciphertext, m2.ciphertext,
            "per-message nonce (seq) varies the stream"
        );
    }

    #[test]
    fn empty_message_roundtrips() {
        let (mut a, mut b) = channel_pair(b"s");
        let msg = a.seal(b"");
        assert_eq!(b.open(&msg).expect("authentic"), Vec::<u8>::new());
    }
}
