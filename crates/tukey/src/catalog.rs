//! The public-dataset catalog (§6.3, §4).
//!
//! "The OSDC currently hosts more than 600 TB of public datasets from a
//! number of disciplines... One of Tukey's modules allows a data curator
//! to manage the dataset and the associated metadata. This information is
//! then published online so users can browse and search the datasets."
//!
//! Records carry an ARK from the key service (§6.1) and a storage path on
//! the GlusterFS share, and are searchable by keyword and discipline.

use std::collections::BTreeMap;

use crate::ark::{Ark, ArkRecord, ArkService};

/// The disciplines of §4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Discipline {
    BiologicalSciences,
    EarthSciences,
    DigitalHumanities,
    SocialSciences,
    InformationSciences,
}

impl Discipline {
    pub fn label(self) -> &'static str {
        match self {
            Discipline::BiologicalSciences => "biological sciences",
            Discipline::EarthSciences => "earth sciences",
            Discipline::DigitalHumanities => "digital humanities",
            Discipline::SocialSciences => "social sciences",
            Discipline::InformationSciences => "information sciences",
        }
    }
}

/// One published dataset.
#[derive(Clone, Debug)]
pub struct DatasetRecord {
    pub ark: Ark,
    pub title: String,
    pub discipline: Discipline,
    pub size_bytes: u64,
    pub storage_path: String,
    pub description: String,
    /// Whether it is live on the public share (curators can stage first).
    pub published: bool,
}

/// Curator-facing catalog module.
pub struct DatasetCatalog {
    records: BTreeMap<Ark, DatasetRecord>,
}

impl Default for DatasetCatalog {
    fn default() -> Self {
        Self::new()
    }
}

impl DatasetCatalog {
    pub fn new() -> Self {
        DatasetCatalog {
            records: BTreeMap::new(),
        }
    }

    /// Curator adds a dataset: mints an ARK through the key service and
    /// stores the record (unpublished until released).
    pub fn add(
        &mut self,
        arks: &ArkService,
        title: &str,
        discipline: Discipline,
        size_bytes: u64,
        storage_path: &str,
        description: &str,
    ) -> Ark {
        let ark = arks.mint(ArkRecord {
            who: "Open Science Data Cloud".into(),
            what: title.into(),
            when: "2012".into(),
            where_: storage_path.into(),
            commitment: "replicated on OSDC-Root; reviewed annually".into(),
        });
        self.records.insert(
            ark.clone(),
            DatasetRecord {
                ark: ark.clone(),
                title: title.into(),
                discipline,
                size_bytes,
                storage_path: storage_path.into(),
                description: description.into(),
                published: false,
            },
        );
        ark
    }

    pub fn publish(&mut self, ark: &Ark) -> bool {
        match self.records.get_mut(ark) {
            Some(r) => {
                r.published = true;
                true
            }
            None => false,
        }
    }

    pub fn get(&self, ark: &Ark) -> Option<&DatasetRecord> {
        self.records.get(ark)
    }

    /// Public browse: published records only, sorted by title.
    pub fn browse(&self) -> Vec<&DatasetRecord> {
        let mut out: Vec<&DatasetRecord> = self.records.values().filter(|r| r.published).collect();
        out.sort_by(|a, b| a.title.cmp(&b.title));
        out
    }

    /// Case-insensitive keyword search over title + description
    /// (published records only).
    pub fn search(&self, query: &str) -> Vec<&DatasetRecord> {
        let q = query.to_lowercase();
        self.browse()
            .into_iter()
            .filter(|r| {
                r.title.to_lowercase().contains(&q) || r.description.to_lowercase().contains(&q)
            })
            .collect()
    }

    pub fn by_discipline(&self, discipline: Discipline) -> Vec<&DatasetRecord> {
        self.browse()
            .into_iter()
            .filter(|r| r.discipline == discipline)
            .collect()
    }

    /// Total published bytes — the "more than 600 TB" headline of §6.3.
    pub fn published_bytes(&self) -> u64 {
        self.records
            .values()
            .filter(|r| r.published)
            .map(|r| r.size_bytes)
            .sum()
    }

    /// Seed the catalog with the datasets the paper names (§4), sizes per
    /// the paper where stated, representative otherwise.
    pub fn osdc_public_datasets(arks: &ArkService) -> DatasetCatalog {
        const TB: u64 = 1_000_000_000_000;
        let mut cat = DatasetCatalog::new();
        let entries: [(&str, Discipline, u64, &str); 12] = [
            (
                "1000 Genomes",
                Discipline::BiologicalSciences,
                200 * TB,
                "Whole-genome sequence variation across human populations",
            ),
            (
                "NCBI public datasets",
                Discipline::BiologicalSciences,
                120 * TB,
                "Mirrors of NIH NCBI reference collections",
            ),
            (
                "Protein Data Bank",
                Discipline::BiologicalSciences,
                TB,
                "3D structures of proteins and nucleic acids",
            ),
            (
                "modENCODE",
                Discipline::BiologicalSciences,
                50 * TB,
                "Model-organism encyclopedia of DNA elements",
            ),
            (
                "ENCODE backup",
                Discipline::BiologicalSciences,
                60 * TB,
                "Backup with cloud-enabled computation for the ENCODE project",
            ),
            (
                "EO-1 ALI & Hyperion",
                Discipline::EarthSciences,
                30 * TB,
                "Three years of NASA EO-1 Level 0 and Level 1 satellite imagery",
            ),
            (
                "Sloan Digital Sky Survey",
                Discipline::EarthSciences,
                70 * TB,
                "Multi-spectral astronomical survey backup",
            ),
            (
                "Bookworm ngrams",
                Discipline::DigitalHumanities,
                20 * TB,
                "Ngrams from public-domain books with library metadata",
            ),
            (
                "U.S. Census & CPS",
                Discipline::SocialSciences,
                5 * TB,
                "U.S. Census, Current Population Survey, General Social Survey",
            ),
            (
                "ICPSR collections",
                Discipline::SocialSciences,
                10 * TB,
                "Inter-University Consortium for Political and Social Research",
            ),
            (
                "Common Crawl",
                Discipline::InformationSciences,
                60 * TB,
                "Open web-crawl corpus for big-data algorithm research",
            ),
            (
                "Enron + City of Chicago",
                Discipline::InformationSciences,
                2 * TB,
                "Enron corpus and City of Chicago open datasets",
            ),
        ];
        for (title, disc, size, desc) in entries {
            let path = format!(
                "/glusterfs/public/{}",
                title.to_lowercase().replace([' ', '&', '+'], "_")
            );
            let ark = cat.add(arks, title, disc, size, &path, desc);
            cat.publish(&ark);
        }
        cat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arks() -> ArkService {
        ArkService::new("31807", "b2")
    }

    #[test]
    fn add_publish_browse() {
        let svc = arks();
        let mut cat = DatasetCatalog::new();
        let ark = cat.add(
            &svc,
            "Test Data",
            Discipline::InformationSciences,
            100,
            "/p",
            "d",
        );
        assert!(cat.browse().is_empty(), "staged datasets are not public");
        assert!(cat.publish(&ark));
        assert_eq!(cat.browse().len(), 1);
        assert_eq!(cat.get(&ark).expect("exists").title, "Test Data");
    }

    #[test]
    fn ark_resolution_reaches_storage_path() {
        let svc = arks();
        let mut cat = DatasetCatalog::new();
        let ark = cat.add(&svc, "X", Discipline::EarthSciences, 1, "/glusterfs/x", "d");
        assert_eq!(
            svc.resolve(&ark.to_uri()).expect("resolves"),
            "/glusterfs/x"
        );
        let brief = svc.resolve(&format!("{ark}?")).expect("brief");
        assert!(brief.contains("what: X"));
    }

    #[test]
    fn search_is_case_insensitive_over_title_and_description() {
        let svc = arks();
        let cat = DatasetCatalog::osdc_public_datasets(&svc);
        assert_eq!(cat.search("genomes").len(), 1);
        assert!(!cat.search("SATELLITE").is_empty(), "description hit");
        assert!(cat.search("nonexistent-topic-xyz").is_empty());
    }

    #[test]
    fn discipline_filter() {
        let svc = arks();
        let cat = DatasetCatalog::osdc_public_datasets(&svc);
        let bio = cat.by_discipline(Discipline::BiologicalSciences);
        assert_eq!(bio.len(), 5);
        assert!(bio
            .iter()
            .all(|r| r.discipline == Discipline::BiologicalSciences));
    }

    #[test]
    fn paper_scale_headline_holds() {
        // §6.3: "more than 600 TB of public datasets".
        let svc = arks();
        let cat = DatasetCatalog::osdc_public_datasets(&svc);
        assert!(cat.published_bytes() > 600_000_000_000_000);
        // §4.1: "over 400 TB for the biological sciences community".
        let bio_bytes: u64 = cat
            .by_discipline(Discipline::BiologicalSciences)
            .iter()
            .map(|r| r.size_bytes)
            .sum();
        assert!(bio_bytes > 400_000_000_000_000);
    }

    #[test]
    fn publish_unknown_ark_is_false() {
        let svc = arks();
        let mut cat = DatasetCatalog::new();
        let foreign = svc.mint(crate::ark::ArkRecord {
            who: "x".into(),
            what: "x".into(),
            when: "2012".into(),
            where_: "/x".into(),
            commitment: "none".into(),
        });
        assert!(!cat.publish(&foreign));
    }

    #[test]
    fn browse_sorted_by_title() {
        let svc = arks();
        let cat = DatasetCatalog::osdc_public_datasets(&svc);
        let titles: Vec<&str> = cat.browse().iter().map(|r| r.title.as_str()).collect();
        let mut sorted = titles.clone();
        sorted.sort_unstable();
        assert_eq!(titles, sorted);
    }
}
