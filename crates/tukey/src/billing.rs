//! Billing and accounting (§6.4).
//!
//! "One of the lessons learned from early OSDC operations is that even
//! basic billing and accounting are effective \[at\] limiting bad behavior
//! and providing incentives to properly share resources. We currently
//! bill based on core hours and storage usage. For OSDC-Adler and
//! OSDC-Sullivan, we poll every minute to see the number and types of
//! virtual machine a user has provisioned and then use this information
//! to calculate the core hours. Storage is checked per user once a day.
//! Our billing cycle is monthly and users can check their current usage
//! via the OSDC web interface."
//!
//! [`BillingService`] implements exactly that cadence on the simulation
//! clock, two ways:
//!
//! * **Poll mode** (the paper's literal cadence): [`poll_compute`] each
//!   minute accumulates core-minutes, [`sweep_storage`] each day samples
//!   stored bytes. O(tenants) work per minute — fine at the paper's ~100
//!   users, sweep-bound at ROADMAP scale.
//! * **Increment mode** (same invoices, O(deltas) work):
//!   [`record_cores`] / [`record_stored`] fire only on instance
//!   start/stop/resize and PUT/DELETE deltas; each delta *folds* the
//!   previous rate over the virtual polls it covered, and
//!   [`close_month_at`] folds every open cursor up to the boundary
//!   before invoicing. Because a virtual poll at minute `m` samples the
//!   rate in force at instant `m·60 s`, a delta at time `t` changes
//!   exactly the polls with `m·60 ≥ t`; folding minutes
//!   `[cursor, ceil(t/60 s))` at the old rate reproduces the poll sums
//!   *byte-identically* (integer-valued core f64 sums below 2⁵³ are
//!   exact; TB-day adds are replayed per day so the float rounding
//!   sequence matches). The equivalence is pinned by a differential
//!   proptest against `osdc-audit`'s `BillingOracle` re-bill.
//!
//! Per-tenant state (cycle usage, poll-dedup cursors, fold cursors)
//! lives in an [`osdc_sim::TenantStore`] keyed by interned
//! [`TenantId`]s, so the steady-state hot path does no string hashing,
//! cloning, or allocation (a counting-allocator test enforces this).
//!
//! [`poll_compute`]: BillingService::poll_compute
//! [`sweep_storage`]: BillingService::sweep_storage
//! [`record_cores`]: BillingService::record_cores
//! [`record_stored`]: BillingService::record_stored
//! [`close_month_at`]: BillingService::close_month_at

use osdc_sim::time::SECS_PER_DAY;
use osdc_sim::{SimTime, TenantId, TenantInterner, TenantStore};
use osdc_telemetry::audit;

const NANOS_PER_MIN: u64 = 60_000_000_000;
const NANOS_PER_DAY: u64 = SECS_PER_DAY * 1_000_000_000;

/// Prices. The free-tier allowance implements §8 rule 1 ("provide some
/// services without charge to any interested researcher"); §8 rule 2 is
/// the cost-recovery rate charged beyond it.
#[derive(Clone, Copy, Debug)]
pub struct Rates {
    pub per_core_hour: f64,
    pub per_tb_day: f64,
    /// Core-hours per month each user gets free.
    pub free_core_hours: f64,
    /// TB-days per month each user gets free.
    pub free_tb_days: f64,
}

impl Default for Rates {
    fn default() -> Self {
        // Cost-recovery numbers in the AWS-comparable band of §9.1.
        Rates {
            per_core_hour: 0.05,
            per_tb_day: 0.08,
            free_core_hours: 100.0,
            free_tb_days: 3.0,
        }
    }
}

/// One user's accumulated usage within the open billing cycle.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CycleUsage {
    pub core_minutes: f64,
    pub tb_days: f64,
    /// Peak concurrently-held cores seen by any poll (for reports).
    pub peak_cores: u32,
}

/// A closed monthly statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Invoice {
    pub user: String,
    /// Month index since simulation start (0-based).
    pub month: u32,
    pub core_hours: f64,
    pub tb_days: f64,
    pub billable_core_hours: f64,
    pub billable_tb_days: f64,
    pub total_usd: f64,
}

/// Per-tenant billing state: open-cycle usage plus the cursors that make
/// both polling and incremental accrual idempotent.
///
/// The poll cursors (`next_pollable_min` / `next_sweepable_day`) and the
/// fold cursors (`cores_upto_min` / `stored_upto_day`) are deliberately
/// separate: poll mode dedups *observed* samples, increment mode tracks
/// how far *virtual* samples have been folded. A given tenant should be
/// driven through one mode per cycle; the cursors are independent so
/// neither mode can corrupt the other's bookkeeping.
#[derive(Clone, Debug, Default)]
struct TenantBilling {
    usage: CycleUsage,
    /// First minute index a [`BillingService::poll_compute`] sample may
    /// still be counted for. Survives [`BillingService::close_month`]:
    /// the cycle resets, but a poll replayed at the month boundary must
    /// still count only once.
    next_pollable_min: u64,
    /// First day index a storage sweep may still be counted for; same
    /// lifetime as `next_pollable_min`.
    next_sweepable_day: u64,
    /// Cores held since the last delta (increment mode).
    held_cores: u32,
    /// Virtual compute polls below this minute index are already folded
    /// into `usage`.
    cores_upto_min: u64,
    /// Bytes stored since the last delta (increment mode).
    stored_bytes: u64,
    /// Virtual storage sweeps below this day index are already folded.
    stored_upto_day: u64,
}

impl TenantBilling {
    /// Fold virtual compute polls `[cores_upto_min, bound_min)` at the
    /// currently-held rate. Exact: each virtual poll adds the integer
    /// `held_cores`, and integer-valued f64 sums below 2⁵³ are
    /// associative, so the bulk product equals the per-minute adds bit
    /// for bit.
    fn fold_compute_to(&mut self, bound_min: u64) {
        if bound_min <= self.cores_upto_min {
            return;
        }
        let minutes = bound_min - self.cores_upto_min;
        self.cores_upto_min = bound_min;
        if self.held_cores > 0 {
            self.usage.core_minutes += self.held_cores as f64 * minutes as f64;
            self.usage.peak_cores = self.usage.peak_cores.max(self.held_cores);
        }
    }

    /// Fold virtual storage sweeps `[stored_upto_day, bound_day)` at the
    /// currently-stored size. `bytes / 1e12` is generally *not* integer-
    /// valued, so the adds are replayed one day at a time — same float
    /// rounding sequence as the daily sweep, hence byte-identical.
    fn fold_storage_to(&mut self, bound_day: u64) {
        if bound_day <= self.stored_upto_day {
            return;
        }
        let days = bound_day - self.stored_upto_day;
        self.stored_upto_day = bound_day;
        if self.stored_bytes > 0 {
            let tb = self.stored_bytes as f64 / 1e12;
            for _ in 0..days {
                self.usage.tb_days += tb;
            }
        }
    }
}

/// First minute index whose poll instant (`m · 60 s`) is at or after
/// `t` — the fold bound for a delta landing at `t`, and the exclusive
/// close bound (a poll exactly at the close instant belongs to the next
/// month, mirroring close-then-poll event ordering).
fn minute_bound(t: SimTime) -> u64 {
    t.as_nanos().div_ceil(NANOS_PER_MIN)
}

/// Day-granular analogue of [`minute_bound`].
fn day_bound(t: SimTime) -> u64 {
    t.as_nanos().div_ceil(NANOS_PER_DAY)
}

/// The accounting engine.
pub struct BillingService {
    rates: Rates,
    users: TenantInterner,
    tenants: TenantStore<TenantBilling>,
    invoices: Vec<Invoice>,
    month: u32,
    /// Scratch for sorting invoices at close; retained across closes.
    close_scratch: Vec<(TenantId, CycleUsage)>,
}

impl BillingService {
    pub fn new(rates: Rates) -> Self {
        BillingService {
            rates,
            users: TenantInterner::new(),
            tenants: TenantStore::new(),
            invoices: Vec::new(),
            month: 0,
            close_scratch: Vec::new(),
        }
    }

    /// Intern `user`, returning the dense id the `_id` entry points key
    /// by. Allocates only on a user's first appearance.
    pub fn user_id(&mut self, user: &str) -> TenantId {
        self.users.intern(user)
    }

    /// The interned id for `user`, if ever seen. Never allocates.
    pub fn lookup_user(&self, user: &str) -> Option<TenantId> {
        self.users.get(user)
    }

    /// Per-minute compute poll: `cores` currently held by `user` at `now`.
    ///
    /// Idempotent per user-minute: a second poll landing in the same
    /// simulated minute (a retried cron tick, an overlapping poller) is
    /// ignored rather than double-billed. Returns whether the sample was
    /// counted.
    pub fn poll_compute(&mut self, user: &str, cores: u32, now: SimTime) -> bool {
        if cores == 0 {
            return false;
        }
        let id = self.users.intern(user);
        self.poll_compute_id(id, cores, now)
    }

    /// [`poll_compute`](Self::poll_compute) by interned id — the
    /// zero-alloc hot path for pollers that cache [`TenantId`]s.
    pub fn poll_compute_id(&mut self, id: TenantId, cores: u32, now: SimTime) -> bool {
        if cores == 0 {
            return false;
        }
        let minute = now.as_nanos() / NANOS_PER_MIN;
        let t = self.tenants.get_or_insert_with(id, TenantBilling::default);
        if minute < t.next_pollable_min {
            return false;
        }
        t.next_pollable_min = minute + 1;
        t.usage.core_minutes += cores as f64;
        t.usage.peak_cores = t.usage.peak_cores.max(cores);
        true
    }

    /// Daily storage sweep: `bytes` stored by `user` on the day containing
    /// `now`.
    ///
    /// Idempotent per user-day: running the sweep twice in one simulated
    /// day charges one TB-day, not two. Returns whether the sample was
    /// counted.
    pub fn sweep_storage(&mut self, user: &str, bytes: u64, now: SimTime) -> bool {
        if bytes == 0 {
            return false;
        }
        let id = self.users.intern(user);
        self.sweep_storage_id(id, bytes, now)
    }

    /// [`sweep_storage`](Self::sweep_storage) by interned id.
    pub fn sweep_storage_id(&mut self, id: TenantId, bytes: u64, now: SimTime) -> bool {
        if bytes == 0 {
            return false;
        }
        let day = now.as_nanos() / NANOS_PER_DAY;
        let t = self.tenants.get_or_insert_with(id, TenantBilling::default);
        if day < t.next_sweepable_day {
            return false;
        }
        t.next_sweepable_day = day + 1;
        t.usage.tb_days += bytes as f64 / 1e12;
        true
    }

    /// Increment mode: `user` now holds `cores` cores, effective `at`
    /// (an instance start, stop, or resize). Folds the previous rate
    /// over the virtual polls it covered — O(1) per delta instead of
    /// O(1) per tenant-minute.
    pub fn record_cores(&mut self, user: &str, cores: u32, at: SimTime) {
        let id = self.users.intern(user);
        self.record_cores_id(id, cores, at);
    }

    /// [`record_cores`](Self::record_cores) by interned id.
    pub fn record_cores_id(&mut self, id: TenantId, cores: u32, at: SimTime) {
        let bound = minute_bound(at);
        let t = self.tenants.get_or_insert_with(id, TenantBilling::default);
        t.fold_compute_to(bound);
        t.held_cores = cores;
    }

    /// Increment mode: `user` now stores `bytes`, effective `at` (an
    /// object PUT or DELETE settling).
    pub fn record_stored(&mut self, user: &str, bytes: u64, at: SimTime) {
        let id = self.users.intern(user);
        self.record_stored_id(id, bytes, at);
    }

    /// [`record_stored`](Self::record_stored) by interned id.
    pub fn record_stored_id(&mut self, id: TenantId, bytes: u64, at: SimTime) {
        let bound = day_bound(at);
        let t = self.tenants.get_or_insert_with(id, TenantBilling::default);
        t.fold_storage_to(bound);
        t.stored_bytes = bytes;
    }

    /// Current-cycle usage, as shown on the console's usage page.
    pub fn current_usage(&self, user: &str) -> CycleUsage {
        self.users
            .get(user)
            .and_then(|id| self.tenants.get(id))
            .map(|t| t.usage.clone())
            .unwrap_or_default()
    }

    /// Close the month: issue invoices for every user with usage and
    /// reset the cycle. Poll-mode close — does *not* fold increment-mode
    /// cursors; increment-mode drivers use
    /// [`close_month_at`](Self::close_month_at).
    pub fn close_month(&mut self) -> Vec<Invoice> {
        let month = self.month;
        self.month += 1;
        let rates = self.rates;
        // Collect in id order (deterministic), invoice in user-name
        // order (the former BTreeMap iteration order, pinned by tests
        // and trace hashes).
        let mut scratch = std::mem::take(&mut self.close_scratch);
        scratch.clear();
        self.tenants.for_each_mut(|id, t| {
            if t.usage != CycleUsage::default() {
                scratch.push((id, std::mem::take(&mut t.usage)));
            }
        });
        scratch.sort_by(|(a, _), (b, _)| self.users.name(*a).cmp(self.users.name(*b)));
        let mut closed: Vec<Invoice> = Vec::with_capacity(scratch.len());
        for (id, usage) in scratch.drain(..) {
            let user = self.users.name(id);
            let core_hours = usage.core_minutes / 60.0;
            let billable_core_hours = (core_hours - rates.free_core_hours).max(0.0);
            let billable_tb_days = (usage.tb_days - rates.free_tb_days).max(0.0);
            let total_usd =
                billable_core_hours * rates.per_core_hour + billable_tb_days * rates.per_tb_day;
            audit::check!(
                billable_core_hours >= 0.0 && billable_tb_days >= 0.0 && total_usd >= 0.0,
                "tukey.invoice_nonnegative",
                "negative invoice line for {user} month {month}: \
                 {billable_core_hours} core-hours, {billable_tb_days} TB-days, \
                 ${total_usd}"
            );
            audit::check!(
                billable_core_hours <= core_hours && billable_tb_days <= usage.tb_days,
                "tukey.billable_le_metered",
                "billable exceeds metered usage for {user} month {month}"
            );
            closed.push(Invoice {
                user: user.to_string(),
                month,
                core_hours,
                tb_days: usage.tb_days,
                billable_core_hours,
                billable_tb_days,
                total_usd,
            });
        }
        self.close_scratch = scratch;
        self.invoices.extend(closed.iter().cloned());
        closed
    }

    /// Increment-mode close: fold every tenant's cursors up to `at`
    /// (virtual polls strictly before the boundary — a poll landing
    /// exactly at the close instant bills into the next month, matching
    /// close-before-poll event ordering), then invoice and reset as
    /// [`close_month`](Self::close_month). Held rates and fold cursors
    /// survive, so accrual continues seamlessly into the new cycle.
    pub fn close_month_at(&mut self, at: SimTime) -> Vec<Invoice> {
        let min_bound = minute_bound(at);
        let day_b = day_bound(at);
        self.tenants.for_each_mut(|_, t| {
            t.fold_compute_to(min_bound);
            t.fold_storage_to(day_b);
        });
        self.close_month()
    }

    pub fn invoice_history(&self, user: &str) -> Vec<&Invoice> {
        self.invoices.iter().filter(|i| i.user == user).collect()
    }

    /// Is `now` on a minute boundary / day boundary? Helpers for pollers
    /// driven off the DES clock.
    pub fn is_minute_boundary(now: SimTime) -> bool {
        now.as_nanos().is_multiple_of(60_000_000_000)
    }

    pub fn is_day_boundary(now: SimTime) -> bool {
        now.as_nanos().is_multiple_of(SECS_PER_DAY * 1_000_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osdc_sim::SimDuration;

    fn at_min(m: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_mins(m)
    }

    fn at_day(d: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_days(d)
    }

    #[test]
    fn core_minutes_accumulate_to_hours() {
        let mut b = BillingService::new(Rates::default());
        // 8 cores held for 120 minutes.
        for m in 0..120 {
            b.poll_compute("alice", 8, at_min(m));
        }
        let usage = b.current_usage("alice");
        assert_eq!(usage.core_minutes, 960.0);
        assert_eq!(usage.peak_cores, 8);
        let invoices = b.close_month();
        assert_eq!(invoices.len(), 1);
        assert!((invoices[0].core_hours - 16.0).abs() < 1e-9);
    }

    #[test]
    fn free_tier_zeroes_small_users() {
        let rates = Rates::default();
        let mut b = BillingService::new(rates);
        // 50 core-hours: inside the 100 free hours.
        for m in 0..(50 * 60) {
            b.poll_compute("smalluser", 1, at_min(m));
        }
        let inv = b.close_month().pop().expect("one invoice");
        assert_eq!(inv.billable_core_hours, 0.0);
        assert_eq!(inv.total_usd, 0.0);
    }

    #[test]
    fn cost_recovery_beyond_free_tier() {
        let mut b = BillingService::new(Rates {
            per_core_hour: 0.10,
            per_tb_day: 0.0,
            free_core_hours: 10.0,
            free_tb_days: 0.0,
        });
        for m in 0..(20 * 60) {
            b.poll_compute("big", 1, at_min(m)); // 20 core-hours
        }
        let inv = b.close_month().pop().expect("one invoice");
        assert!((inv.billable_core_hours - 10.0).abs() < 1e-9);
        assert!((inv.total_usd - 1.0).abs() < 1e-9);
    }

    #[test]
    fn storage_swept_daily() {
        let mut b = BillingService::new(Rates {
            per_core_hour: 0.0,
            per_tb_day: 0.10,
            free_core_hours: 0.0,
            free_tb_days: 0.0,
        });
        for d in 0..30 {
            b.sweep_storage("hoarder", 2_000_000_000_000, at_day(d)); // 2 TB/day
        }
        let inv = b.close_month().pop().expect("one invoice");
        assert!((inv.tb_days - 60.0).abs() < 1e-9);
        assert!((inv.total_usd - 6.0).abs() < 1e-9);
    }

    #[test]
    fn idle_users_get_no_invoice() {
        let mut b = BillingService::new(Rates::default());
        assert!(!b.poll_compute("ghost", 0, at_min(0)));
        assert!(!b.sweep_storage("ghost", 0, at_day(0)));
        assert!(b.close_month().is_empty());
    }

    #[test]
    fn cycle_resets_each_month() {
        let mut b = BillingService::new(Rates::default());
        b.poll_compute("alice", 4, at_min(0));
        let first = b.close_month();
        assert_eq!(first[0].month, 0);
        assert_eq!(b.current_usage("alice"), CycleUsage::default());
        b.poll_compute("alice", 4, at_min(1));
        let second = b.close_month();
        assert_eq!(second[0].month, 1);
        assert_eq!(b.invoice_history("alice").len(), 2);
    }

    #[test]
    fn invoices_sorted_by_user() {
        let mut b = BillingService::new(Rates::default());
        b.poll_compute("zed", 1, at_min(0));
        b.poll_compute("amy", 1, at_min(0));
        let users: Vec<String> = b.close_month().into_iter().map(|i| i.user).collect();
        assert_eq!(users, vec!["amy".to_string(), "zed".to_string()]);
    }

    #[test]
    fn duplicate_poll_in_one_minute_counts_once() {
        let mut b = BillingService::new(Rates::default());
        assert!(b.poll_compute("alice", 8, at_min(5)));
        // A retried cron tick 30 s later lands in the same minute.
        assert!(!b.poll_compute("alice", 8, at_min(5) + SimDuration::from_secs(30)));
        assert_eq!(b.current_usage("alice").core_minutes, 8.0);
        // The next minute counts again.
        assert!(b.poll_compute("alice", 8, at_min(6)));
        assert_eq!(b.current_usage("alice").core_minutes, 16.0);
    }

    #[test]
    fn double_storage_sweep_in_one_day_bills_once() {
        let mut b = BillingService::new(Rates {
            per_core_hour: 0.0,
            per_tb_day: 0.10,
            free_core_hours: 0.0,
            free_tb_days: 0.0,
        });
        assert!(b.sweep_storage("hoarder", 1_000_000_000_000, at_day(3)));
        // Operator re-runs the sweep later the same sim-day.
        assert!(!b.sweep_storage(
            "hoarder",
            1_000_000_000_000,
            at_day(3) + SimDuration::from_hours(6)
        ));
        let inv = b.close_month().pop().expect("one invoice");
        assert!((inv.tb_days - 1.0).abs() < 1e-9, "tb_days {}", inv.tb_days);
        // Next day bills normally.
        assert!(b.sweep_storage("hoarder", 1_000_000_000_000, at_day(4)));
    }

    #[test]
    fn poll_replayed_across_close_month_counts_once() {
        let mut b = BillingService::new(Rates::default());
        b.poll_compute("alice", 4, at_min(100));
        let first = b.close_month().pop().expect("invoice");
        assert_eq!(first.core_hours * 60.0, 4.0);
        // The same minute's sample arrives again after the close (an
        // overlapping poller seeing the boundary). It must not re-bill
        // into the new cycle.
        assert!(!b.poll_compute("alice", 4, at_min(100)));
        assert_eq!(b.current_usage("alice"), CycleUsage::default());
        // Genuinely new minutes do bill into the new cycle.
        assert!(b.poll_compute("alice", 4, at_min(101)));
        let second = b.close_month().pop().expect("invoice");
        assert!((second.core_hours * 60.0 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn month_boundary_neither_loses_nor_doubles_minutes() {
        // Poll every minute across a 30-day month boundary; every minute
        // lands in exactly one invoice.
        let mut b = BillingService::new(Rates::default());
        let boundary = 30 * 24 * 60; // minutes in the first month
        for m in 0..boundary {
            b.poll_compute("alice", 1, at_min(m));
        }
        let first = b.close_month().pop().expect("invoice");
        for m in boundary..(boundary + 120) {
            b.poll_compute("alice", 1, at_min(m));
        }
        let second = b.close_month().pop().expect("invoice");
        let total_minutes = (first.core_hours + second.core_hours) * 60.0;
        assert!(
            (total_minutes - (boundary + 120) as f64).abs() < 1e-6,
            "lost or doubled minutes: {total_minutes}"
        );
        assert!((second.core_hours * 60.0 - 120.0).abs() < 1e-6);
    }

    #[test]
    fn boundary_helpers() {
        use osdc_sim::SimDuration;
        assert!(BillingService::is_minute_boundary(SimTime::ZERO));
        assert!(BillingService::is_minute_boundary(
            SimTime::ZERO + SimDuration::from_mins(5)
        ));
        assert!(!BillingService::is_minute_boundary(
            SimTime::ZERO + SimDuration::from_secs(61)
        ));
        assert!(BillingService::is_day_boundary(
            SimTime::ZERO + SimDuration::from_days(3)
        ));
        assert!(!BillingService::is_day_boundary(
            SimTime::ZERO + SimDuration::from_hours(25)
        ));
    }

    // ------------------------------------------------------------------
    // Increment mode.

    #[test]
    fn deltas_match_polling_exactly() {
        // 8 cores held minutes [0, 120), then resized to 2 for [120, 200).
        let mut polled = BillingService::new(Rates::default());
        for m in 0..200 {
            let cores = if m < 120 { 8 } else { 2 };
            polled.poll_compute("alice", cores, at_min(m));
        }
        let mut inc = BillingService::new(Rates::default());
        inc.record_cores("alice", 8, at_min(0));
        inc.record_cores("alice", 2, at_min(120));
        let a = polled.close_month();
        let b = inc.close_month_at(at_min(200));
        assert_eq!(a, b, "incremental invoices must be byte-identical");
    }

    #[test]
    fn mid_minute_delta_bills_next_boundary_at_new_rate() {
        // A resize 30 s into minute 5: polls at minutes 5.. see the old
        // rate through minute 5's instant? No — the poll at minute 5
        // (t = 300 s) happened *before* the 330 s delta, so minutes
        // [0, 6) bill at 8 cores and minutes [6, 10) at 2.
        let mut b = BillingService::new(Rates::default());
        b.record_cores("alice", 8, at_min(0));
        b.record_cores("alice", 2, at_min(5) + SimDuration::from_secs(30));
        let inv = b.close_month_at(at_min(10)).pop().expect("invoice");
        assert_eq!(inv.core_hours * 60.0, (6 * 8 + 4 * 2) as f64);
    }

    #[test]
    fn delta_exactly_on_poll_instant_takes_effect_that_poll() {
        // Delta at t = minute 5 exactly: the virtual poll at minute 5
        // samples the new rate (deltas order before polls at equal
        // timestamps).
        let mut b = BillingService::new(Rates::default());
        b.record_cores("alice", 8, at_min(0));
        b.record_cores("alice", 2, at_min(5));
        let inv = b.close_month_at(at_min(10)).pop().expect("invoice");
        assert_eq!(inv.core_hours * 60.0, (5 * 8 + 5 * 2) as f64);
    }

    #[test]
    fn stop_to_zero_stops_accrual() {
        let mut b = BillingService::new(Rates::default());
        b.record_cores("alice", 4, at_min(10));
        b.record_cores("alice", 0, at_min(20));
        let inv = b.close_month_at(at_min(100)).pop().expect("invoice");
        assert_eq!(inv.core_hours * 60.0, 40.0);
        assert_eq!(b.current_usage("alice"), CycleUsage::default());
        // Still zero cores: a later close issues nothing.
        assert!(b.close_month_at(at_min(200)).is_empty());
    }

    #[test]
    fn close_folds_open_rate_and_accrual_continues() {
        let mut b = BillingService::new(Rates::default());
        b.record_cores("alice", 1, at_min(0));
        let first = b.close_month_at(at_min(60)).pop().expect("invoice");
        // Minutes [0, 60) — the poll exactly at the close instant
        // belongs to the next month.
        assert_eq!(first.core_hours * 60.0, 60.0);
        // No further deltas: the held rate keeps accruing.
        let second = b.close_month_at(at_min(90)).pop().expect("invoice");
        assert_eq!(second.core_hours * 60.0, 30.0);
        assert_eq!(second.month, 1);
    }

    #[test]
    fn stored_deltas_match_daily_sweeps_exactly() {
        let rates = Rates {
            per_core_hour: 0.0,
            per_tb_day: 0.10,
            free_core_hours: 0.0,
            free_tb_days: 0.0,
        };
        // 1.7 TB for days [0, 10), then 0.3 TB for days [10, 30) —
        // non-integer TB values exercise the per-day rounding replay.
        let mut swept = BillingService::new(rates);
        for d in 0..30 {
            let bytes = if d < 10 {
                1_700_000_000_001
            } else {
                300_000_000_007
            };
            swept.sweep_storage("hoarder", bytes, at_day(d));
        }
        let mut inc = BillingService::new(rates);
        inc.record_stored("hoarder", 1_700_000_000_001, at_day(0));
        inc.record_stored("hoarder", 300_000_000_007, at_day(10));
        let a = swept.close_month();
        let b = inc.close_month_at(at_day(30));
        assert_eq!(a, b, "per-day fold must replay sweep rounding exactly");
    }

    #[test]
    fn interned_id_paths_match_string_paths() {
        let mut by_name = BillingService::new(Rates::default());
        let mut by_id = BillingService::new(Rates::default());
        let id = by_id.user_id("alice");
        for m in 0..50 {
            assert_eq!(
                by_name.poll_compute("alice", 3, at_min(m)),
                by_id.poll_compute_id(id, 3, at_min(m))
            );
        }
        by_name.sweep_storage("alice", 5_000_000_000_000, at_day(0));
        by_id.sweep_storage_id(id, 5_000_000_000_000, at_day(0));
        assert_eq!(by_name.close_month(), by_id.close_month());
        assert_eq!(by_id.lookup_user("alice"), Some(id));
        assert_eq!(by_id.lookup_user("nobody"), None);
    }
}
