//! Billing and accounting (§6.4).
//!
//! "One of the lessons learned from early OSDC operations is that even
//! basic billing and accounting are effective \[at\] limiting bad behavior
//! and providing incentives to properly share resources. We currently
//! bill based on core hours and storage usage. For OSDC-Adler and
//! OSDC-Sullivan, we poll every minute to see the number and types of
//! virtual machine a user has provisioned and then use this information
//! to calculate the core hours. Storage is checked per user once a day.
//! Our billing cycle is monthly and users can check their current usage
//! via the OSDC web interface."
//!
//! [`BillingService`] implements exactly that cadence on the simulation
//! clock: [`BillingService::poll_compute`] each minute accumulates
//! core-minutes; [`BillingService::sweep_storage`] each day samples
//! stored bytes; [`BillingService::close_month`] issues [`Invoice`]s.

use std::collections::BTreeMap;

use osdc_sim::time::SECS_PER_DAY;
use osdc_sim::SimTime;

/// Prices. The free-tier allowance implements §8 rule 1 ("provide some
/// services without charge to any interested researcher"); §8 rule 2 is
/// the cost-recovery rate charged beyond it.
#[derive(Clone, Copy, Debug)]
pub struct Rates {
    pub per_core_hour: f64,
    pub per_tb_day: f64,
    /// Core-hours per month each user gets free.
    pub free_core_hours: f64,
    /// TB-days per month each user gets free.
    pub free_tb_days: f64,
}

impl Default for Rates {
    fn default() -> Self {
        // Cost-recovery numbers in the AWS-comparable band of §9.1.
        Rates {
            per_core_hour: 0.05,
            per_tb_day: 0.08,
            free_core_hours: 100.0,
            free_tb_days: 3.0,
        }
    }
}

/// One user's accumulated usage within the open billing cycle.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CycleUsage {
    pub core_minutes: f64,
    pub tb_days: f64,
    /// Peak concurrently-held cores seen by any poll (for reports).
    pub peak_cores: u32,
}

/// A closed monthly statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Invoice {
    pub user: String,
    /// Month index since simulation start (0-based).
    pub month: u32,
    pub core_hours: f64,
    pub tb_days: f64,
    pub billable_core_hours: f64,
    pub billable_tb_days: f64,
    pub total_usd: f64,
}

/// The accounting engine.
pub struct BillingService {
    rates: Rates,
    open: BTreeMap<String, CycleUsage>,
    invoices: Vec<Invoice>,
    month: u32,
}

impl BillingService {
    pub fn new(rates: Rates) -> Self {
        BillingService {
            rates,
            open: BTreeMap::new(),
            invoices: Vec::new(),
            month: 0,
        }
    }

    /// Per-minute compute poll: `cores` currently held by `user`.
    pub fn poll_compute(&mut self, user: &str, cores: u32) {
        if cores == 0 {
            return;
        }
        let usage = self.open.entry(user.to_string()).or_default();
        usage.core_minutes += cores as f64;
        usage.peak_cores = usage.peak_cores.max(cores);
    }

    /// Daily storage sweep: `bytes` stored by `user` today.
    pub fn sweep_storage(&mut self, user: &str, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let tb = bytes as f64 / 1e12;
        self.open.entry(user.to_string()).or_default().tb_days += tb;
    }

    /// Current-cycle usage, as shown on the console's usage page.
    pub fn current_usage(&self, user: &str) -> CycleUsage {
        self.open.get(user).cloned().unwrap_or_default()
    }

    /// Close the month: issue invoices for every user with usage and
    /// reset the cycle.
    pub fn close_month(&mut self) -> Vec<Invoice> {
        let month = self.month;
        self.month += 1;
        let mut closed: Vec<Invoice> = std::mem::take(&mut self.open)
            .into_iter()
            .map(|(user, usage)| {
                let core_hours = usage.core_minutes / 60.0;
                let billable_core_hours = (core_hours - self.rates.free_core_hours).max(0.0);
                let billable_tb_days = (usage.tb_days - self.rates.free_tb_days).max(0.0);
                let total_usd = billable_core_hours * self.rates.per_core_hour
                    + billable_tb_days * self.rates.per_tb_day;
                Invoice {
                    user,
                    month,
                    core_hours,
                    tb_days: usage.tb_days,
                    billable_core_hours,
                    billable_tb_days,
                    total_usd,
                }
            })
            .collect();
        closed.sort_by(|a, b| a.user.cmp(&b.user));
        self.invoices.extend(closed.clone());
        closed
    }

    pub fn invoice_history(&self, user: &str) -> Vec<&Invoice> {
        self.invoices.iter().filter(|i| i.user == user).collect()
    }

    /// Is `now` on a minute boundary / day boundary? Helpers for pollers
    /// driven off the DES clock.
    pub fn is_minute_boundary(now: SimTime) -> bool {
        now.as_nanos().is_multiple_of(60_000_000_000)
    }

    pub fn is_day_boundary(now: SimTime) -> bool {
        now.as_nanos().is_multiple_of(SECS_PER_DAY * 1_000_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_minutes_accumulate_to_hours() {
        let mut b = BillingService::new(Rates::default());
        // 8 cores held for 120 minutes.
        for _ in 0..120 {
            b.poll_compute("alice", 8);
        }
        let usage = b.current_usage("alice");
        assert_eq!(usage.core_minutes, 960.0);
        assert_eq!(usage.peak_cores, 8);
        let invoices = b.close_month();
        assert_eq!(invoices.len(), 1);
        assert!((invoices[0].core_hours - 16.0).abs() < 1e-9);
    }

    #[test]
    fn free_tier_zeroes_small_users() {
        let rates = Rates::default();
        let mut b = BillingService::new(rates);
        // 50 core-hours: inside the 100 free hours.
        for _ in 0..(50 * 60) {
            b.poll_compute("smalluser", 1);
        }
        let inv = b.close_month().pop().expect("one invoice");
        assert_eq!(inv.billable_core_hours, 0.0);
        assert_eq!(inv.total_usd, 0.0);
    }

    #[test]
    fn cost_recovery_beyond_free_tier() {
        let mut b = BillingService::new(Rates {
            per_core_hour: 0.10,
            per_tb_day: 0.0,
            free_core_hours: 10.0,
            free_tb_days: 0.0,
        });
        for _ in 0..(20 * 60) {
            b.poll_compute("big", 1); // 20 core-hours
        }
        let inv = b.close_month().pop().expect("one invoice");
        assert!((inv.billable_core_hours - 10.0).abs() < 1e-9);
        assert!((inv.total_usd - 1.0).abs() < 1e-9);
    }

    #[test]
    fn storage_swept_daily() {
        let mut b = BillingService::new(Rates {
            per_core_hour: 0.0,
            per_tb_day: 0.10,
            free_core_hours: 0.0,
            free_tb_days: 0.0,
        });
        for _ in 0..30 {
            b.sweep_storage("hoarder", 2_000_000_000_000); // 2 TB/day
        }
        let inv = b.close_month().pop().expect("one invoice");
        assert!((inv.tb_days - 60.0).abs() < 1e-9);
        assert!((inv.total_usd - 6.0).abs() < 1e-9);
    }

    #[test]
    fn idle_users_get_no_invoice() {
        let mut b = BillingService::new(Rates::default());
        b.poll_compute("ghost", 0);
        b.sweep_storage("ghost", 0);
        assert!(b.close_month().is_empty());
    }

    #[test]
    fn cycle_resets_each_month() {
        let mut b = BillingService::new(Rates::default());
        b.poll_compute("alice", 4);
        let first = b.close_month();
        assert_eq!(first[0].month, 0);
        assert_eq!(b.current_usage("alice"), CycleUsage::default());
        b.poll_compute("alice", 4);
        let second = b.close_month();
        assert_eq!(second[0].month, 1);
        assert_eq!(b.invoice_history("alice").len(), 2);
    }

    #[test]
    fn invoices_sorted_by_user() {
        let mut b = BillingService::new(Rates::default());
        b.poll_compute("zed", 1);
        b.poll_compute("amy", 1);
        let users: Vec<String> = b.close_month().into_iter().map(|i| i.user).collect();
        assert_eq!(users, vec!["amy".to_string(), "zed".to_string()]);
    }

    #[test]
    fn boundary_helpers() {
        use osdc_sim::SimDuration;
        assert!(BillingService::is_minute_boundary(SimTime::ZERO));
        assert!(BillingService::is_minute_boundary(
            SimTime::ZERO + SimDuration::from_mins(5)
        ));
        assert!(!BillingService::is_minute_boundary(
            SimTime::ZERO + SimDuration::from_secs(61)
        ));
        assert!(BillingService::is_day_boundary(
            SimTime::ZERO + SimDuration::from_days(3)
        ));
        assert!(!BillingService::is_day_boundary(
            SimTime::ZERO + SimDuration::from_hours(25)
        ));
    }
}
