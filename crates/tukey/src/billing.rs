//! Billing and accounting (§6.4).
//!
//! "One of the lessons learned from early OSDC operations is that even
//! basic billing and accounting are effective \[at\] limiting bad behavior
//! and providing incentives to properly share resources. We currently
//! bill based on core hours and storage usage. For OSDC-Adler and
//! OSDC-Sullivan, we poll every minute to see the number and types of
//! virtual machine a user has provisioned and then use this information
//! to calculate the core hours. Storage is checked per user once a day.
//! Our billing cycle is monthly and users can check their current usage
//! via the OSDC web interface."
//!
//! [`BillingService`] implements exactly that cadence on the simulation
//! clock: [`BillingService::poll_compute`] each minute accumulates
//! core-minutes; [`BillingService::sweep_storage`] each day samples
//! stored bytes; [`BillingService::close_month`] issues [`Invoice`]s.

use std::collections::BTreeMap;

use osdc_sim::time::SECS_PER_DAY;
use osdc_sim::SimTime;
use osdc_telemetry::audit;

const NANOS_PER_MIN: u64 = 60_000_000_000;
const NANOS_PER_DAY: u64 = SECS_PER_DAY * 1_000_000_000;

/// Prices. The free-tier allowance implements §8 rule 1 ("provide some
/// services without charge to any interested researcher"); §8 rule 2 is
/// the cost-recovery rate charged beyond it.
#[derive(Clone, Copy, Debug)]
pub struct Rates {
    pub per_core_hour: f64,
    pub per_tb_day: f64,
    /// Core-hours per month each user gets free.
    pub free_core_hours: f64,
    /// TB-days per month each user gets free.
    pub free_tb_days: f64,
}

impl Default for Rates {
    fn default() -> Self {
        // Cost-recovery numbers in the AWS-comparable band of §9.1.
        Rates {
            per_core_hour: 0.05,
            per_tb_day: 0.08,
            free_core_hours: 100.0,
            free_tb_days: 3.0,
        }
    }
}

/// One user's accumulated usage within the open billing cycle.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CycleUsage {
    pub core_minutes: f64,
    pub tb_days: f64,
    /// Peak concurrently-held cores seen by any poll (for reports).
    pub peak_cores: u32,
}

/// A closed monthly statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Invoice {
    pub user: String,
    /// Month index since simulation start (0-based).
    pub month: u32,
    pub core_hours: f64,
    pub tb_days: f64,
    pub billable_core_hours: f64,
    pub billable_tb_days: f64,
    pub total_usd: f64,
}

/// The accounting engine.
pub struct BillingService {
    rates: Rates,
    open: BTreeMap<String, CycleUsage>,
    invoices: Vec<Invoice>,
    month: u32,
    /// Last minute index each user was billed for. Survives
    /// [`BillingService::close_month`]: the cycle resets, but a poll
    /// replayed at the month boundary must still count only once.
    polled_minute: BTreeMap<String, u64>,
    /// Last day index each user's storage was swept for, same lifetime.
    swept_day: BTreeMap<String, u64>,
}

impl BillingService {
    pub fn new(rates: Rates) -> Self {
        BillingService {
            rates,
            open: BTreeMap::new(),
            invoices: Vec::new(),
            month: 0,
            polled_minute: BTreeMap::new(),
            swept_day: BTreeMap::new(),
        }
    }

    /// Per-minute compute poll: `cores` currently held by `user` at `now`.
    ///
    /// Idempotent per user-minute: a second poll landing in the same
    /// simulated minute (a retried cron tick, an overlapping poller) is
    /// ignored rather than double-billed. Returns whether the sample was
    /// counted.
    pub fn poll_compute(&mut self, user: &str, cores: u32, now: SimTime) -> bool {
        if cores == 0 {
            return false;
        }
        let minute = now.as_nanos() / NANOS_PER_MIN;
        match self.polled_minute.get(user) {
            Some(&last) if minute <= last => return false,
            _ => {}
        }
        self.polled_minute.insert(user.to_string(), minute);
        let usage = self.open.entry(user.to_string()).or_default();
        usage.core_minutes += cores as f64;
        usage.peak_cores = usage.peak_cores.max(cores);
        true
    }

    /// Daily storage sweep: `bytes` stored by `user` on the day containing
    /// `now`.
    ///
    /// Idempotent per user-day: running the sweep twice in one simulated
    /// day charges one TB-day, not two. Returns whether the sample was
    /// counted.
    pub fn sweep_storage(&mut self, user: &str, bytes: u64, now: SimTime) -> bool {
        if bytes == 0 {
            return false;
        }
        let day = now.as_nanos() / NANOS_PER_DAY;
        match self.swept_day.get(user) {
            Some(&last) if day <= last => return false,
            _ => {}
        }
        self.swept_day.insert(user.to_string(), day);
        let tb = bytes as f64 / 1e12;
        self.open.entry(user.to_string()).or_default().tb_days += tb;
        true
    }

    /// Current-cycle usage, as shown on the console's usage page.
    pub fn current_usage(&self, user: &str) -> CycleUsage {
        self.open.get(user).cloned().unwrap_or_default()
    }

    /// Close the month: issue invoices for every user with usage and
    /// reset the cycle.
    pub fn close_month(&mut self) -> Vec<Invoice> {
        let month = self.month;
        self.month += 1;
        let mut closed: Vec<Invoice> = std::mem::take(&mut self.open)
            .into_iter()
            .map(|(user, usage)| {
                let core_hours = usage.core_minutes / 60.0;
                let billable_core_hours = (core_hours - self.rates.free_core_hours).max(0.0);
                let billable_tb_days = (usage.tb_days - self.rates.free_tb_days).max(0.0);
                let total_usd = billable_core_hours * self.rates.per_core_hour
                    + billable_tb_days * self.rates.per_tb_day;
                audit::check!(
                    billable_core_hours >= 0.0 && billable_tb_days >= 0.0 && total_usd >= 0.0,
                    "tukey.invoice_nonnegative",
                    "negative invoice line for {user} month {month}: \
                     {billable_core_hours} core-hours, {billable_tb_days} TB-days, \
                     ${total_usd}"
                );
                audit::check!(
                    billable_core_hours <= core_hours && billable_tb_days <= usage.tb_days,
                    "tukey.billable_le_metered",
                    "billable exceeds metered usage for {user} month {month}"
                );
                Invoice {
                    user,
                    month,
                    core_hours,
                    tb_days: usage.tb_days,
                    billable_core_hours,
                    billable_tb_days,
                    total_usd,
                }
            })
            .collect();
        closed.sort_by(|a, b| a.user.cmp(&b.user));
        self.invoices.extend(closed.clone());
        closed
    }

    pub fn invoice_history(&self, user: &str) -> Vec<&Invoice> {
        self.invoices.iter().filter(|i| i.user == user).collect()
    }

    /// Is `now` on a minute boundary / day boundary? Helpers for pollers
    /// driven off the DES clock.
    pub fn is_minute_boundary(now: SimTime) -> bool {
        now.as_nanos().is_multiple_of(60_000_000_000)
    }

    pub fn is_day_boundary(now: SimTime) -> bool {
        now.as_nanos().is_multiple_of(SECS_PER_DAY * 1_000_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osdc_sim::SimDuration;

    fn at_min(m: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_mins(m)
    }

    fn at_day(d: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_days(d)
    }

    #[test]
    fn core_minutes_accumulate_to_hours() {
        let mut b = BillingService::new(Rates::default());
        // 8 cores held for 120 minutes.
        for m in 0..120 {
            b.poll_compute("alice", 8, at_min(m));
        }
        let usage = b.current_usage("alice");
        assert_eq!(usage.core_minutes, 960.0);
        assert_eq!(usage.peak_cores, 8);
        let invoices = b.close_month();
        assert_eq!(invoices.len(), 1);
        assert!((invoices[0].core_hours - 16.0).abs() < 1e-9);
    }

    #[test]
    fn free_tier_zeroes_small_users() {
        let rates = Rates::default();
        let mut b = BillingService::new(rates);
        // 50 core-hours: inside the 100 free hours.
        for m in 0..(50 * 60) {
            b.poll_compute("smalluser", 1, at_min(m));
        }
        let inv = b.close_month().pop().expect("one invoice");
        assert_eq!(inv.billable_core_hours, 0.0);
        assert_eq!(inv.total_usd, 0.0);
    }

    #[test]
    fn cost_recovery_beyond_free_tier() {
        let mut b = BillingService::new(Rates {
            per_core_hour: 0.10,
            per_tb_day: 0.0,
            free_core_hours: 10.0,
            free_tb_days: 0.0,
        });
        for m in 0..(20 * 60) {
            b.poll_compute("big", 1, at_min(m)); // 20 core-hours
        }
        let inv = b.close_month().pop().expect("one invoice");
        assert!((inv.billable_core_hours - 10.0).abs() < 1e-9);
        assert!((inv.total_usd - 1.0).abs() < 1e-9);
    }

    #[test]
    fn storage_swept_daily() {
        let mut b = BillingService::new(Rates {
            per_core_hour: 0.0,
            per_tb_day: 0.10,
            free_core_hours: 0.0,
            free_tb_days: 0.0,
        });
        for d in 0..30 {
            b.sweep_storage("hoarder", 2_000_000_000_000, at_day(d)); // 2 TB/day
        }
        let inv = b.close_month().pop().expect("one invoice");
        assert!((inv.tb_days - 60.0).abs() < 1e-9);
        assert!((inv.total_usd - 6.0).abs() < 1e-9);
    }

    #[test]
    fn idle_users_get_no_invoice() {
        let mut b = BillingService::new(Rates::default());
        assert!(!b.poll_compute("ghost", 0, at_min(0)));
        assert!(!b.sweep_storage("ghost", 0, at_day(0)));
        assert!(b.close_month().is_empty());
    }

    #[test]
    fn cycle_resets_each_month() {
        let mut b = BillingService::new(Rates::default());
        b.poll_compute("alice", 4, at_min(0));
        let first = b.close_month();
        assert_eq!(first[0].month, 0);
        assert_eq!(b.current_usage("alice"), CycleUsage::default());
        b.poll_compute("alice", 4, at_min(1));
        let second = b.close_month();
        assert_eq!(second[0].month, 1);
        assert_eq!(b.invoice_history("alice").len(), 2);
    }

    #[test]
    fn invoices_sorted_by_user() {
        let mut b = BillingService::new(Rates::default());
        b.poll_compute("zed", 1, at_min(0));
        b.poll_compute("amy", 1, at_min(0));
        let users: Vec<String> = b.close_month().into_iter().map(|i| i.user).collect();
        assert_eq!(users, vec!["amy".to_string(), "zed".to_string()]);
    }

    #[test]
    fn duplicate_poll_in_one_minute_counts_once() {
        let mut b = BillingService::new(Rates::default());
        assert!(b.poll_compute("alice", 8, at_min(5)));
        // A retried cron tick 30 s later lands in the same minute.
        assert!(!b.poll_compute("alice", 8, at_min(5) + SimDuration::from_secs(30)));
        assert_eq!(b.current_usage("alice").core_minutes, 8.0);
        // The next minute counts again.
        assert!(b.poll_compute("alice", 8, at_min(6)));
        assert_eq!(b.current_usage("alice").core_minutes, 16.0);
    }

    #[test]
    fn double_storage_sweep_in_one_day_bills_once() {
        let mut b = BillingService::new(Rates {
            per_core_hour: 0.0,
            per_tb_day: 0.10,
            free_core_hours: 0.0,
            free_tb_days: 0.0,
        });
        assert!(b.sweep_storage("hoarder", 1_000_000_000_000, at_day(3)));
        // Operator re-runs the sweep later the same sim-day.
        assert!(!b.sweep_storage(
            "hoarder",
            1_000_000_000_000,
            at_day(3) + SimDuration::from_hours(6)
        ));
        let inv = b.close_month().pop().expect("one invoice");
        assert!((inv.tb_days - 1.0).abs() < 1e-9, "tb_days {}", inv.tb_days);
        // Next day bills normally.
        assert!(b.sweep_storage("hoarder", 1_000_000_000_000, at_day(4)));
    }

    #[test]
    fn poll_replayed_across_close_month_counts_once() {
        let mut b = BillingService::new(Rates::default());
        b.poll_compute("alice", 4, at_min(100));
        let first = b.close_month().pop().expect("invoice");
        assert_eq!(first.core_hours * 60.0, 4.0);
        // The same minute's sample arrives again after the close (an
        // overlapping poller seeing the boundary). It must not re-bill
        // into the new cycle.
        assert!(!b.poll_compute("alice", 4, at_min(100)));
        assert_eq!(b.current_usage("alice"), CycleUsage::default());
        // Genuinely new minutes do bill into the new cycle.
        assert!(b.poll_compute("alice", 4, at_min(101)));
        let second = b.close_month().pop().expect("invoice");
        assert!((second.core_hours * 60.0 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn month_boundary_neither_loses_nor_doubles_minutes() {
        // Poll every minute across a 30-day month boundary; every minute
        // lands in exactly one invoice.
        let mut b = BillingService::new(Rates::default());
        let boundary = 30 * 24 * 60; // minutes in the first month
        for m in 0..boundary {
            b.poll_compute("alice", 1, at_min(m));
        }
        let first = b.close_month().pop().expect("invoice");
        for m in boundary..(boundary + 120) {
            b.poll_compute("alice", 1, at_min(m));
        }
        let second = b.close_month().pop().expect("invoice");
        let total_minutes = (first.core_hours + second.core_hours) * 60.0;
        assert!(
            (total_minutes - (boundary + 120) as f64).abs() < 1e-6,
            "lost or doubled minutes: {total_minutes}"
        );
        assert!((second.core_hours * 60.0 - 120.0).abs() < 1e-6);
    }

    #[test]
    fn boundary_helpers() {
        use osdc_sim::SimDuration;
        assert!(BillingService::is_minute_boundary(SimTime::ZERO));
        assert!(BillingService::is_minute_boundary(
            SimTime::ZERO + SimDuration::from_mins(5)
        ));
        assert!(!BillingService::is_minute_boundary(
            SimTime::ZERO + SimDuration::from_secs(61)
        ));
        assert!(BillingService::is_day_boundary(
            SimTime::ZERO + SimDuration::from_days(3)
        ));
        assert!(!BillingService::is_day_boundary(
            SimTime::ZERO + SimDuration::from_hours(25)
        ));
    }
}
