//! ARK dataset identifiers (§6.1).
//!
//! "As part of our efforts to provide persistent, long-term access to
//! scientific data we have developed a cloud service that provides IDs to
//! datasets based upon ARK Keys. We obtained a registered Name Assigning
//! Authority Number (NAAN) and have begun assigning ARKs to the data in
//! the OSDC. Currently, the key service can resolve persistent
//! identifiers and provide metadata based on ARK inflections."
//!
//! Per the ARK scheme (Kunze & Rodgers): an identifier looks like
//! `ark:/NAAN/Name[Qualifier]`; appending `?` asks for a brief metadata
//! record, `??` for the full record including the persistence commitment.
//! Names here carry a NOID-style check character so single-character
//! typos are caught at parse time.

use std::collections::BTreeMap;

use parking_lot::RwLock;

/// The betanumeric alphabet NOID check characters are computed over.
const BETANUMERIC: &[u8] = b"0123456789bcdfghjkmnpqrstvwxz";

/// A parsed ARK.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ark {
    pub naan: String,
    pub name: String,
}

impl Ark {
    pub fn to_uri(&self) -> String {
        format!("ark:/{}/{}", self.naan, self.name)
    }
}

impl std::fmt::Display for Ark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_uri())
    }
}

/// What a resolver request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inflection {
    /// Bare ARK: resolve to the object's access location.
    Access,
    /// `?` — brief metadata.
    BriefMetadata,
    /// `??` — full metadata + persistence commitment.
    FullMetadata,
}

/// Metadata held per assigned ARK (ERC-style kernel elements).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArkRecord {
    pub who: String,
    pub what: String,
    pub when: String,
    /// Access location within the OSDC (volume path or URL).
    pub where_: String,
    /// The persistence commitment statement (returned on `??`).
    pub commitment: String,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArkError {
    Malformed(String),
    /// Check character mismatch — likely a transcription typo.
    CheckFailed(String),
    NotAssigned(String),
}

fn betanumeric_index(c: u8) -> Option<u64> {
    BETANUMERIC.iter().position(|&b| b == c).map(|i| i as u64)
}

/// NOID check character over `naan/name` (weighted mod-29 sum).
fn check_char(naan: &str, name: &str) -> char {
    let s = format!("{naan}/{name}");
    let sum: u64 = s
        .bytes()
        .enumerate()
        .map(|(i, b)| (i as u64 + 1) * betanumeric_index(b).unwrap_or(0))
        .sum();
    BETANUMERIC[(sum % 29) as usize] as char
}

/// The OSDC key service: mints, parses and resolves ARKs.
///
/// ```
/// use osdc_tukey::ark::{ArkRecord, ArkService, Inflection};
///
/// let svc = ArkService::new("31807", "b2");
/// let ark = svc.mint(ArkRecord {
///     who: "OSDC".into(),
///     what: "1000 Genomes".into(),
///     when: "2012".into(),
///     where_: "/glusterfs/public/1000genomes".into(),
///     commitment: "replicated on OSDC-Root".into(),
/// });
/// // The bare ARK resolves to the access location...
/// assert_eq!(svc.resolve(&ark.to_uri()).unwrap(), "/glusterfs/public/1000genomes");
/// // ...and the `?` inflection returns brief metadata.
/// let (parsed, inflection) = ArkService::parse(&format!("{ark}?")).unwrap();
/// assert_eq!(parsed, ark);
/// assert_eq!(inflection, Inflection::BriefMetadata);
/// ```
pub struct ArkService {
    /// The registered Name Assigning Authority Number.
    pub naan: String,
    /// Shoulder prefixed to minted names (sub-namespace convention).
    pub shoulder: String,
    records: RwLock<BTreeMap<Ark, ArkRecord>>,
    counter: RwLock<u64>,
}

impl ArkService {
    pub fn new(naan: impl Into<String>, shoulder: impl Into<String>) -> Self {
        ArkService {
            naan: naan.into(),
            shoulder: shoulder.into(),
            records: RwLock::new(BTreeMap::new()),
            counter: RwLock::new(0),
        }
    }

    /// Mint a fresh ARK for a dataset and bind its record.
    pub fn mint(&self, record: ArkRecord) -> Ark {
        let mut counter = self.counter.write();
        *counter += 1;
        // Betanumeric base-29 rendering of the counter.
        let mut n = *counter;
        let mut digits = Vec::new();
        while n > 0 {
            digits.push(BETANUMERIC[(n % 29) as usize]);
            n /= 29;
        }
        digits.reverse();
        let base = format!(
            "{}{}",
            self.shoulder,
            String::from_utf8(digits).expect("betanumeric is ASCII")
        );
        let check = check_char(&self.naan, &base);
        let ark = Ark {
            naan: self.naan.clone(),
            name: format!("{base}{check}"),
        };
        self.records.write().insert(ark.clone(), record);
        ark
    }

    /// Parse an ARK URI, optionally carrying an inflection. Validates the
    /// check character for names minted by this service's conventions.
    pub fn parse(uri: &str) -> Result<(Ark, Inflection), ArkError> {
        let (body, inflection) = if let Some(b) = uri.strip_suffix("??") {
            (b, Inflection::FullMetadata)
        } else if let Some(b) = uri.strip_suffix('?') {
            (b, Inflection::BriefMetadata)
        } else {
            (uri, Inflection::Access)
        };
        let rest = body
            .strip_prefix("ark:/")
            .or_else(|| body.strip_prefix("ark:"))
            .ok_or_else(|| ArkError::Malformed(uri.to_string()))?;
        let (naan, name) = rest
            .split_once('/')
            .ok_or_else(|| ArkError::Malformed(uri.to_string()))?;
        if naan.is_empty() || name.is_empty() {
            return Err(ArkError::Malformed(uri.to_string()));
        }
        // Validate the trailing check character.
        let (base, check) = name.split_at(name.len() - 1);
        if check_char(naan, base).to_string() != check {
            return Err(ArkError::CheckFailed(uri.to_string()));
        }
        Ok((
            Ark {
                naan: naan.to_string(),
                name: name.to_string(),
            },
            inflection,
        ))
    }

    /// Resolve an ARK URI per its inflection.
    pub fn resolve(&self, uri: &str) -> Result<String, ArkError> {
        let (ark, inflection) = Self::parse(uri)?;
        let records = self.records.read();
        let record = records
            .get(&ark)
            .ok_or_else(|| ArkError::NotAssigned(ark.to_uri()))?;
        Ok(match inflection {
            Inflection::Access => record.where_.clone(),
            Inflection::BriefMetadata => format!(
                "erc:\nwho: {}\nwhat: {}\nwhen: {}\nwhere: {}",
                record.who, record.what, record.when, record.where_
            ),
            Inflection::FullMetadata => format!(
                "erc:\nwho: {}\nwhat: {}\nwhen: {}\nwhere: {}\ncommitment: {}",
                record.who, record.what, record.when, record.where_, record.commitment
            ),
        })
    }

    pub fn assigned_count(&self) -> usize {
        self.records.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(what: &str, where_: &str) -> ArkRecord {
        ArkRecord {
            who: "OSDC".into(),
            what: what.into(),
            when: "2012".into(),
            where_: where_.into(),
            commitment: "persistent: OSDC-Root replicated, reviewed annually".into(),
        }
    }

    fn service() -> ArkService {
        ArkService::new("31807", "b2")
    }

    #[test]
    fn mint_parse_roundtrip() {
        let svc = service();
        let ark = svc.mint(record("1000 Genomes", "/glusterfs/public/1000genomes"));
        assert!(ark.to_uri().starts_with("ark:/31807/b2"));
        let (parsed, inflection) = ArkService::parse(&ark.to_uri()).expect("parses");
        assert_eq!(parsed, ark);
        assert_eq!(inflection, Inflection::Access);
    }

    #[test]
    fn minted_ids_are_unique() {
        let svc = service();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..100 {
            let ark = svc.mint(record(&format!("ds{i}"), "/x"));
            assert!(seen.insert(ark.to_uri()), "duplicate mint");
        }
        assert_eq!(svc.assigned_count(), 100);
    }

    #[test]
    fn inflections_resolve_differently() {
        let svc = service();
        let ark = svc.mint(record("EO-1 Hyperion L0", "/glusterfs/matsu/eo1"));
        let access = svc.resolve(&ark.to_uri()).expect("access");
        assert_eq!(access, "/glusterfs/matsu/eo1");
        let brief = svc.resolve(&format!("{}?", ark.to_uri())).expect("brief");
        assert!(brief.contains("what: EO-1 Hyperion L0"));
        assert!(!brief.contains("commitment"));
        let full = svc.resolve(&format!("{}??", ark.to_uri())).expect("full");
        assert!(full.contains("commitment: persistent"));
    }

    #[test]
    fn typo_is_caught_by_check_character() {
        let svc = service();
        let ark = svc.mint(record("ds", "/x"));
        let uri = ark.to_uri();
        // Corrupt one betanumeric character of the name body.
        let mut chars: Vec<char> = uri.chars().collect();
        let idx = uri.len() - 2;
        chars[idx] = if chars[idx] == 'b' { 'c' } else { 'b' };
        let corrupted: String = chars.into_iter().collect();
        assert!(matches!(
            ArkService::parse(&corrupted),
            Err(ArkError::CheckFailed(_))
        ));
    }

    #[test]
    fn malformed_uris_rejected() {
        for bad in [
            "http://x",
            "ark:",
            "ark:/",
            "ark:/31807",
            "ark:/31807/",
            "ark://x",
        ] {
            assert!(
                matches!(
                    ArkService::parse(bad),
                    Err(ArkError::Malformed(_) | ArkError::CheckFailed(_))
                ),
                "{bad} should fail"
            );
        }
    }

    #[test]
    fn unassigned_ark_reports_not_assigned() {
        let svc = service();
        // A *valid* ARK (correct check char) that was never minted here.
        let check = super::check_char("99999", "b2x");
        let uri = format!("ark:/99999/b2x{check}");
        assert!(matches!(svc.resolve(&uri), Err(ArkError::NotAssigned(_))));
    }

    #[test]
    fn parse_accepts_no_slash_prefix_form() {
        let svc = service();
        let ark = svc.mint(record("ds", "/x"));
        let compact = ark.to_uri().replace("ark:/", "ark:");
        assert!(ArkService::parse(&compact).is_ok());
    }
}
