//! The user database mapping identities to per-cloud credentials (§5.2).
//!
//! "After receiving either a Shibboleth or OpenID identifier, the proxy
//! looks for the cloud credentials associated with the identifier in the
//! user database. These credentials are securely provided to the API
//! translation proxies."

use std::collections::BTreeMap;

use parking_lot::RwLock;

use crate::auth::Identity;

/// A credential for one cloud (EC2-style access/secret pair; OpenStack
/// token-style credentials are shaped the same way here).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CloudCredential {
    pub cloud: String,
    /// The username the *cloud* knows (distinct from the federated id).
    pub cloud_user: String,
    pub access_key: String,
    secret_key: String,
}

impl CloudCredential {
    pub fn new(
        cloud: impl Into<String>,
        cloud_user: impl Into<String>,
        access_key: impl Into<String>,
        secret_key: impl Into<String>,
    ) -> Self {
        CloudCredential {
            cloud: cloud.into(),
            cloud_user: cloud_user.into(),
            access_key: access_key.into(),
            secret_key: secret_key.into(),
        }
    }

    /// Secrets are only ever handed to translation proxies, not rendered.
    /// (The in-repo stacks authenticate by construction, so this is read
    /// only by signing paths and tests.)
    pub fn secret(&self) -> &str {
        &self.secret_key
    }
}

// Secrets must not leak through logs: Debug is derived on the struct but
// the secret field is private; belt-and-braces, Display omits it.
impl std::fmt::Display for CloudCredential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}@{} (access {}, secret ***)",
            self.cloud_user, self.cloud, self.access_key
        )
    }
}

/// The middleware's user database.
#[derive(Default)]
pub struct CredentialVault {
    by_identity: RwLock<BTreeMap<Identity, Vec<CloudCredential>>>,
}

impl CredentialVault {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enroll a federated identity with its credential for one cloud
    /// (adding or replacing that cloud's entry).
    pub fn enroll(&self, id: &Identity, credential: CloudCredential) {
        let mut map = self.by_identity.write();
        let creds = map.entry(id.clone()).or_default();
        if let Some(existing) = creds.iter_mut().find(|c| c.cloud == credential.cloud) {
            *existing = credential;
        } else {
            creds.push(credential);
        }
    }

    /// All clouds this identity can reach.
    pub fn clouds_for(&self, id: &Identity) -> Vec<String> {
        self.by_identity
            .read()
            .get(id)
            .map(|cs| cs.iter().map(|c| c.cloud.clone()).collect())
            .unwrap_or_default()
    }

    /// Credential for one cloud, if enrolled.
    pub fn lookup(&self, id: &Identity, cloud: &str) -> Option<CloudCredential> {
        self.by_identity
            .read()
            .get(id)?
            .iter()
            .find(|c| c.cloud == cloud)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alice() -> Identity {
        Identity {
            canonical: "shib:alice@uchicago.edu".into(),
        }
    }

    #[test]
    fn enroll_and_lookup() {
        let vault = CredentialVault::new();
        vault.enroll(
            &alice(),
            CloudCredential::new("adler", "alice", "AKIA1", "s3cr3t"),
        );
        vault.enroll(
            &alice(),
            CloudCredential::new("sullivan", "agrossman", "AKIA2", "t0ps3cret"),
        );
        assert_eq!(vault.clouds_for(&alice()), vec!["adler", "sullivan"]);
        let c = vault.lookup(&alice(), "sullivan").expect("enrolled");
        assert_eq!(c.cloud_user, "agrossman");
        assert!(vault.lookup(&alice(), "matsu").is_none());
    }

    #[test]
    fn re_enroll_replaces() {
        let vault = CredentialVault::new();
        vault.enroll(&alice(), CloudCredential::new("adler", "a", "K1", "old"));
        vault.enroll(&alice(), CloudCredential::new("adler", "a", "K2", "new"));
        let c = vault.lookup(&alice(), "adler").expect("enrolled");
        assert_eq!(c.access_key, "K2");
        assert_eq!(c.secret(), "new");
        assert_eq!(vault.clouds_for(&alice()).len(), 1);
    }

    #[test]
    fn unknown_identity_is_empty() {
        let vault = CredentialVault::new();
        assert!(vault.clouds_for(&alice()).is_empty());
        assert!(vault.lookup(&alice(), "adler").is_none());
    }

    #[test]
    fn display_hides_secret() {
        let c = CloudCredential::new("adler", "alice", "AKIA1", "hunter2");
        let shown = format!("{c}");
        assert!(!shown.contains("hunter2"));
        assert!(shown.contains("AKIA1"));
    }
}
