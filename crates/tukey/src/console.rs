//! The Tukey Console: the web application of §5.1, as a request router.
//!
//! "The Tukey Console is a web application based on Django and utilizes
//! the Tukey middleware to provide easy access to cloud services for
//! users... The core functionality of the web application is virtual
//! machine provisioning with usage and billing information. We have also
//! developed optional modules to provide web interfaces to other OSDC
//! capabilities," namely file-sharing management (§6.2) and public
//! dataset management (§6.3).
//!
//! One [`TukeyConsole`] owns the full middleware stack — auth proxy,
//! credential vault, translation proxy, billing, key service, catalog and
//! sharing service — and exposes one method per console page. Sessions
//! are token-based, as in the web app.

use std::collections::BTreeMap;

use osdc_sim::{SimDuration, SimTime};
use osdc_telemetry::Telemetry;
use serde_json::{json, Value};

use crate::ark::ArkService;
use crate::auth::{Assertion, AuthError, AuthProxy, Identity, OpenIdProvider};
use crate::billing::{BillingService, Rates};
use crate::catalog::DatasetCatalog;
use crate::credentials::{CloudCredential, CredentialVault};
use crate::sharing::FileSharingService;
use crate::translation::{ProxyError, TranslationProxy};

/// An authenticated console session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionToken(pub u64);

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsoleError {
    Auth(AuthError),
    InvalidSession,
    Proxy(ProxyError),
}

impl From<AuthError> for ConsoleError {
    fn from(e: AuthError) -> Self {
        ConsoleError::Auth(e)
    }
}
impl From<ProxyError> for ConsoleError {
    fn from(e: ProxyError) -> Self {
        ConsoleError::Proxy(e)
    }
}

/// The assembled OSDC user-facing stack (Figure 1).
pub struct TukeyConsole {
    pub auth: AuthProxy,
    pub vault: CredentialVault,
    pub proxy: TranslationProxy,
    pub billing: BillingService,
    pub arks: ArkService,
    pub catalog: DatasetCatalog,
    pub sharing: FileSharingService,
    sessions: BTreeMap<SessionToken, Identity>,
    /// Every identity ever enrolled — the population billing polls over.
    enrolled: Vec<Identity>,
    next_token: u64,
    tele: Telemetry,
}

/// Modeled session-validation cost per console request (auth proxy hop).
const AUTH_LATENCY: SimDuration = SimDuration::from_millis(2);

impl TukeyConsole {
    pub fn new(auth: AuthProxy, proxy: TranslationProxy) -> Self {
        let arks = ArkService::new("31807", "b2");
        let catalog = DatasetCatalog::osdc_public_datasets(&arks);
        TukeyConsole {
            auth,
            vault: CredentialVault::new(),
            proxy,
            billing: BillingService::new(Rates::default()),
            arks,
            catalog,
            sharing: FileSharingService::new(),
            sessions: BTreeMap::new(),
            enrolled: Vec::new(),
            next_token: 1,
            tele: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle. Console pages then emit request spans
    /// (console → auth → translation → aggregation) on the sim clock, and
    /// the translation proxy records per-cloud latency histograms.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.proxy.set_telemetry(tele.clone());
        self.tele = tele;
    }

    /// Close out a traced console request: aggregation span, root span end,
    /// request counter and latency histogram.
    fn finish_request(
        &self,
        root: osdc_telemetry::SpanId,
        started: SimTime,
        after_translation: SimTime,
        items: usize,
    ) {
        if !self.tele.is_enabled() {
            return;
        }
        let agg = self.tele.span_start("aggregation", after_translation);
        let end = after_translation + SimDuration::from_millis(items as u64);
        self.tele.span_end(agg, end);
        self.tele.span_end(root, end);
        self.tele.incr(self.tele.counter("tukey.requests"));
        self.tele.observe(
            self.tele.histogram("tukey.request_latency_ms"),
            end.saturating_since(started).as_secs_f64() * 1e3,
        );
    }

    /// Trace the auth hop of a request; on failure also close the root span
    /// and bump the error counter.
    fn traced_identity(
        &self,
        root: osdc_telemetry::SpanId,
        token: SessionToken,
        now: SimTime,
    ) -> Result<Identity, ConsoleError> {
        let auth = self.tele.span_start("auth/session", now);
        self.tele.span_end(auth, now + AUTH_LATENCY);
        match self.identity(token) {
            Ok(id) => Ok(id),
            Err(e) => {
                self.tele.span_end(root, now + AUTH_LATENCY);
                self.tele.incr(self.tele.counter("tukey.errors"));
                Err(e)
            }
        }
    }

    /// Administrative enrollment: bind cloud credentials to an identity.
    pub fn enroll(&mut self, id: &Identity, credential: CloudCredential) {
        self.vault.enroll(id, credential);
        if !self.enrolled.contains(id) {
            self.enrolled.push(id.clone());
        }
    }

    fn open_session(&mut self, id: Identity) -> SessionToken {
        let token = SessionToken(self.next_token.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.next_token += 1;
        self.sessions.insert(token, id);
        token
    }

    /// Log in with a Shibboleth assertion.
    pub fn login_shibboleth(
        &mut self,
        assertion: &Assertion,
    ) -> Result<SessionToken, ConsoleError> {
        let id = self.auth.login_shibboleth(assertion)?;
        self.tele.incr(self.tele.counter("tukey.logins"));
        Ok(self.open_session(id))
    }

    /// Log in with an OpenID identifier.
    pub fn login_openid(
        &mut self,
        provider: &OpenIdProvider,
        identifier_url: &str,
        password: &str,
    ) -> Result<SessionToken, ConsoleError> {
        let id = self.auth.login_openid(provider, identifier_url, password)?;
        self.tele.incr(self.tele.counter("tukey.logins"));
        Ok(self.open_session(id))
    }

    pub fn logout(&mut self, token: SessionToken) {
        self.sessions.remove(&token);
    }

    fn identity(&self, token: SessionToken) -> Result<Identity, ConsoleError> {
        self.sessions
            .get(&token)
            .cloned()
            .ok_or(ConsoleError::InvalidSession)
    }

    pub fn whoami(&self, token: SessionToken) -> Result<String, ConsoleError> {
        Ok(self.identity(token)?.canonical)
    }

    // ---- the instances page ------------------------------------------------

    /// Aggregated VM listing across all enrolled clouds (the landing page).
    pub fn instances_page(
        &mut self,
        token: SessionToken,
        now: SimTime,
    ) -> Result<Value, ConsoleError> {
        let root = self.tele.span_start("console/instances_page", now);
        let id = self.traced_identity(root, token, now)?;
        let page = self
            .proxy
            .list_servers(&self.vault, &id, now + AUTH_LATENCY);
        let after = now + AUTH_LATENCY + self.proxy.last_latency;
        let items = page["servers"].as_array().map(Vec::len).unwrap_or(0);
        self.finish_request(root, now, after, items);
        Ok(page)
    }

    pub fn launch_instance(
        &mut self,
        token: SessionToken,
        cloud: &str,
        name: &str,
        flavor: &str,
        image: &str,
        now: SimTime,
    ) -> Result<Value, ConsoleError> {
        let root = self.tele.span_start("console/launch_instance", now);
        let id = self.traced_identity(root, token, now)?;
        let result = self.proxy.boot_server(
            &self.vault,
            &id,
            cloud,
            name,
            flavor,
            image,
            now + AUTH_LATENCY,
        );
        match result {
            Ok(v) => {
                self.finish_request(root, now, now + AUTH_LATENCY + self.proxy.last_latency, 1);
                Ok(v)
            }
            Err(e) => {
                self.tele.span_end(root, now + AUTH_LATENCY);
                self.tele.incr(self.tele.counter("tukey.errors"));
                Err(e.into())
            }
        }
    }

    pub fn terminate_instance(
        &mut self,
        token: SessionToken,
        cloud: &str,
        server_id: u64,
        now: SimTime,
    ) -> Result<(), ConsoleError> {
        let root = self.tele.span_start("console/terminate_instance", now);
        let id = self.traced_identity(root, token, now)?;
        match self
            .proxy
            .delete_server(&self.vault, &id, cloud, server_id, now + AUTH_LATENCY)
        {
            Ok(()) => {
                self.finish_request(root, now, now + AUTH_LATENCY + self.proxy.last_latency, 1);
                Ok(())
            }
            Err(e) => {
                self.tele.span_end(root, now + AUTH_LATENCY);
                self.tele.incr(self.tele.counter("tukey.errors"));
                Err(e.into())
            }
        }
    }

    // ---- usage & billing page ------------------------------------------------

    /// "users can check their current usage via the OSDC web interface."
    pub fn usage_page(&self, token: SessionToken) -> Result<Value, ConsoleError> {
        let id = self.identity(token)?;
        let live = self.proxy.usage(&self.vault, &id);
        let cycle = self.billing.current_usage(&id.canonical);
        Ok(json!({
            "user": id.canonical,
            "live_cores_by_cloud": live,
            "cycle": {
                "core_hours": cycle.core_minutes / 60.0,
                "tb_days": cycle.tb_days,
                "peak_cores": cycle.peak_cores,
            }
        }))
    }

    /// The per-minute billing poll across every enrolled identity (§6.4),
    /// sampled at sim-time `now`. Duplicate ticks within one minute are
    /// absorbed by the billing dedup cursor.
    pub fn billing_minute_tick(&mut self, now: SimTime) {
        for id in &self.enrolled {
            let cores: u32 = self.proxy.usage(&self.vault, id).values().sum();
            self.billing.poll_compute(&id.canonical, cores, now);
        }
    }

    /// The daily storage sweep at sim-time `now`: callers supply
    /// per-identity stored bytes (volumes live outside the console).
    pub fn billing_daily_storage(&mut self, usage: &[(Identity, u64)], now: SimTime) {
        for (id, bytes) in usage {
            self.billing.sweep_storage(&id.canonical, *bytes, now);
        }
    }

    // ---- public data page ------------------------------------------------------

    pub fn datasets_page(&self, query: Option<&str>) -> Value {
        let records = match query {
            Some(q) => self.catalog.search(q),
            None => self.catalog.browse(),
        };
        json!({
            "datasets": records.iter().map(|r| json!({
                "ark": r.ark.to_uri(),
                "title": r.title,
                "discipline": r.discipline.label(),
                "size_tb": r.size_bytes as f64 / 1e12,
                "path": r.storage_path,
            })).collect::<Vec<_>>()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::ShibbolethIdp;
    use crate::translation::osdc_proxy;

    fn console_with_alice() -> (TukeyConsole, ShibbolethIdp) {
        let mut idp = ShibbolethIdp::new("urn:uchicago", b"key");
        idp.register("alice@uchicago.edu", &[("displayName", "Alice")]);
        let mut auth = AuthProxy::new();
        auth.trust_idp("urn:uchicago", b"key");
        let mut console = TukeyConsole::new(auth, osdc_proxy(1));
        let id = Identity {
            canonical: "shib:alice@uchicago.edu".into(),
        };
        console.enroll(&id, CloudCredential::new("adler", "alice", "K", "S"));
        console.enroll(&id, CloudCredential::new("sullivan", "alice", "K", "S"));
        (console, idp)
    }

    #[test]
    fn full_session_flow() {
        let (mut console, idp) = console_with_alice();
        let assertion = idp.assert("alice@uchicago.edu").expect("assert");
        let token = console.login_shibboleth(&assertion).expect("login");
        assert_eq!(
            console.whoami(token).expect("session valid"),
            "shib:alice@uchicago.edu"
        );
        // Launch on both clouds through one console.
        let t = SimTime::ZERO;
        console
            .launch_instance(token, "adler", "vm1", "m1.large", "bionimbus-genomics", t)
            .expect("launch adler");
        console
            .launch_instance(token, "sullivan", "vm2", "m1.small", "ubuntu-base", t)
            .expect("launch sullivan");
        let page = console.instances_page(token, t).expect("page");
        assert_eq!(page["servers"].as_array().expect("array").len(), 2);
        // Logout invalidates.
        console.logout(token);
        assert_eq!(
            console.whoami(token).unwrap_err(),
            ConsoleError::InvalidSession
        );
    }

    #[test]
    fn invalid_session_rejected_everywhere() {
        let (mut console, _) = console_with_alice();
        let bogus = SessionToken(42);
        assert!(console.instances_page(bogus, SimTime::ZERO).is_err());
        assert!(console.usage_page(bogus).is_err());
        assert!(console
            .launch_instance(
                bogus,
                "adler",
                "x",
                "m1.small",
                "ubuntu-base",
                SimTime::ZERO
            )
            .is_err());
    }

    #[test]
    fn billing_polls_accumulate_through_console() {
        let (mut console, idp) = console_with_alice();
        let token = console
            .login_shibboleth(&idp.assert("alice@uchicago.edu").expect("assert"))
            .expect("login");
        console
            .launch_instance(
                token,
                "adler",
                "vm",
                "m1.xlarge",
                "ubuntu-base",
                SimTime::ZERO,
            )
            .expect("launch");
        for m in 0..60 {
            console.billing_minute_tick(SimTime::ZERO + SimDuration::from_mins(m));
        }
        let usage = console.usage_page(token).expect("usage");
        assert!((usage["cycle"]["core_hours"].as_f64().expect("f64") - 8.0).abs() < 1e-9);
        assert_eq!(usage["live_cores_by_cloud"]["adler"], 8);
    }

    #[test]
    fn terminate_stops_billing() {
        let (mut console, idp) = console_with_alice();
        let token = console
            .login_shibboleth(&idp.assert("alice@uchicago.edu").expect("assert"))
            .expect("login");
        let resp = console
            .launch_instance(
                token,
                "adler",
                "vm",
                "m1.small",
                "ubuntu-base",
                SimTime::ZERO,
            )
            .expect("launch");
        let id = resp["server"]["id"].as_u64().expect("id");
        console.billing_minute_tick(SimTime::ZERO);
        console
            .terminate_instance(token, "adler", id, SimTime(60_000_000_000))
            .expect("terminate");
        console.billing_minute_tick(SimTime(60_000_000_000)); // no longer counted
        let usage = console.usage_page(token).expect("usage");
        let core_hours = usage["cycle"]["core_hours"].as_f64().expect("f64");
        assert!((core_hours - 1.0 / 60.0).abs() < 1e-9, "{core_hours}");
    }

    #[test]
    fn datasets_page_browses_and_searches() {
        let (console, _) = console_with_alice();
        let all = console.datasets_page(None);
        assert!(all["datasets"].as_array().expect("array").len() >= 12);
        let hits = console.datasets_page(Some("genomes"));
        assert_eq!(hits["datasets"].as_array().expect("array").len(), 1);
        assert!(hits["datasets"][0]["ark"]
            .as_str()
            .expect("ark string")
            .starts_with("ark:/31807/"));
    }

    #[test]
    fn telemetry_traces_request_pipeline() {
        let (mut console, idp) = console_with_alice();
        let tele = Telemetry::new();
        console.set_telemetry(tele.clone());
        let token = console
            .login_shibboleth(&idp.assert("alice@uchicago.edu").expect("assert"))
            .expect("login");
        let t = SimTime::ZERO;
        console
            .launch_instance(token, "adler", "vm1", "m1.large", "bionimbus-genomics", t)
            .expect("launch");
        console
            .launch_instance(token, "sullivan", "vm2", "m1.small", "ubuntu-base", t)
            .expect("launch");
        console.instances_page(token, t).expect("page");
        assert_eq!(tele.counter_value("tukey.logins"), 1);
        assert_eq!(tele.counter_value("tukey.requests"), 3);
        assert_eq!(tele.counter_value("tukey.errors"), 0);
        // Per-cloud latency histograms: adler saw 2 calls (launch + list),
        // sullivan likewise.
        let snaps = tele.histograms_snapshot();
        for cloud in ["adler", "sullivan"] {
            let h = snaps
                .iter()
                .find(|h| h.name == format!("tukey.cloud.{cloud}.latency_ms"))
                .unwrap_or_else(|| panic!("latency histogram for {cloud}"));
            assert_eq!(h.count, 2, "{cloud}");
        }
        // The request pipeline is fully spanned.
        let jsonl = tele.export_jsonl();
        for name in [
            "console/launch_instance",
            "console/instances_page",
            "auth/session",
            "translation/adler",
            "translation/sullivan",
            "aggregation",
        ] {
            assert!(jsonl.contains(name), "missing span {name}");
        }
        // Errors land in the error counter and still close the root span.
        assert!(console.instances_page(SessionToken(9), t).is_err());
        assert_eq!(tele.counter_value("tukey.errors"), 1);
    }

    #[test]
    fn cloud_added_mid_run_records_lazily() {
        use crate::translation::CloudMapping;
        use osdc_compute::CloudController;

        let (mut console, idp) = console_with_alice();
        let tele = Telemetry::new();
        console.set_telemetry(tele.clone());
        let token = console
            .login_shibboleth(&idp.assert("alice@uchicago.edu").expect("assert"))
            .expect("login");
        let t = SimTime::ZERO;
        console.instances_page(token, t).expect("page");

        // A third cloud joins the federation after telemetry is live —
        // the console must keep serving and start recording it.
        let mapping = CloudMapping::from_json(
            r#"{"cloud": "root", "kind": "OpenStack",
                "image_aliases": {"ubuntu-base": 1}}"#,
        )
        .expect("parses");
        console
            .proxy
            .add_backend(mapping, CloudController::with_racks("root", 1));
        let id = Identity {
            canonical: "shib:alice@uchicago.edu".into(),
        };
        console.enroll(&id, CloudCredential::new("root", "alice", "K", "S"));
        console
            .launch_instance(token, "root", "vm-r", "m1.small", "ubuntu-base", t)
            .expect("launch on the new cloud");
        console.instances_page(token, t).expect("page");

        let snaps = tele.histograms_snapshot();
        let h = snaps
            .iter()
            .find(|h| h.name == "tukey.cloud.root.latency_ms")
            .expect("lazily-registered histogram for the mid-run cloud");
        assert_eq!(h.count, 2, "launch + list both recorded");
    }

    #[test]
    fn storage_sweep_reaches_invoices() {
        let (mut console, _) = console_with_alice();
        let id = Identity {
            canonical: "shib:alice@uchicago.edu".into(),
        };
        for d in 0..30 {
            console.billing_daily_storage(
                &[(id.clone(), 5_000_000_000_000)],
                SimTime::ZERO + SimDuration::from_days(d),
            );
        }
        let invoices = console.billing.close_month();
        assert_eq!(invoices.len(), 1);
        assert!((invoices[0].tb_days - 150.0).abs() < 1e-9);
    }
}
