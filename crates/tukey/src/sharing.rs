//! File sharing and permissions (§6.2).
//!
//! "We have developed a functional prototype for distributed file
//! sharing, with access control based on users, groups, and
//! file-collection objects. Users have the ability to create and modify
//! groups. A file-collection object can be a file, a collection of
//! files, or a collection of collections. This hierarchical structure
//! provides a foundation for users to manage projects and associated
//! datasets. In the prototype implementation, users share files by
//! adding them to a designated directory. This directory is monitored by
//! a daemon process that propagates file information to a database.
//! Users then utilize the OSDC web interface to grant permissions to
//! users or groups on file-collection objects. The system serves the
//! files using the WebDAV protocol while referencing the database
//! backend."
//!
//! Reproduced one-to-one: [`FileSharingService::watch_directory`] is the
//! daemon pass (it diffs a designated share directory against the
//! database and registers new files); grants attach to users or groups
//! on any node of the collection tree; permission resolution walks up
//! the hierarchy; [`FileSharingService::webdav`] serves `GET` and
//! `PROPFIND` against the database plus backing volume.

use std::collections::{BTreeMap, BTreeSet};

use osdc_storage::{FileData, Volume};

/// A node in the file-collection hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CollectionId(pub u64);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Permission {
    Read,
    Write,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShareError {
    UnknownCollection(CollectionId),
    UnknownGroup(String),
    /// Only a group's owner may modify it.
    NotGroupOwner,
    PermissionDenied,
    NotAFile(CollectionId),
    StorageError(String),
    /// Cycles are forbidden: a collection cannot contain an ancestor.
    WouldCreateCycle,
}

#[derive(Clone, Debug)]
enum NodeKind {
    /// A single file, backed by a volume path.
    File { volume_path: String },
    /// A collection of files and/or collections.
    Collection { children: Vec<CollectionId> },
}

#[derive(Clone, Debug)]
struct Node {
    #[allow(dead_code)]
    name: String,
    owner: String,
    kind: NodeKind,
    parent: Option<CollectionId>,
    user_grants: Vec<(String, Permission)>,
    group_grants: Vec<(String, Permission)>,
}

/// The sharing database plus its grant logic.
pub struct FileSharingService {
    nodes: BTreeMap<CollectionId, Node>,
    groups: BTreeMap<String, (String, BTreeSet<String>)>, // name → (owner, members)
    next_id: u64,
    /// volume path → file node (for the watcher diff).
    by_path: BTreeMap<String, CollectionId>,
}

impl Default for FileSharingService {
    fn default() -> Self {
        Self::new()
    }
}

impl FileSharingService {
    pub fn new() -> Self {
        FileSharingService {
            nodes: BTreeMap::new(),
            groups: BTreeMap::new(),
            next_id: 1,
            by_path: BTreeMap::new(),
        }
    }

    fn alloc(&mut self) -> CollectionId {
        let id = CollectionId(self.next_id);
        self.next_id += 1;
        id
    }

    // ---- groups ----------------------------------------------------------

    /// "Users have the ability to create and modify groups."
    pub fn create_group(&mut self, owner: &str, name: &str) {
        self.groups
            .entry(name.to_string())
            .or_insert_with(|| (owner.to_string(), BTreeSet::new()));
    }

    pub fn add_member(&mut self, actor: &str, group: &str, user: &str) -> Result<(), ShareError> {
        let (owner, members) = self
            .groups
            .get_mut(group)
            .ok_or_else(|| ShareError::UnknownGroup(group.to_string()))?;
        if owner != actor {
            return Err(ShareError::NotGroupOwner);
        }
        members.insert(user.to_string());
        Ok(())
    }

    pub fn remove_member(
        &mut self,
        actor: &str,
        group: &str,
        user: &str,
    ) -> Result<(), ShareError> {
        let (owner, members) = self
            .groups
            .get_mut(group)
            .ok_or_else(|| ShareError::UnknownGroup(group.to_string()))?;
        if owner != actor {
            return Err(ShareError::NotGroupOwner);
        }
        members.remove(user);
        Ok(())
    }

    fn in_group(&self, group: &str, user: &str) -> bool {
        self.groups
            .get(group)
            .is_some_and(|(_, members)| members.contains(user))
    }

    // ---- collection tree --------------------------------------------------

    pub fn create_collection(
        &mut self,
        owner: &str,
        name: &str,
        parent: Option<CollectionId>,
    ) -> Result<CollectionId, ShareError> {
        if let Some(p) = parent {
            if !self.nodes.contains_key(&p) {
                return Err(ShareError::UnknownCollection(p));
            }
        }
        let id = self.alloc();
        self.nodes.insert(
            id,
            Node {
                name: name.to_string(),
                owner: owner.to_string(),
                kind: NodeKind::Collection {
                    children: Vec::new(),
                },
                parent,
                user_grants: Vec::new(),
                group_grants: Vec::new(),
            },
        );
        if let Some(p) = parent {
            if let NodeKind::Collection { children } =
                &mut self.nodes.get_mut(&p).expect("checked above").kind
            {
                children.push(id);
            }
        }
        Ok(id)
    }

    /// Register a file node backed by `volume_path`.
    pub fn register_file(
        &mut self,
        owner: &str,
        name: &str,
        volume_path: &str,
        parent: Option<CollectionId>,
    ) -> Result<CollectionId, ShareError> {
        if let Some(p) = parent {
            if !self.nodes.contains_key(&p) {
                return Err(ShareError::UnknownCollection(p));
            }
        }
        let id = self.alloc();
        self.nodes.insert(
            id,
            Node {
                name: name.to_string(),
                owner: owner.to_string(),
                kind: NodeKind::File {
                    volume_path: volume_path.to_string(),
                },
                parent,
                user_grants: Vec::new(),
                group_grants: Vec::new(),
            },
        );
        if let Some(p) = parent {
            if let NodeKind::Collection { children } =
                &mut self.nodes.get_mut(&p).expect("checked above").kind
            {
                children.push(id);
            }
        }
        self.by_path.insert(volume_path.to_string(), id);
        Ok(id)
    }

    /// Move a collection under a new parent ("a collection of
    /// collections"), refusing cycles.
    pub fn reparent(
        &mut self,
        id: CollectionId,
        new_parent: CollectionId,
    ) -> Result<(), ShareError> {
        if !self.nodes.contains_key(&id) {
            return Err(ShareError::UnknownCollection(id));
        }
        if !self.nodes.contains_key(&new_parent) {
            return Err(ShareError::UnknownCollection(new_parent));
        }
        // Walk up from new_parent: id must not be an ancestor.
        let mut cursor = Some(new_parent);
        while let Some(c) = cursor {
            if c == id {
                return Err(ShareError::WouldCreateCycle);
            }
            cursor = self.nodes[&c].parent;
        }
        // Detach from the old parent.
        if let Some(old) = self.nodes[&id].parent {
            if let NodeKind::Collection { children } =
                &mut self.nodes.get_mut(&old).expect("parent exists").kind
            {
                children.retain(|&c| c != id);
            }
        }
        if let NodeKind::Collection { children } =
            &mut self.nodes.get_mut(&new_parent).expect("checked").kind
        {
            children.push(id);
        }
        self.nodes.get_mut(&id).expect("checked").parent = Some(new_parent);
        Ok(())
    }

    // ---- grants and resolution ---------------------------------------------

    /// Grant a user access on a node (any node of the tree).
    pub fn grant_user(
        &mut self,
        actor: &str,
        id: CollectionId,
        user: &str,
        perm: Permission,
    ) -> Result<(), ShareError> {
        let node = self
            .nodes
            .get_mut(&id)
            .ok_or(ShareError::UnknownCollection(id))?;
        if node.owner != actor {
            return Err(ShareError::PermissionDenied);
        }
        node.user_grants.push((user.to_string(), perm));
        Ok(())
    }

    pub fn grant_group(
        &mut self,
        actor: &str,
        id: CollectionId,
        group: &str,
        perm: Permission,
    ) -> Result<(), ShareError> {
        if !self.groups.contains_key(group) {
            return Err(ShareError::UnknownGroup(group.to_string()));
        }
        let node = self
            .nodes
            .get_mut(&id)
            .ok_or(ShareError::UnknownCollection(id))?;
        if node.owner != actor {
            return Err(ShareError::PermissionDenied);
        }
        node.group_grants.push((group.to_string(), perm));
        Ok(())
    }

    fn grants_allow(&self, node: &Node, user: &str, want: Permission) -> bool {
        let covers = |have: Permission| have == Permission::Write || want == Permission::Read;
        node.user_grants
            .iter()
            .any(|(u, p)| u == user && covers(*p))
            || node
                .group_grants
                .iter()
                .any(|(g, p)| self.in_group(g, user) && covers(*p))
    }

    /// Effective permission: owner always; otherwise any grant on the node
    /// or any ancestor collection.
    pub fn can_access(&self, user: &str, id: CollectionId, want: Permission) -> bool {
        let mut cursor = Some(id);
        while let Some(c) = cursor {
            let Some(node) = self.nodes.get(&c) else {
                return false;
            };
            if node.owner == user || self.grants_allow(node, user, want) {
                return true;
            }
            cursor = node.parent;
        }
        false
    }

    // ---- the share-directory watcher daemon --------------------------------

    /// One pass of the daemon that monitors the designated share
    /// directory: any file on the volume under `share_prefix` not yet in
    /// the database is registered (owned by the file's volume owner) under
    /// `parent`. Returns the newly registered ids.
    pub fn watch_directory(
        &mut self,
        volume: &Volume,
        share_prefix: &str,
        parent: CollectionId,
    ) -> Result<Vec<CollectionId>, ShareError> {
        if !self.nodes.contains_key(&parent) {
            return Err(ShareError::UnknownCollection(parent));
        }
        let mut new_ids = Vec::new();
        for path in volume.list() {
            if !path.starts_with(share_prefix) || self.by_path.contains_key(&path) {
                continue;
            }
            let (_, meta) = volume
                .read(&path)
                .map_err(|e| ShareError::StorageError(format!("{e:?}")))?;
            let name = path.rsplit('/').next().unwrap_or(&path).to_string();
            let id = self.register_file(&meta.owner, &name, &path, Some(parent))?;
            new_ids.push(id);
        }
        Ok(new_ids)
    }

    // ---- WebDAV-ish serving --------------------------------------------------

    /// `GET`: fetch a file's bytes if `user` may read it.
    pub fn webdav_get(
        &self,
        volume: &Volume,
        user: &str,
        id: CollectionId,
    ) -> Result<FileData, ShareError> {
        let node = self
            .nodes
            .get(&id)
            .ok_or(ShareError::UnknownCollection(id))?;
        if !self.can_access(user, id, Permission::Read) {
            return Err(ShareError::PermissionDenied);
        }
        match &node.kind {
            NodeKind::File { volume_path } => volume
                .read(volume_path)
                .map(|(d, _)| d)
                .map_err(|e| ShareError::StorageError(format!("{e:?}"))),
            NodeKind::Collection { .. } => Err(ShareError::NotAFile(id)),
        }
    }

    /// `PROPFIND` depth-1: list readable children of a collection.
    pub fn webdav_propfind(
        &self,
        user: &str,
        id: CollectionId,
    ) -> Result<Vec<CollectionId>, ShareError> {
        let node = self
            .nodes
            .get(&id)
            .ok_or(ShareError::UnknownCollection(id))?;
        if !self.can_access(user, id, Permission::Read) {
            return Err(ShareError::PermissionDenied);
        }
        match &node.kind {
            NodeKind::Collection { children } => Ok(children
                .iter()
                .copied()
                .filter(|c| self.can_access(user, *c, Permission::Read))
                .collect()),
            NodeKind::File { .. } => Ok(vec![id]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osdc_storage::GlusterVersion;

    fn volume() -> Volume {
        Volume::new("share", GlusterVersion::V3_3, 2, 2, 1 << 30, 1)
    }

    fn svc_with_project() -> (FileSharingService, CollectionId) {
        let mut s = FileSharingService::new();
        let project = s
            .create_collection("alice", "t2d-genes", None)
            .expect("create");
        (s, project)
    }

    #[test]
    fn hierarchy_file_collection_of_collections() {
        let (mut s, project) = svc_with_project();
        let runs = s
            .create_collection("alice", "runs", Some(project))
            .expect("create");
        let f = s
            .register_file("alice", "run1.vcf", "/share/run1.vcf", Some(runs))
            .expect("register");
        // PROPFIND from the top as the owner sees the nested structure.
        assert_eq!(s.webdav_propfind("alice", project).expect("ok"), vec![runs]);
        assert_eq!(s.webdav_propfind("alice", runs).expect("ok"), vec![f]);
    }

    #[test]
    fn grant_on_ancestor_covers_descendants() {
        let (mut s, project) = svc_with_project();
        let runs = s
            .create_collection("alice", "runs", Some(project))
            .expect("create");
        let f = s
            .register_file("alice", "r.vcf", "/share/r.vcf", Some(runs))
            .expect("register");
        assert!(!s.can_access("bob", f, Permission::Read));
        s.grant_user("alice", project, "bob", Permission::Read)
            .expect("grant");
        assert!(
            s.can_access("bob", f, Permission::Read),
            "inherited via hierarchy"
        );
        assert!(
            !s.can_access("bob", f, Permission::Write),
            "read grant only"
        );
    }

    #[test]
    fn group_grants_follow_membership() {
        let (mut s, project) = svc_with_project();
        s.create_group("alice", "t2d-consortium");
        s.add_member("alice", "t2d-consortium", "carol")
            .expect("add");
        s.grant_group("alice", project, "t2d-consortium", Permission::Write)
            .expect("grant");
        assert!(s.can_access("carol", project, Permission::Write));
        assert!(!s.can_access("dave", project, Permission::Read));
        // Membership changes take effect immediately.
        s.remove_member("alice", "t2d-consortium", "carol")
            .expect("remove");
        assert!(!s.can_access("carol", project, Permission::Read));
    }

    #[test]
    fn only_group_owner_modifies_membership() {
        let (mut s, _) = svc_with_project();
        s.create_group("alice", "g");
        assert_eq!(
            s.add_member("mallory", "g", "mallory").unwrap_err(),
            ShareError::NotGroupOwner
        );
        assert!(matches!(
            s.add_member("alice", "nope", "x").unwrap_err(),
            ShareError::UnknownGroup(_)
        ));
    }

    #[test]
    fn only_node_owner_grants() {
        let (mut s, project) = svc_with_project();
        assert_eq!(
            s.grant_user("mallory", project, "mallory", Permission::Write)
                .unwrap_err(),
            ShareError::PermissionDenied
        );
    }

    #[test]
    fn write_grant_implies_read() {
        let (mut s, project) = svc_with_project();
        s.grant_user("alice", project, "bob", Permission::Write)
            .expect("grant");
        assert!(s.can_access("bob", project, Permission::Read));
        assert!(s.can_access("bob", project, Permission::Write));
    }

    #[test]
    fn watcher_daemon_registers_new_share_files() {
        let (mut s, project) = svc_with_project();
        let mut vol = volume();
        vol.write(
            "/share/alice/genome.fa",
            FileData::bytes(b"ACGT".to_vec()),
            "alice",
        )
        .expect("write");
        vol.write(
            "/private/not-shared",
            FileData::bytes(b"x".to_vec()),
            "alice",
        )
        .expect("write");
        let new = s
            .watch_directory(&vol, "/share/", project)
            .expect("watch pass");
        assert_eq!(new.len(), 1);
        // A second pass is idempotent.
        assert!(s
            .watch_directory(&vol, "/share/", project)
            .expect("pass")
            .is_empty());
        // The registered file serves over WebDAV to the owner.
        let data = s.webdav_get(&vol, "alice", new[0]).expect("get");
        assert_eq!(data, FileData::bytes(b"ACGT".to_vec()));
    }

    #[test]
    fn webdav_enforces_permissions_and_types() {
        let (mut s, project) = svc_with_project();
        let mut vol = volume();
        vol.write("/share/f", FileData::bytes(b"data".to_vec()), "alice")
            .expect("write");
        let f = s
            .register_file("alice", "f", "/share/f", Some(project))
            .expect("register");
        assert_eq!(
            s.webdav_get(&vol, "bob", f).unwrap_err(),
            ShareError::PermissionDenied
        );
        assert_eq!(
            s.webdav_get(&vol, "alice", project).unwrap_err(),
            ShareError::NotAFile(project)
        );
        s.grant_user("alice", f, "bob", Permission::Read)
            .expect("grant");
        assert!(s.webdav_get(&vol, "bob", f).is_ok());
    }

    #[test]
    fn propfind_filters_unreadable_children() {
        let (mut s, project) = svc_with_project();
        let open = s
            .create_collection("alice", "open", Some(project))
            .expect("create");
        let closed = s
            .create_collection("alice", "closed", Some(project))
            .expect("create");
        // Bob may read 'open' only.
        s.grant_user("alice", open, "bob", Permission::Read)
            .expect("grant");
        // Bob cannot PROPFIND the project itself (no grant there)...
        assert_eq!(
            s.webdav_propfind("bob", project).unwrap_err(),
            ShareError::PermissionDenied
        );
        // ...but alice sees both, and if alice grants project-read, bob
        // sees both too (ancestor grant covers 'closed').
        assert_eq!(s.webdav_propfind("alice", project).expect("ok").len(), 2);
        s.grant_user("alice", project, "bob", Permission::Read)
            .expect("grant");
        assert_eq!(s.webdav_propfind("bob", project).expect("ok").len(), 2);
        let _ = closed;
    }

    #[test]
    fn reparent_refuses_cycles() {
        let (mut s, a) = svc_with_project();
        let b = s.create_collection("alice", "b", Some(a)).expect("create");
        let c = s.create_collection("alice", "c", Some(b)).expect("create");
        assert_eq!(s.reparent(a, c).unwrap_err(), ShareError::WouldCreateCycle);
        assert_eq!(s.reparent(a, a).unwrap_err(), ShareError::WouldCreateCycle);
        // Legal move: c up under a.
        s.reparent(c, a).expect("ok");
        assert_eq!(s.webdav_propfind("alice", a).expect("ok").len(), 2);
        assert!(s.webdav_propfind("alice", b).expect("ok").is_empty());
    }

    #[test]
    fn unknown_nodes_error() {
        let (mut s, _) = svc_with_project();
        let ghost = CollectionId(999);
        assert!(matches!(
            s.grant_user("alice", ghost, "b", Permission::Read)
                .unwrap_err(),
            ShareError::UnknownCollection(_)
        ));
        assert!(matches!(
            s.create_collection("alice", "x", Some(ghost)).unwrap_err(),
            ShareError::UnknownCollection(_)
        ));
        assert!(!s.can_access("alice", ghost, Permission::Read));
    }
}
