//! # osdc-tukey — the paper's primary contribution (§5, §6, Figure 1)
//!
//! "All of the OSDC user services are tied together by Tukey, an
//! application we have developed to provide a centralized and intuitive
//! web interface for accessing public and private cloud services." Tukey
//! is two layers:
//!
//! * **Tukey Console** ([`console`]) — the Django-descended web
//!   application: login, VM provisioning with usage and billing pages,
//!   file-sharing management, public-dataset management. Here it is a
//!   request router over typed operations, one per console page.
//! * **Tukey Middleware** ([`translation`], [`auth`]) — "HTTP based
//!   proxies for authentication and API translations that sit between the
//!   Tukey web application and the cloud software stacks." Authentication
//!   accepts Shibboleth or OpenID ([`auth`]), looks up the cloud
//!   credentials associated with the identifier ([`credentials`]), and
//!   the translation proxies "take in requests based on the OpenStack API
//!   and then issue commands to each cloud based on mappings outlined in
//!   configuration files" — reproduced literally: [`translation`] drives
//!   `osdc-compute`'s OpenStack and Eucalyptus dialects from serde-loaded
//!   mapping configs and aggregates per-cloud results, tagged by cloud
//!   name, into OpenStack-format JSON.
//!
//! The OSDC user services of §6 complete the crate: [`ark`] (dataset
//! identifiers with inflection resolution), [`sharing`] (users, groups,
//! hierarchical file-collections, WebDAV-style access), [`catalog`]
//! (curated public datasets), and [`billing`] (per-minute core-hour
//! polling, daily storage sweeps, monthly invoices).

pub mod ark;
pub mod auth;
pub mod billing;
pub mod catalog;
pub mod channel;
pub mod console;
pub mod credentials;
pub mod sharing;
pub mod translation;

pub use ark::{Ark, ArkService, Inflection};
pub use auth::{AuthError, AuthProxy, Identity, OpenIdProvider, ShibbolethIdp};
pub use billing::{BillingService, Invoice, Rates};
pub use catalog::{DatasetCatalog, DatasetRecord};
pub use channel::{channel_pair, ChannelError, SealedMessage, SecureChannel};
pub use console::{ConsoleError, SessionToken, TukeyConsole};
pub use credentials::{CloudCredential, CredentialVault};
pub use sharing::{CollectionId, FileSharingService, Permission, ShareError};
pub use translation::{
    CloudMapping, CloudStackKind, InjectedApiFault, ProxyError, TranslationProxy,
};
