//! Authentication proxies: Shibboleth and OpenID (§5.2).
//!
//! "The project began as an extension of Horizon, OpenStack's Dashboard.
//! However, the need to support different authentication methods and
//! other cloud software stacks required forking from the Horizon
//! project... Currently, the software can handle authentication via
//! Shibboleth or OpenID."
//!
//! The two providers model the two federated-identity shapes of the era:
//! a Shibboleth IdP releases signed *attribute assertions* for campus
//! accounts; an OpenID provider verifies ownership of an *identifier URL*.
//! Both reduce to one canonical [`Identity`] that the credential vault
//! keys on.

use std::collections::BTreeMap;

use osdc_crypto::md5::md5;

/// A canonical authenticated principal.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Identity {
    /// e.g. `shib:alice@uchicago.edu` or `openid:https://id.example/bob`.
    pub canonical: String,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuthError {
    UnknownPrincipal,
    BadAssertion,
    /// Shibboleth: the IdP is not in the federation metadata.
    UntrustedIdp(String),
}

/// A Shibboleth-style identity provider: holds campus accounts and signs
/// assertions with a per-IdP key (modelled as an MD5 MAC — fidelity to the
/// *flow*, not the crypto).
pub struct ShibbolethIdp {
    pub entity_id: String,
    signing_key: Vec<u8>,
    /// eppn → attributes (displayName, affiliation, ...).
    accounts: BTreeMap<String, BTreeMap<String, String>>,
}

/// A signed attribute assertion as released by an IdP.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assertion {
    pub idp_entity: String,
    /// eduPersonPrincipalName.
    pub eppn: String,
    pub attributes: BTreeMap<String, String>,
    signature: [u8; 16],
}

impl ShibbolethIdp {
    pub fn new(entity_id: impl Into<String>, signing_key: &[u8]) -> Self {
        ShibbolethIdp {
            entity_id: entity_id.into(),
            signing_key: signing_key.to_vec(),
            accounts: BTreeMap::new(),
        }
    }

    pub fn register(&mut self, eppn: &str, attributes: &[(&str, &str)]) {
        self.accounts.insert(
            eppn.to_string(),
            attributes
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        );
    }

    fn sign(&self, eppn: &str) -> [u8; 16] {
        let mut buf = self.signing_key.clone();
        buf.extend_from_slice(self.entity_id.as_bytes());
        buf.extend_from_slice(eppn.as_bytes());
        md5(&buf)
    }

    /// Authenticate a campus login and release an assertion.
    pub fn assert(&self, eppn: &str) -> Result<Assertion, AuthError> {
        let attributes = self
            .accounts
            .get(eppn)
            .cloned()
            .ok_or(AuthError::UnknownPrincipal)?;
        Ok(Assertion {
            idp_entity: self.entity_id.clone(),
            eppn: eppn.to_string(),
            attributes,
            signature: self.sign(eppn),
        })
    }
}

/// An OpenID provider: a set of identifier URLs it can vouch for.
pub struct OpenIdProvider {
    pub endpoint: String,
    identifiers: BTreeMap<String, [u8; 16]>, // url → password digest
}

impl OpenIdProvider {
    pub fn new(endpoint: impl Into<String>) -> Self {
        OpenIdProvider {
            endpoint: endpoint.into(),
            identifiers: BTreeMap::new(),
        }
    }

    pub fn register(&mut self, identifier_url: &str, password: &str) {
        self.identifiers
            .insert(identifier_url.to_string(), md5(password.as_bytes()));
    }

    /// Checkid flow: prove ownership of the identifier.
    pub fn verify(&self, identifier_url: &str, password: &str) -> Result<(), AuthError> {
        match self.identifiers.get(identifier_url) {
            Some(digest) if *digest == md5(password.as_bytes()) => Ok(()),
            Some(_) => Err(AuthError::BadAssertion),
            None => Err(AuthError::UnknownPrincipal),
        }
    }
}

/// The middleware's authentication proxy: trusts a set of Shibboleth IdPs
/// (federation metadata) and a set of OpenID endpoints, and canonicalizes
/// whoever arrives.
pub struct AuthProxy {
    /// entity id → signing key (federation metadata exchange).
    trusted_idps: BTreeMap<String, Vec<u8>>,
    trusted_openid_endpoints: Vec<String>,
}

impl Default for AuthProxy {
    fn default() -> Self {
        Self::new()
    }
}

impl AuthProxy {
    pub fn new() -> Self {
        AuthProxy {
            trusted_idps: BTreeMap::new(),
            trusted_openid_endpoints: Vec::new(),
        }
    }

    pub fn trust_idp(&mut self, entity_id: &str, signing_key: &[u8]) {
        self.trusted_idps
            .insert(entity_id.to_string(), signing_key.to_vec());
    }

    pub fn trust_openid(&mut self, endpoint: &str) {
        self.trusted_openid_endpoints.push(endpoint.to_string());
    }

    /// Validate a Shibboleth assertion and canonicalize.
    pub fn login_shibboleth(&self, assertion: &Assertion) -> Result<Identity, AuthError> {
        let key = self
            .trusted_idps
            .get(&assertion.idp_entity)
            .ok_or_else(|| AuthError::UntrustedIdp(assertion.idp_entity.clone()))?;
        let mut buf = key.clone();
        buf.extend_from_slice(assertion.idp_entity.as_bytes());
        buf.extend_from_slice(assertion.eppn.as_bytes());
        if md5(&buf) != assertion.signature {
            return Err(AuthError::BadAssertion);
        }
        Ok(Identity {
            canonical: format!("shib:{}", assertion.eppn),
        })
    }

    /// Complete an OpenID flow against a trusted endpoint.
    pub fn login_openid(
        &self,
        provider: &OpenIdProvider,
        identifier_url: &str,
        password: &str,
    ) -> Result<Identity, AuthError> {
        if !self
            .trusted_openid_endpoints
            .iter()
            .any(|e| e == &provider.endpoint)
        {
            return Err(AuthError::UntrustedIdp(provider.endpoint.clone()));
        }
        provider.verify(identifier_url, password)?;
        Ok(Identity {
            canonical: format!("openid:{identifier_url}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AuthProxy, ShibbolethIdp, OpenIdProvider) {
        let mut idp = ShibbolethIdp::new("urn:uchicago", b"uc-signing-key");
        idp.register(
            "alice@uchicago.edu",
            &[("displayName", "Alice A."), ("affiliation", "staff")],
        );
        let mut op = OpenIdProvider::new("https://openid.example/");
        op.register("https://openid.example/bob", "hunter2");
        let mut proxy = AuthProxy::new();
        proxy.trust_idp("urn:uchicago", b"uc-signing-key");
        proxy.trust_openid("https://openid.example/");
        (proxy, idp, op)
    }

    #[test]
    fn shibboleth_happy_path() {
        let (proxy, idp, _) = setup();
        let assertion = idp.assert("alice@uchicago.edu").expect("known eppn");
        assert_eq!(assertion.attributes["affiliation"], "staff");
        let id = proxy.login_shibboleth(&assertion).expect("trusted");
        assert_eq!(id.canonical, "shib:alice@uchicago.edu");
    }

    #[test]
    fn shibboleth_unknown_user() {
        let (_, idp, _) = setup();
        assert_eq!(
            idp.assert("eve@uchicago.edu").unwrap_err(),
            AuthError::UnknownPrincipal
        );
    }

    #[test]
    fn forged_assertion_rejected() {
        let (proxy, idp, _) = setup();
        let mut assertion = idp.assert("alice@uchicago.edu").expect("assert");
        assertion.eppn = "admin@uchicago.edu".to_string(); // tamper
        assert_eq!(
            proxy.login_shibboleth(&assertion).unwrap_err(),
            AuthError::BadAssertion
        );
    }

    #[test]
    fn untrusted_idp_rejected() {
        let (proxy, _, _) = setup();
        let rogue = ShibbolethIdp::new("urn:rogue", b"rogue-key");
        let mut rogue = rogue;
        rogue.register("x@rogue.example", &[]);
        let assertion = rogue.assert("x@rogue.example").expect("assert");
        assert!(matches!(
            proxy.login_shibboleth(&assertion).unwrap_err(),
            AuthError::UntrustedIdp(_)
        ));
    }

    #[test]
    fn openid_happy_path() {
        let (proxy, _, op) = setup();
        let id = proxy
            .login_openid(&op, "https://openid.example/bob", "hunter2")
            .expect("verified");
        assert_eq!(id.canonical, "openid:https://openid.example/bob");
    }

    #[test]
    fn openid_wrong_password_and_unknown_id() {
        let (proxy, _, op) = setup();
        assert_eq!(
            proxy
                .login_openid(&op, "https://openid.example/bob", "wrong")
                .unwrap_err(),
            AuthError::BadAssertion
        );
        assert_eq!(
            proxy
                .login_openid(&op, "https://openid.example/carol", "x")
                .unwrap_err(),
            AuthError::UnknownPrincipal
        );
    }

    #[test]
    fn untrusted_openid_endpoint() {
        let (proxy, _, _) = setup();
        let mut rogue = OpenIdProvider::new("https://rogue.example/");
        rogue.register("https://rogue.example/mallory", "pw");
        assert!(matches!(
            proxy
                .login_openid(&rogue, "https://rogue.example/mallory", "pw")
                .unwrap_err(),
            AuthError::UntrustedIdp(_)
        ));
    }

    #[test]
    fn identities_from_both_flows_are_distinct() {
        let (proxy, idp, op) = setup();
        let shib = proxy
            .login_shibboleth(&idp.assert("alice@uchicago.edu").expect("assert"))
            .expect("login");
        let oid = proxy
            .login_openid(&op, "https://openid.example/bob", "hunter2")
            .expect("login");
        assert_ne!(shib, oid);
    }
}
