//! API-translation proxies: one console dialect, many cloud stacks (§5.2).
//!
//! "The translation proxies take in requests based on the OpenStack API
//! and then issue commands to each cloud based on mappings outlined in
//! configuration files for each cloud. The result of each request is then
//! transformed according to the rules of the configuration file, tagged
//! with the cloud name and aggregated into a JSON response that matches
//! the format of the OpenStack API."
//!
//! Implemented exactly so: a [`CloudMapping`] is a (serde-loadable)
//! per-cloud configuration naming the stack dialect plus flavor/image
//! alias tables; [`TranslationProxy`] takes OpenStack-shaped requests,
//! speaks each backend's native dialect (JSON to the OpenStack stack,
//! `Action=...` query strings to the Eucalyptus stack — parsing its
//! XML-ish replies back), tags every result with `"cloud": <name>`, and
//! merges everything into one OpenStack-format JSON document.
//!
//! The dialect translation itself (canonical types, per-stack
//! `encode_*`/`decode_*` functions) lives in `osdc-providers`; this
//! module keeps Tukey's own concerns — credentials, fault gates, circuit
//! breakers, retries, the latency model, and the per-cloud aggregation —
//! and routes every request/response through the shared translators.
//! Same-seed `figure1_tukey` artifacts are byte-identical with the
//! pre-runtime proxy; the providers crate pins that as its compat gate.

use std::collections::BTreeMap;

use osdc_compute::{ApiError, CloudController, EucalyptusApi, OpenStackApi};
use osdc_providers::openstack::ResponseKind;
use osdc_providers::{
    eucalyptus as ec2q, openstack as nova, AliasTables, CanonicalRequest, CanonicalResponse,
    WireRequest, WireResponse,
};
use osdc_sim::{CircuitBreaker, RetryPolicy, SimDuration, SimRng, SimTime};
use osdc_telemetry::{CounterId, HistogramId, Telemetry};
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

use crate::auth::Identity;
use crate::credentials::CredentialVault;

/// Which software stack a cloud runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CloudStackKind {
    OpenStack,
    Eucalyptus,
}

/// Per-cloud mapping configuration — the "configuration files" of §5.2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CloudMapping {
    pub cloud: String,
    pub kind: CloudStackKind,
    /// Unified flavor name → native flavor name.
    #[serde(default)]
    pub flavor_aliases: BTreeMap<String, String>,
    /// Unified image name → native image id.
    #[serde(default)]
    pub image_aliases: BTreeMap<String, u64>,
}

impl CloudMapping {
    /// Load one mapping from its JSON configuration document.
    pub fn from_json(config: &str) -> Result<CloudMapping, String> {
        serde_json::from_str(config).map_err(|e| format!("bad cloud mapping config: {e}"))
    }

    /// The mapping's alias tables in the shared translator's form.
    pub fn alias_tables(&self) -> AliasTables {
        AliasTables {
            flavors: self.flavor_aliases.clone(),
            images: self.image_aliases.clone(),
        }
    }
}

/// Errors surfaced to the console.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProxyError {
    /// The identity has no credential for the target cloud.
    NotEnrolled {
        cloud: String,
    },
    UnknownCloud(String),
    UnknownImage(String),
    Backend(String),
    /// The backend hung past the client timeout (injected fault).
    Timeout {
        cloud: String,
    },
    /// A dialect translator rejected the wire traffic (malformed reply,
    /// unsupported operation). The old proxy dropped these on the floor
    /// (`if let Ok(xml) = ...`); now they surface here and are counted
    /// in telemetry (`tukey.fanout.errors` on the listing fan-out).
    Translation {
        cloud: String,
        detail: String,
    },
}

/// Per-cloud API fault injection (timeouts and 5xx-style errors), set by
/// the chaos layer. Probabilities are drawn from the proxy's seeded RNG,
/// so same-seed campaigns fail identically.
#[derive(Clone, Debug)]
pub struct InjectedApiFault {
    /// Probability a call returns a backend error.
    pub error_prob: f64,
    /// Probability a call hangs until the client timeout fires.
    pub timeout_prob: f64,
    /// Wall-clock (sim) cost of a timed-out call.
    pub timeout: SimDuration,
}

impl Default for InjectedApiFault {
    fn default() -> Self {
        InjectedApiFault {
            error_prob: 0.0,
            timeout_prob: 0.0,
            timeout: SimDuration::from_secs(30),
        }
    }
}

impl InjectedApiFault {
    pub fn is_clear(&self) -> bool {
        self.error_prob == 0.0 && self.timeout_prob == 0.0
    }
}

/// How a gated call failed before (or instead of) reaching the backend.
struct GateFailure {
    error: ProxyError,
    /// Sim-time cost of the failed call (a timeout burns its full window;
    /// a circuit-open rejection is free).
    latency: SimDuration,
    /// Whether the failure counts against the backend's circuit breaker.
    breaker_strike: bool,
}

impl From<ApiError> for ProxyError {
    fn from(e: ApiError) -> Self {
        ProxyError::Backend(format!("{e:?}"))
    }
}

/// The middleware's translation layer: owns the backend clouds.
pub struct TranslationProxy {
    backends: Vec<(CloudMapping, CloudController)>,
    tele: Telemetry,
    /// Per-backend latency histogram ids, parallel to `backends`,
    /// registered lazily on first use so a cloud added mid-run (or after
    /// `set_telemetry`) records like any other.
    latency_hists: Vec<Option<HistogramId>>,
    /// Injected API fault state, parallel to `backends`.
    faults: Vec<InjectedApiFault>,
    /// Optional circuit breaker per backend, parallel to `backends`.
    breakers: Vec<Option<CircuitBreaker>>,
    /// How targeted calls retry transient (injected/timeout) failures.
    retry: RetryPolicy,
    rng: SimRng,
    /// Modeled duration of the most recent proxied request, so callers
    /// (the console) can place their own spans on the sim clock.
    pub last_latency: SimDuration,
    /// Translation/backend failures swallowed by the listing fan-out in
    /// the old proxy, now collected per call for the console to surface.
    fanout_errors: Vec<(String, ProxyError)>,
    /// `tukey.fanout.errors` counter, registered lazily on first error so
    /// clean runs keep their telemetry exports unchanged.
    fanout_err_counter: Option<CounterId>,
}

/// Deterministic per-request backend latencies. There is no measured
/// latency model in `osdc-compute` (calls return instantly), so the proxy
/// charges each stack a fixed, era-plausible API cost plus a small
/// per-item translation cost — enough to make traces and per-cloud
/// histograms meaningful without adding nondeterminism.
fn backend_base_latency(kind: CloudStackKind) -> SimDuration {
    match kind {
        CloudStackKind::OpenStack => SimDuration::from_millis(35),
        CloudStackKind::Eucalyptus => SimDuration::from_millis(55),
    }
}

/// Per-result-item translation/tagging cost.
fn per_item_latency() -> SimDuration {
    SimDuration::from_millis(1)
}

/// Encode one canonical request onto this cloud's native wire via the
/// shared dialect translators.
fn encode_for(
    mapping: &CloudMapping,
    req: &CanonicalRequest,
    tables: &AliasTables,
) -> Result<WireRequest, ProxyError> {
    match mapping.kind {
        CloudStackKind::OpenStack => nova::encode_request(req, tables, Default::default()),
        CloudStackKind::Eucalyptus => ec2q::encode_request(req, tables, Default::default()),
    }
    .map_err(|e| ProxyError::Translation {
        cloud: mapping.cloud.clone(),
        detail: e.to_string(),
    })
}

/// Dispatch one wire request to the matching native backend API. The
/// wire family picks the server: REST goes to the OpenStack API, query
/// strings to the Eucalyptus API.
fn serve_wire(
    controller: &mut CloudController,
    user: &str,
    wire: &WireRequest,
    at: SimTime,
) -> Result<WireResponse, ProxyError> {
    match wire {
        WireRequest::Rest { method, path, body } => OpenStackApi::new(controller)
            .handle(user, method, path, body.as_ref(), at)
            .map(WireResponse::Json)
            .map_err(ProxyError::from),
        WireRequest::Query(q) => EucalyptusApi::new(controller)
            .handle(user, q, at)
            .map(WireResponse::Xml)
            .map_err(ProxyError::from),
    }
}

/// Decode one native wire reply back into canonical form.
fn decode_for(
    mapping: &CloudMapping,
    ctx: &ResponseKind,
    resp: &WireResponse,
) -> Result<CanonicalResponse, ProxyError> {
    match mapping.kind {
        CloudStackKind::OpenStack => nova::decode_response(ctx, resp),
        CloudStackKind::Eucalyptus => ec2q::decode_response(ctx, resp),
    }
    .map_err(|e| ProxyError::Translation {
        cloud: mapping.cloud.clone(),
        detail: e.to_string(),
    })
}

/// One backend's leg of the listing fan-out: encode `ListInstances` for
/// its dialect, serve it natively, decode the reply, and render each
/// record back into OpenStack-format JSON tagged with the cloud name.
fn dialect_list(
    mapping: &CloudMapping,
    controller: &mut CloudController,
    user: &str,
    now: SimTime,
) -> Result<Vec<Value>, ProxyError> {
    let tables = mapping.alias_tables();
    let wire = encode_for(mapping, &CanonicalRequest::ListInstances, &tables)?;
    let resp = serve_wire(controller, user, &wire, now)?;
    match decode_for(mapping, &ResponseKind::Instances, &resp)? {
        CanonicalResponse::Instances(recs) => Ok(recs
            .iter()
            .map(|r| {
                let mut item = nova::render_instance(r);
                item["cloud"] = json!(mapping.cloud);
                item
            })
            .collect()),
        other => Err(ProxyError::Translation {
            cloud: mapping.cloud.clone(),
            detail: format!("listing decoded to unexpected response: {other:?}"),
        }),
    }
}

impl TranslationProxy {
    pub fn new(backends: Vec<(CloudMapping, CloudController)>) -> Self {
        assert!(
            {
                let mut names: Vec<&str> = backends.iter().map(|(m, _)| m.cloud.as_str()).collect();
                names.sort_unstable();
                names.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate cloud names in proxy config"
        );
        let n = backends.len();
        TranslationProxy {
            backends,
            tele: Telemetry::disabled(),
            latency_hists: vec![None; n],
            faults: vec![InjectedApiFault::default(); n],
            breakers: vec![None; n],
            retry: RetryPolicy::None,
            rng: SimRng::new(0x70cb),
            last_latency: SimDuration::ZERO,
            fanout_errors: Vec::new(),
            fanout_err_counter: None,
        }
    }

    /// Attach a telemetry handle: spans per proxied request and (lazily)
    /// one latency histogram per backend cloud.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.latency_hists = vec![None; self.backends.len()];
        self.fanout_err_counter = None;
        self.tele = tele;
    }

    /// Drain the fan-out failures collected since the last call. The old
    /// proxy dropped these silently; the console (or a campaign driver)
    /// now decides how to present a partially-degraded landing page.
    pub fn take_fanout_errors(&mut self) -> Vec<(String, ProxyError)> {
        std::mem::take(&mut self.fanout_errors)
    }

    /// Record one swallowed-by-aggregation failure: kept for
    /// [`Self::take_fanout_errors`] and counted in telemetry.
    fn note_fanout_error(&mut self, cloud: &str, err: ProxyError) {
        if self.tele.is_enabled() {
            let c = match self.fanout_err_counter {
                Some(c) => c,
                None => {
                    let c = self.tele.counter("tukey.fanout.errors");
                    self.fanout_err_counter = Some(c);
                    c
                }
            };
            self.tele.incr(c);
        }
        self.fanout_errors.push((cloud.to_string(), err));
    }

    /// Register a cloud mid-run: the console starts aggregating it on the
    /// next request, and its latency histogram appears on first use.
    pub fn add_backend(&mut self, mapping: CloudMapping, controller: CloudController) {
        assert!(
            self.backends.iter().all(|(m, _)| m.cloud != mapping.cloud),
            "duplicate cloud names in proxy config"
        );
        self.backends.push((mapping, controller));
        self.latency_hists.push(None);
        self.faults.push(InjectedApiFault::default());
        self.breakers.push(None);
    }

    /// How targeted proxy calls (boot/delete/probe) respond to transient
    /// backend failures. Defaults to [`RetryPolicy::None`].
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Guard one backend with a circuit breaker.
    pub fn set_breaker(&mut self, cloud: &str, breaker: CircuitBreaker) -> Result<(), ProxyError> {
        let bi = self.backend_index(cloud)?;
        self.breakers[bi] = Some(breaker);
        Ok(())
    }

    /// Inject (or, with a default fault, clear) API failures on one cloud.
    pub fn inject_api_fault(
        &mut self,
        cloud: &str,
        fault: InjectedApiFault,
    ) -> Result<(), ProxyError> {
        let bi = self.backend_index(cloud)?;
        self.faults[bi] = fault;
        Ok(())
    }

    /// Reseed the fault-draw RNG (campaigns pin this for reproducibility).
    pub fn reseed_faults(&mut self, seed: u64) {
        self.rng = SimRng::new(seed);
    }

    /// The cloud's latency histogram, registered on first use (a backend
    /// added mid-run must not crash or go unrecorded).
    fn latency_hist(&mut self, backend_idx: usize) -> HistogramId {
        if let Some(h) = self.latency_hists[backend_idx] {
            return h;
        }
        let h = self.tele.histogram(&format!(
            "tukey.cloud.{}.latency_ms",
            self.backends[backend_idx].0.cloud
        ));
        self.latency_hists[backend_idx] = Some(h);
        h
    }

    /// Trace one backend call: a `translation/<cloud>` span from `at` for
    /// `latency`, recorded into that cloud's latency histogram.
    fn trace_backend_call(&mut self, backend_idx: usize, at: SimTime, latency: SimDuration) {
        if !self.tele.is_enabled() {
            return;
        }
        let span = self.tele.span_start(
            &format!("translation/{}", self.backends[backend_idx].0.cloud),
            at,
        );
        self.tele.span_end(span, at + latency);
        let h = self.latency_hist(backend_idx);
        self.tele.observe(h, latency.as_secs_f64() * 1e3);
    }

    /// Admission control for one backend call at `at`: the circuit
    /// breaker may reject it, and injected faults may time it out or
    /// error it before it reaches the backend.
    fn fault_gate(&mut self, backend_idx: usize, at: SimTime) -> Result<(), GateFailure> {
        let cloud = &self.backends[backend_idx].0.cloud;
        if let Some(b) = &mut self.breakers[backend_idx] {
            if !b.allow(at) {
                return Err(GateFailure {
                    error: ProxyError::Backend(format!("circuit open: {cloud}")),
                    latency: SimDuration::ZERO,
                    breaker_strike: false,
                });
            }
        }
        let fault = &self.faults[backend_idx];
        if fault.timeout_prob > 0.0 && self.rng.chance(fault.timeout_prob) {
            return Err(GateFailure {
                error: ProxyError::Timeout {
                    cloud: cloud.clone(),
                },
                latency: self.faults[backend_idx].timeout,
                breaker_strike: true,
            });
        }
        if fault.error_prob > 0.0 && self.rng.chance(fault.error_prob) {
            let kind = self.backends[backend_idx].0.kind;
            return Err(GateFailure {
                error: ProxyError::Backend(format!("injected API error: {cloud}")),
                latency: backend_base_latency(kind),
                breaker_strike: true,
            });
        }
        Ok(())
    }

    /// Run one backend operation behind the fault gate, the circuit
    /// breaker and the retry policy. `op` is the real (infallible-latency)
    /// backend dispatch; `latency` is charged per successful attempt.
    /// Transient failures (injected errors/timeouts, open circuits) are
    /// retried per the policy with the backoff added to the modeled
    /// latency; mapping/API errors surface immediately.
    fn guarded_call<T>(
        &mut self,
        backend_idx: usize,
        now: SimTime,
        latency: SimDuration,
        mut op: impl FnMut(&mut (CloudMapping, CloudController), SimTime) -> Result<T, ProxyError>,
    ) -> Result<T, ProxyError> {
        let mut cursor = now;
        let mut failures = 0u32;
        let outcome = loop {
            match self.fault_gate(backend_idx, cursor) {
                Ok(()) => {
                    let result = op(&mut self.backends[backend_idx], cursor);
                    self.trace_backend_call(backend_idx, cursor, latency);
                    cursor += latency;
                    match result {
                        Ok(v) => {
                            if let Some(b) = &mut self.breakers[backend_idx] {
                                b.on_success();
                            }
                            break Ok(v);
                        }
                        // Real API errors are deterministic (bad flavor,
                        // no capacity): retrying cannot help.
                        Err(e) => break Err(e),
                    }
                }
                Err(gate) => {
                    if !gate.latency.is_zero() {
                        self.trace_backend_call(backend_idx, cursor, gate.latency);
                    }
                    cursor += gate.latency;
                    if gate.breaker_strike {
                        if let Some(b) = &mut self.breakers[backend_idx] {
                            b.on_failure(cursor);
                        }
                    }
                    match self.retry.delay(failures, &mut self.rng) {
                        Some(delay) => {
                            failures += 1;
                            cursor += delay;
                        }
                        None => break Err(gate.error),
                    }
                }
            }
        };
        self.last_latency = cursor.saturating_since(now);
        outcome
    }

    pub fn cloud_names(&self) -> Vec<&str> {
        self.backends
            .iter()
            .map(|(m, _)| m.cloud.as_str())
            .collect()
    }

    pub fn controller(&self, cloud: &str) -> Option<&CloudController> {
        self.backends
            .iter()
            .find(|(m, _)| m.cloud == cloud)
            .map(|(_, c)| c)
    }

    fn backend_index(&self, cloud: &str) -> Result<usize, ProxyError> {
        self.backends
            .iter()
            .position(|(m, _)| m.cloud == cloud)
            .ok_or_else(|| ProxyError::UnknownCloud(cloud.to_string()))
    }

    /// Resolve the cloud-local username for this identity on this cloud.
    fn cloud_user(
        vault: &CredentialVault,
        id: &Identity,
        cloud: &str,
    ) -> Result<String, ProxyError> {
        vault
            .lookup(id, cloud)
            .map(|c| c.cloud_user)
            .ok_or_else(|| ProxyError::NotEnrolled {
                cloud: cloud.to_string(),
            })
    }

    /// `GET /servers` across every cloud the identity is enrolled in —
    /// the console's landing page. Each entry carries `"cloud": name`.
    pub fn list_servers(&mut self, vault: &CredentialVault, id: &Identity, now: SimTime) -> Value {
        let mut merged: Vec<Value> = Vec::new();
        // `(backend index, items translated, gate-failure latency)` per
        // cloud actually queried, for the latency model + spans applied
        // after the fan-out.
        let mut calls: Vec<(usize, usize, Option<SimDuration>)> = Vec::new();
        let enrolled: Vec<(usize, String)> = self
            .backends
            .iter()
            .enumerate()
            .filter_map(|(bi, (m, _))| {
                // Not enrolled on a cloud: skip it silently.
                vault.lookup(id, &m.cloud).map(|c| (bi, c.cloud_user))
            })
            .collect();
        for (bi, user) in enrolled {
            // A faulted backend contributes nothing this poll: the landing
            // page degrades to the clouds that answered (no retries on the
            // fan-out path — the next poll is the retry).
            if let Err(gate) = self.fault_gate(bi, now) {
                if gate.breaker_strike {
                    if let Some(b) = &mut self.breakers[bi] {
                        b.on_failure(now + gate.latency);
                    }
                }
                calls.push((bi, 0, Some(gate.latency)));
                continue;
            }
            if let Some(b) = &mut self.breakers[bi] {
                b.on_success();
            }
            let before = merged.len();
            // Both dialects run the same encode → serve → decode path
            // through the shared translators; failures degrade this
            // cloud's leg to zero items but are surfaced and counted,
            // never silently dropped.
            let leg = {
                let (mapping, controller) = &mut self.backends[bi];
                dialect_list(mapping, controller, &user, now)
            };
            match leg {
                Ok(items) => merged.extend(items),
                Err(e) => {
                    let cloud = self.backends[bi].0.cloud.clone();
                    self.note_fanout_error(&cloud, e);
                }
            }
            calls.push((bi, merged.len() - before, None));
        }
        // Sequential fan-out on the sim clock: each backend call starts
        // when the previous one returns, as the single-threaded proxy of
        // §5.2 would behave. Timed-out backends burn their window;
        // circuit-open rejections are free.
        let mut cursor = now;
        for (bi, items, gate_latency) in calls {
            let latency = match gate_latency {
                Some(l) => l,
                None => {
                    backend_base_latency(self.backends[bi].0.kind)
                        + SimDuration::from_millis(items as u64 * per_item_latency().as_millis())
                }
            };
            if !latency.is_zero() {
                self.trace_backend_call(bi, cursor, latency);
            }
            cursor += latency;
        }
        self.last_latency = cursor.saturating_since(now);
        json!({ "servers": merged })
    }

    /// Availability probe against one cloud: a minimal list call through
    /// the fault gate, breaker and retry policy. The campaign driver
    /// polls this to measure time-to-recovery of a faulted API.
    pub fn probe(&mut self, cloud: &str, now: SimTime) -> Result<SimDuration, ProxyError> {
        let bi = self.backend_index(cloud)?;
        let latency = backend_base_latency(self.backends[bi].0.kind);
        self.guarded_call(bi, now, latency, |(mapping, controller), at| {
            match mapping.kind {
                CloudStackKind::OpenStack => {
                    // The probe user owns nothing; an empty listing is a
                    // healthy reply.
                    OpenStackApi::new(controller)
                        .handle("__probe__", "GET", "/servers", None, at)
                        .map(|_| ())
                        .map_err(ProxyError::from)
                }
                CloudStackKind::Eucalyptus => EucalyptusApi::new(controller)
                    .handle("__probe__", "Action=DescribeInstances", at)
                    .map(|_| ())
                    .map_err(ProxyError::from),
            }
        })?;
        Ok(self.last_latency)
    }

    /// `POST /servers` targeted at one cloud, with unified flavor/image
    /// names translated through the mapping config. (The argument list
    /// mirrors the console form's fields one-to-one.)
    #[allow(clippy::too_many_arguments)]
    pub fn boot_server(
        &mut self,
        vault: &CredentialVault,
        id: &Identity,
        cloud: &str,
        name: &str,
        unified_flavor: &str,
        unified_image: &str,
        now: SimTime,
    ) -> Result<Value, ProxyError> {
        let user = Self::cloud_user(vault, id, cloud)?;
        let bi = self.backend_index(cloud)?;
        let mapping = &self.backends[bi].0;
        let kind = mapping.kind;
        let image_id = *mapping
            .image_aliases
            .get(unified_image)
            .ok_or_else(|| ProxyError::UnknownImage(unified_image.to_string()))?;
        let req = CanonicalRequest::LaunchInstance {
            name: name.to_string(),
            flavor: unified_flavor.to_string(),
            image: image_id,
        };
        let ctx = ResponseKind::of(&req);
        let wire = encode_for(mapping, &req, &mapping.alias_tables())?;
        let latency = backend_base_latency(kind) + per_item_latency();
        let mut result = self.guarded_call(bi, now, latency, |(mapping, controller), at| {
            let resp = serve_wire(controller, &user, &wire, at)?;
            match decode_for(mapping, &ctx, &resp)? {
                CanonicalResponse::Launched(rec) => Ok(nova::render_launch(&rec)),
                other => Err(ProxyError::Translation {
                    cloud: mapping.cloud.clone(),
                    detail: format!("boot decoded to unexpected response: {other:?}"),
                }),
            }
        })?;
        result["server"]["cloud"] = json!(cloud);
        Ok(result)
    }

    /// `DELETE /servers/{id}` on one cloud.
    pub fn delete_server(
        &mut self,
        vault: &CredentialVault,
        id: &Identity,
        cloud: &str,
        server_id: u64,
        now: SimTime,
    ) -> Result<(), ProxyError> {
        let user = Self::cloud_user(vault, id, cloud)?;
        let bi = self.backend_index(cloud)?;
        let mapping = &self.backends[bi].0;
        let req = CanonicalRequest::TerminateInstance { id: server_id };
        let ctx = ResponseKind::of(&req);
        let wire = encode_for(mapping, &req, &mapping.alias_tables())?;
        let latency = backend_base_latency(mapping.kind);
        self.guarded_call(bi, now, latency, |(mapping, controller), at| {
            let resp = serve_wire(controller, &user, &wire, at)?;
            decode_for(mapping, &ctx, &resp).map(|_| ())
        })
    }

    /// Aggregate per-minute usage across clouds for the billing poller
    /// (§6.4): `cloud → active cores`.
    pub fn usage(&self, vault: &CredentialVault, id: &Identity) -> BTreeMap<String, u32> {
        let mut usage = BTreeMap::new();
        for (mapping, controller) in &self.backends {
            if let Some(cred) = vault.lookup(id, &mapping.cloud) {
                let snap = controller.usage(&cred.cloud_user);
                if snap.cores > 0 {
                    usage.insert(mapping.cloud.clone(), snap.cores);
                }
            }
        }
        usage
    }

    /// Every (identity-agnostic) active cloud user, for billing sweeps.
    pub fn active_cloud_users(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (mapping, controller) in &self.backends {
            for user in controller.active_users() {
                out.push((mapping.cloud.clone(), user));
            }
        }
        out
    }
}

/// The standard two-cloud OSDC proxy configuration (OSDC-Adler on
/// OpenStack, OSDC-Sullivan on Eucalyptus), one rack each by default.
pub fn osdc_proxy(racks_each: usize) -> TranslationProxy {
    let adler_cfg = r#"{
        "cloud": "adler",
        "kind": "OpenStack",
        "flavor_aliases": {},
        "image_aliases": {"ubuntu-base": 1, "bionimbus-genomics": 2,
                           "matsu-earth-obs": 3, "bookworm-nlp": 4}
    }"#;
    let sullivan_cfg = r#"{
        "cloud": "sullivan",
        "kind": "Eucalyptus",
        "flavor_aliases": {"m1.small": "m1.small", "m1.medium": "m1.medium",
                            "m1.large": "m1.large", "m1.xlarge": "m1.xlarge"},
        "image_aliases": {"ubuntu-base": 1, "bionimbus-genomics": 2,
                           "matsu-earth-obs": 3, "bookworm-nlp": 4}
    }"#;
    TranslationProxy::new(vec![
        (
            CloudMapping::from_json(adler_cfg).expect("static config parses"),
            CloudController::with_racks("adler", racks_each),
        ),
        (
            CloudMapping::from_json(sullivan_cfg).expect("static config parses"),
            CloudController::with_racks("sullivan", racks_each),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::credentials::CloudCredential;

    fn setup() -> (TranslationProxy, CredentialVault, Identity) {
        let proxy = osdc_proxy(1);
        let vault = CredentialVault::new();
        let id = Identity {
            canonical: "shib:alice@uchicago.edu".into(),
        };
        vault.enroll(&id, CloudCredential::new("adler", "alice", "K1", "S1"));
        vault.enroll(&id, CloudCredential::new("sullivan", "alice-s", "K2", "S2"));
        (proxy, vault, id)
    }

    #[test]
    fn config_files_parse() {
        let m = CloudMapping::from_json(
            r#"{"cloud": "x", "kind": "Eucalyptus", "image_aliases": {"img": 7}}"#,
        )
        .expect("parses");
        assert_eq!(m.kind, CloudStackKind::Eucalyptus);
        assert_eq!(m.image_aliases["img"], 7);
        assert!(CloudMapping::from_json("{nope").is_err());
    }

    #[test]
    fn boot_on_both_stacks_and_aggregate() {
        let (mut proxy, vault, id) = setup();
        let t = SimTime::ZERO;
        let a = proxy
            .boot_server(&vault, &id, "adler", "vm-a", "m1.small", "ubuntu-base", t)
            .expect("adler boots");
        assert_eq!(a["server"]["cloud"], "adler");
        let s = proxy
            .boot_server(
                &vault,
                &id,
                "sullivan",
                "vm-s",
                "m1.large",
                "bionimbus-genomics",
                t,
            )
            .expect("sullivan boots");
        assert_eq!(s["server"]["cloud"], "sullivan");

        // The aggregated listing is OpenStack-format JSON with per-cloud tags.
        let listing = proxy.list_servers(&vault, &id, t);
        let servers = listing["servers"].as_array().expect("array");
        assert_eq!(servers.len(), 2);
        let clouds: Vec<&str> = servers
            .iter()
            .map(|s| s["cloud"].as_str().expect("tagged"))
            .collect();
        assert!(clouds.contains(&"adler") && clouds.contains(&"sullivan"));
        // Eucalyptus state was translated into the OpenStack vocabulary.
        assert!(servers.iter().all(|s| s["status"] == "ACTIVE"));
    }

    #[test]
    fn usage_aggregates_cores_per_cloud() {
        let (mut proxy, vault, id) = setup();
        let t = SimTime::ZERO;
        proxy
            .boot_server(&vault, &id, "adler", "a", "m1.xlarge", "ubuntu-base", t)
            .expect("boots");
        proxy
            .boot_server(&vault, &id, "sullivan", "b", "m1.medium", "ubuntu-base", t)
            .expect("boots");
        let usage = proxy.usage(&vault, &id);
        assert_eq!(usage["adler"], 8);
        assert_eq!(usage["sullivan"], 2);
    }

    #[test]
    fn delete_works_through_both_dialects() {
        let (mut proxy, vault, id) = setup();
        let t = SimTime::ZERO;
        let a = proxy
            .boot_server(&vault, &id, "adler", "a", "m1.small", "ubuntu-base", t)
            .expect("boots");
        let s = proxy
            .boot_server(&vault, &id, "sullivan", "s", "m1.small", "ubuntu-base", t)
            .expect("boots");
        proxy
            .delete_server(
                &vault,
                &id,
                "adler",
                a["server"]["id"].as_u64().expect("id"),
                t,
            )
            .expect("deletes");
        proxy
            .delete_server(
                &vault,
                &id,
                "sullivan",
                s["server"]["id"].as_u64().expect("id"),
                t,
            )
            .expect("deletes");
        let listing = proxy.list_servers(&vault, &id, t);
        assert!(listing["servers"].as_array().expect("array").is_empty());
    }

    #[test]
    fn unenrolled_cloud_is_rejected_and_skipped() {
        let (mut proxy, vault, id) = setup();
        let poor = Identity {
            canonical: "openid:https://id.example/poor".into(),
        };
        let err = proxy
            .boot_server(
                &vault,
                &poor,
                "adler",
                "x",
                "m1.small",
                "ubuntu-base",
                SimTime::ZERO,
            )
            .expect_err("not enrolled");
        assert_eq!(
            err,
            ProxyError::NotEnrolled {
                cloud: "adler".into()
            }
        );
        // And the listing for an unenrolled identity is empty, not an error.
        let listing = proxy.list_servers(&vault, &poor, SimTime::ZERO);
        assert!(listing["servers"].as_array().expect("array").is_empty());
        let _ = id;
    }

    #[test]
    fn unknown_cloud_and_image() {
        let (mut proxy, vault, id) = setup();
        assert!(matches!(
            proxy.boot_server(
                &vault,
                &id,
                "nimbus",
                "x",
                "m1.small",
                "ubuntu-base",
                SimTime::ZERO
            ),
            Err(ProxyError::NotEnrolled { .. }) | Err(ProxyError::UnknownCloud(_))
        ));
        assert_eq!(
            proxy
                .boot_server(
                    &vault,
                    &id,
                    "adler",
                    "x",
                    "m1.small",
                    "windows-3.1",
                    SimTime::ZERO
                )
                .unwrap_err(),
            ProxyError::UnknownImage("windows-3.1".into())
        );
    }

    #[test]
    fn fanout_errors_surface_and_count() {
        let (mut proxy, vault, id) = setup();
        let tele = Telemetry::new();
        proxy.set_telemetry(tele.clone());
        // A clean fan-out collects nothing and registers no counter.
        proxy.list_servers(&vault, &id, SimTime::ZERO);
        assert!(proxy.take_fanout_errors().is_empty());
        assert_eq!(tele.counter_value("tukey.fanout.errors"), 0);
        // A translation failure is kept, typed, and counted — the old
        // proxy's `if let Ok(xml)` dropped this class on the floor.
        proxy.note_fanout_error(
            "sullivan",
            ProxyError::Translation {
                cloud: "sullivan".into(),
                detail: "ragged DescribeInstances reply".into(),
            },
        );
        let errs = proxy.take_fanout_errors();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].0, "sullivan");
        assert!(matches!(errs[0].1, ProxyError::Translation { .. }));
        assert!(proxy.take_fanout_errors().is_empty(), "drained");
        assert_eq!(tele.counter_value("tukey.fanout.errors"), 1);
    }

    #[test]
    fn injected_error_surfaces_and_retry_recovers() {
        let (mut proxy, vault, id) = setup();
        proxy.reseed_faults(11);
        proxy
            .inject_api_fault(
                "adler",
                InjectedApiFault {
                    error_prob: 1.0,
                    ..Default::default()
                },
            )
            .expect("known cloud");
        let err = proxy
            .boot_server(
                &vault,
                &id,
                "adler",
                "x",
                "m1.small",
                "ubuntu-base",
                SimTime::ZERO,
            )
            .expect_err("fault always fires, no retries");
        assert!(matches!(err, ProxyError::Backend(_)), "{err:?}");

        // 50% error rate with generous retries: the call gets through,
        // and the retries show up as added latency.
        proxy
            .inject_api_fault(
                "adler",
                InjectedApiFault {
                    error_prob: 0.5,
                    ..Default::default()
                },
            )
            .expect("known cloud");
        proxy.set_retry_policy(RetryPolicy::exponential(8));
        proxy
            .boot_server(
                &vault,
                &id,
                "adler",
                "x",
                "m1.small",
                "ubuntu-base",
                SimTime::ZERO,
            )
            .expect("retries ride out a 50% error rate (seed 11)");
    }

    #[test]
    fn timeout_burns_its_window() {
        let (mut proxy, vault, id) = setup();
        proxy
            .inject_api_fault(
                "sullivan",
                InjectedApiFault {
                    timeout_prob: 1.0,
                    timeout: SimDuration::from_secs(30),
                    ..Default::default()
                },
            )
            .expect("known cloud");
        let err = proxy
            .boot_server(
                &vault,
                &id,
                "sullivan",
                "x",
                "m1.small",
                "ubuntu-base",
                SimTime::ZERO,
            )
            .expect_err("always times out");
        assert_eq!(
            err,
            ProxyError::Timeout {
                cloud: "sullivan".into()
            }
        );
        assert_eq!(proxy.last_latency, SimDuration::from_secs(30));
        // The landing page degrades to the healthy cloud.
        let listing = proxy.list_servers(&vault, &id, SimTime::ZERO);
        assert!(listing["servers"].as_array().expect("array").is_empty());
    }

    #[test]
    fn breaker_opens_then_probe_closes_it() {
        let (mut proxy, vault, id) = setup();
        proxy
            .set_breaker("adler", CircuitBreaker::new(3, SimDuration::from_secs(60)))
            .expect("known cloud");
        proxy
            .inject_api_fault(
                "adler",
                InjectedApiFault {
                    error_prob: 1.0,
                    ..Default::default()
                },
            )
            .expect("known cloud");
        let t0 = SimTime::ZERO;
        for _ in 0..3 {
            proxy.probe("adler", t0).expect_err("injected failure");
        }
        // Circuit now open: calls fail fast without burning latency.
        let err = proxy.probe("adler", t0).expect_err("circuit open");
        assert_eq!(err, ProxyError::Backend("circuit open: adler".into()));
        assert_eq!(proxy.last_latency, SimDuration::ZERO);
        // Fault heals; after the cool-down the probe call closes the
        // circuit and traffic flows again.
        proxy
            .inject_api_fault("adler", InjectedApiFault::default())
            .expect("known cloud");
        let later = t0 + SimDuration::from_secs(61);
        proxy.probe("adler", later).expect("probe closes circuit");
        proxy
            .boot_server(&vault, &id, "adler", "x", "m1.small", "ubuntu-base", later)
            .expect("circuit closed");
    }

    #[test]
    fn fault_draws_are_seed_deterministic() {
        let run = |seed| {
            let (mut proxy, vault, id) = setup();
            proxy.reseed_faults(seed);
            proxy.set_retry_policy(RetryPolicy::exponential(3));
            proxy
                .inject_api_fault(
                    "adler",
                    InjectedApiFault {
                        error_prob: 0.5,
                        ..Default::default()
                    },
                )
                .expect("known cloud");
            (0..6)
                .map(|i| {
                    let r = proxy.boot_server(
                        &vault,
                        &id,
                        "adler",
                        &format!("vm{i}"),
                        "m1.small",
                        "ubuntu-base",
                        SimTime::ZERO,
                    );
                    (r.is_ok(), proxy.last_latency)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds fail differently");
    }

    #[test]
    #[should_panic(expected = "duplicate cloud names")]
    fn duplicate_clouds_rejected() {
        let m = CloudMapping::from_json(r#"{"cloud": "a", "kind": "OpenStack"}"#).expect("parses");
        TranslationProxy::new(vec![
            (m.clone(), CloudController::with_racks("a", 1)),
            (m, CloudController::with_racks("a2", 1)),
        ]);
    }
}
