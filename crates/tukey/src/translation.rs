//! API-translation proxies: one console dialect, many cloud stacks (§5.2).
//!
//! "The translation proxies take in requests based on the OpenStack API
//! and then issue commands to each cloud based on mappings outlined in
//! configuration files for each cloud. The result of each request is then
//! transformed according to the rules of the configuration file, tagged
//! with the cloud name and aggregated into a JSON response that matches
//! the format of the OpenStack API."
//!
//! Implemented exactly so: a [`CloudMapping`] is a (serde-loadable)
//! per-cloud configuration naming the stack dialect plus flavor/image
//! alias tables; [`TranslationProxy`] takes OpenStack-shaped requests,
//! speaks each backend's native dialect (JSON to the OpenStack stack,
//! `Action=...` query strings to the Eucalyptus stack — parsing its
//! XML-ish replies back), tags every result with `"cloud": <name>`, and
//! merges everything into one OpenStack-format JSON document.

use std::collections::BTreeMap;

use osdc_compute::{ApiError, CloudController, EucalyptusApi, OpenStackApi};
use osdc_sim::{SimDuration, SimTime};
use osdc_telemetry::{HistogramId, Telemetry};
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

use crate::auth::Identity;
use crate::credentials::CredentialVault;

/// Which software stack a cloud runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CloudStackKind {
    OpenStack,
    Eucalyptus,
}

/// Per-cloud mapping configuration — the "configuration files" of §5.2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CloudMapping {
    pub cloud: String,
    pub kind: CloudStackKind,
    /// Unified flavor name → native flavor name.
    #[serde(default)]
    pub flavor_aliases: BTreeMap<String, String>,
    /// Unified image name → native image id.
    #[serde(default)]
    pub image_aliases: BTreeMap<String, u64>,
}

impl CloudMapping {
    /// Load one mapping from its JSON configuration document.
    pub fn from_json(config: &str) -> Result<CloudMapping, String> {
        serde_json::from_str(config).map_err(|e| format!("bad cloud mapping config: {e}"))
    }

    fn native_flavor<'a>(&'a self, unified: &'a str) -> &'a str {
        self.flavor_aliases
            .get(unified)
            .map(String::as_str)
            .unwrap_or(unified)
    }
}

/// Errors surfaced to the console.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProxyError {
    /// The identity has no credential for the target cloud.
    NotEnrolled {
        cloud: String,
    },
    UnknownCloud(String),
    UnknownImage(String),
    Backend(String),
}

impl From<ApiError> for ProxyError {
    fn from(e: ApiError) -> Self {
        ProxyError::Backend(format!("{e:?}"))
    }
}

/// The middleware's translation layer: owns the backend clouds.
pub struct TranslationProxy {
    backends: Vec<(CloudMapping, CloudController)>,
    tele: Telemetry,
    /// Per-backend latency histogram ids, parallel to `backends`.
    latency_hists: Vec<HistogramId>,
    /// Modeled duration of the most recent proxied request, so callers
    /// (the console) can place their own spans on the sim clock.
    pub last_latency: SimDuration,
}

/// Deterministic per-request backend latencies. There is no measured
/// latency model in `osdc-compute` (calls return instantly), so the proxy
/// charges each stack a fixed, era-plausible API cost plus a small
/// per-item translation cost — enough to make traces and per-cloud
/// histograms meaningful without adding nondeterminism.
fn backend_base_latency(kind: CloudStackKind) -> SimDuration {
    match kind {
        CloudStackKind::OpenStack => SimDuration::from_millis(35),
        CloudStackKind::Eucalyptus => SimDuration::from_millis(55),
    }
}

/// Per-result-item translation/tagging cost.
fn per_item_latency() -> SimDuration {
    SimDuration::from_millis(1)
}

/// Pull `<tag>value</tag>` occurrences out of the Eucalyptus XML dialect.
fn xml_values<'a>(xml: &'a str, tag: &str) -> Vec<&'a str> {
    let open = format!("<{tag}>");
    let close = format!("</{tag}>");
    let mut out = Vec::new();
    let mut rest = xml;
    while let Some(start) = rest.find(&open) {
        let after = &rest[start + open.len()..];
        match after.find(&close) {
            Some(end) => {
                out.push(&after[..end]);
                rest = &after[end + close.len()..];
            }
            None => break,
        }
    }
    out
}

impl TranslationProxy {
    pub fn new(backends: Vec<(CloudMapping, CloudController)>) -> Self {
        assert!(
            {
                let mut names: Vec<&str> = backends.iter().map(|(m, _)| m.cloud.as_str()).collect();
                names.sort_unstable();
                names.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate cloud names in proxy config"
        );
        TranslationProxy {
            backends,
            tele: Telemetry::disabled(),
            latency_hists: Vec::new(),
            last_latency: SimDuration::ZERO,
        }
    }

    /// Attach a telemetry handle: spans per proxied request and one
    /// latency histogram per backend cloud.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.latency_hists = self
            .backends
            .iter()
            .map(|(m, _)| tele.histogram(&format!("tukey.cloud.{}.latency_ms", m.cloud)))
            .collect();
        self.tele = tele;
    }

    /// Trace one backend call: a `translation/<cloud>` span from `at` for
    /// `latency`, recorded into that cloud's latency histogram.
    fn trace_backend_call(&self, backend_idx: usize, at: SimTime, latency: SimDuration) {
        if !self.tele.is_enabled() {
            return;
        }
        let span = self.tele.span_start(
            &format!("translation/{}", self.backends[backend_idx].0.cloud),
            at,
        );
        self.tele.span_end(span, at + latency);
        if let Some(&h) = self.latency_hists.get(backend_idx) {
            self.tele.observe(h, latency.as_secs_f64() * 1e3);
        }
    }

    pub fn cloud_names(&self) -> Vec<&str> {
        self.backends
            .iter()
            .map(|(m, _)| m.cloud.as_str())
            .collect()
    }

    pub fn controller(&self, cloud: &str) -> Option<&CloudController> {
        self.backends
            .iter()
            .find(|(m, _)| m.cloud == cloud)
            .map(|(_, c)| c)
    }

    fn backend_index(&self, cloud: &str) -> Result<usize, ProxyError> {
        self.backends
            .iter()
            .position(|(m, _)| m.cloud == cloud)
            .ok_or_else(|| ProxyError::UnknownCloud(cloud.to_string()))
    }

    /// Resolve the cloud-local username for this identity on this cloud.
    fn cloud_user(
        vault: &CredentialVault,
        id: &Identity,
        cloud: &str,
    ) -> Result<String, ProxyError> {
        vault
            .lookup(id, cloud)
            .map(|c| c.cloud_user)
            .ok_or_else(|| ProxyError::NotEnrolled {
                cloud: cloud.to_string(),
            })
    }

    /// `GET /servers` across every cloud the identity is enrolled in —
    /// the console's landing page. Each entry carries `"cloud": name`.
    pub fn list_servers(&mut self, vault: &CredentialVault, id: &Identity, now: SimTime) -> Value {
        let mut merged: Vec<Value> = Vec::new();
        // `(backend index, items translated)` per cloud actually queried,
        // for the latency model + spans applied after the fan-out.
        let mut calls: Vec<(usize, usize)> = Vec::new();
        for (bi, (mapping, controller)) in self.backends.iter_mut().enumerate() {
            let Some(cred) = vault.lookup(id, &mapping.cloud) else {
                continue; // not enrolled on this cloud: skip silently
            };
            let before = merged.len();
            let user = cred.cloud_user;
            match mapping.kind {
                CloudStackKind::OpenStack => {
                    // Native call is already OpenStack-shaped.
                    if let Ok(resp) =
                        OpenStackApi::new(controller).handle(&user, "GET", "/servers", None, now)
                    {
                        if let Some(servers) = resp["servers"].as_array() {
                            for s in servers {
                                let mut s = s.clone();
                                s["cloud"] = json!(mapping.cloud);
                                merged.push(s);
                            }
                        }
                    }
                }
                CloudStackKind::Eucalyptus => {
                    // Native call speaks the query dialect; parse the XML
                    // back into OpenStack-format JSON.
                    if let Ok(xml) = EucalyptusApi::new(controller).handle(
                        &user,
                        "Action=DescribeInstances",
                        now,
                    ) {
                        let ids = xml_values(&xml, "instanceId");
                        let types = xml_values(&xml, "instanceType");
                        let states = xml_values(&xml, "name");
                        for ((iid, ty), st) in ids.iter().zip(&types).zip(&states) {
                            merged.push(json!({
                                "id": u64::from_str_radix(
                                    iid.trim_start_matches("i-"), 16).unwrap_or(0),
                                "name": iid,
                                "status": match *st {
                                    "running" => "ACTIVE",
                                    "pending" => "BUILD",
                                    "stopped" => "SHUTOFF",
                                    other => other,
                                },
                                "flavor": {"name": ty},
                                "cloud": mapping.cloud,
                            }));
                        }
                    }
                }
            }
            calls.push((bi, merged.len() - before));
        }
        // Sequential fan-out on the sim clock: each backend call starts
        // when the previous one returns, as the single-threaded proxy of
        // §5.2 would behave.
        let mut cursor = now;
        for (bi, items) in calls {
            let latency = backend_base_latency(self.backends[bi].0.kind)
                + SimDuration::from_millis(items as u64 * per_item_latency().as_millis());
            self.trace_backend_call(bi, cursor, latency);
            cursor += latency;
        }
        self.last_latency = cursor.saturating_since(now);
        json!({ "servers": merged })
    }

    /// `POST /servers` targeted at one cloud, with unified flavor/image
    /// names translated through the mapping config. (The argument list
    /// mirrors the console form's fields one-to-one.)
    #[allow(clippy::too_many_arguments)]
    pub fn boot_server(
        &mut self,
        vault: &CredentialVault,
        id: &Identity,
        cloud: &str,
        name: &str,
        unified_flavor: &str,
        unified_image: &str,
        now: SimTime,
    ) -> Result<Value, ProxyError> {
        let user = Self::cloud_user(vault, id, cloud)?;
        let bi = self.backend_index(cloud)?;
        let (mapping, controller) = &mut self.backends[bi];
        let kind = mapping.kind;
        let image_id = *mapping
            .image_aliases
            .get(unified_image)
            .ok_or_else(|| ProxyError::UnknownImage(unified_image.to_string()))?;
        let flavor = mapping.native_flavor(unified_flavor).to_string();
        let mut result = match mapping.kind {
            CloudStackKind::OpenStack => {
                let body = json!({"server": {
                    "name": name, "flavorRef": flavor, "imageRef": image_id,
                }});
                OpenStackApi::new(controller).handle(&user, "POST", "/servers", Some(&body), now)?
            }
            CloudStackKind::Eucalyptus => {
                let query = format!(
                    "Action=RunInstances&ImageId=emi-{image_id:08x}&InstanceType={flavor}&ClientToken={name}"
                );
                let xml = EucalyptusApi::new(controller).handle(&user, &query, now)?;
                let iid = xml_values(&xml, "instanceId")
                    .first()
                    .map(|s| s.to_string())
                    .unwrap_or_default();
                json!({"server": {
                    "id": u64::from_str_radix(iid.trim_start_matches("i-"), 16).unwrap_or(0),
                    "name": name,
                    "status": "ACTIVE",
                }})
            }
        };
        result["server"]["cloud"] = json!(cloud);
        let latency = backend_base_latency(kind) + per_item_latency();
        self.trace_backend_call(bi, now, latency);
        self.last_latency = latency;
        Ok(result)
    }

    /// `DELETE /servers/{id}` on one cloud.
    pub fn delete_server(
        &mut self,
        vault: &CredentialVault,
        id: &Identity,
        cloud: &str,
        server_id: u64,
        now: SimTime,
    ) -> Result<(), ProxyError> {
        let user = Self::cloud_user(vault, id, cloud)?;
        let bi = self.backend_index(cloud)?;
        let (mapping, controller) = &mut self.backends[bi];
        let kind = mapping.kind;
        match mapping.kind {
            CloudStackKind::OpenStack => {
                OpenStackApi::new(controller).handle(
                    &user,
                    "DELETE",
                    &format!("/servers/{server_id}"),
                    None,
                    now,
                )?;
            }
            CloudStackKind::Eucalyptus => {
                EucalyptusApi::new(controller).handle(
                    &user,
                    &format!("Action=TerminateInstances&InstanceId.1=i-{server_id:08x}"),
                    now,
                )?;
            }
        }
        let latency = backend_base_latency(kind);
        self.trace_backend_call(bi, now, latency);
        self.last_latency = latency;
        Ok(())
    }

    /// Aggregate per-minute usage across clouds for the billing poller
    /// (§6.4): `cloud → active cores`.
    pub fn usage(&self, vault: &CredentialVault, id: &Identity) -> BTreeMap<String, u32> {
        let mut usage = BTreeMap::new();
        for (mapping, controller) in &self.backends {
            if let Some(cred) = vault.lookup(id, &mapping.cloud) {
                let snap = controller.usage(&cred.cloud_user);
                if snap.cores > 0 {
                    usage.insert(mapping.cloud.clone(), snap.cores);
                }
            }
        }
        usage
    }

    /// Every (identity-agnostic) active cloud user, for billing sweeps.
    pub fn active_cloud_users(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (mapping, controller) in &self.backends {
            for user in controller.active_users() {
                out.push((mapping.cloud.clone(), user));
            }
        }
        out
    }
}

/// The standard two-cloud OSDC proxy configuration (OSDC-Adler on
/// OpenStack, OSDC-Sullivan on Eucalyptus), one rack each by default.
pub fn osdc_proxy(racks_each: usize) -> TranslationProxy {
    let adler_cfg = r#"{
        "cloud": "adler",
        "kind": "OpenStack",
        "flavor_aliases": {},
        "image_aliases": {"ubuntu-base": 1, "bionimbus-genomics": 2,
                           "matsu-earth-obs": 3, "bookworm-nlp": 4}
    }"#;
    let sullivan_cfg = r#"{
        "cloud": "sullivan",
        "kind": "Eucalyptus",
        "flavor_aliases": {"m1.small": "m1.small", "m1.medium": "m1.medium",
                            "m1.large": "m1.large", "m1.xlarge": "m1.xlarge"},
        "image_aliases": {"ubuntu-base": 1, "bionimbus-genomics": 2,
                           "matsu-earth-obs": 3, "bookworm-nlp": 4}
    }"#;
    TranslationProxy::new(vec![
        (
            CloudMapping::from_json(adler_cfg).expect("static config parses"),
            CloudController::with_racks("adler", racks_each),
        ),
        (
            CloudMapping::from_json(sullivan_cfg).expect("static config parses"),
            CloudController::with_racks("sullivan", racks_each),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::credentials::CloudCredential;

    fn setup() -> (TranslationProxy, CredentialVault, Identity) {
        let proxy = osdc_proxy(1);
        let vault = CredentialVault::new();
        let id = Identity {
            canonical: "shib:alice@uchicago.edu".into(),
        };
        vault.enroll(&id, CloudCredential::new("adler", "alice", "K1", "S1"));
        vault.enroll(&id, CloudCredential::new("sullivan", "alice-s", "K2", "S2"));
        (proxy, vault, id)
    }

    #[test]
    fn config_files_parse() {
        let m = CloudMapping::from_json(
            r#"{"cloud": "x", "kind": "Eucalyptus", "image_aliases": {"img": 7}}"#,
        )
        .expect("parses");
        assert_eq!(m.kind, CloudStackKind::Eucalyptus);
        assert_eq!(m.image_aliases["img"], 7);
        assert!(CloudMapping::from_json("{nope").is_err());
    }

    #[test]
    fn boot_on_both_stacks_and_aggregate() {
        let (mut proxy, vault, id) = setup();
        let t = SimTime::ZERO;
        let a = proxy
            .boot_server(&vault, &id, "adler", "vm-a", "m1.small", "ubuntu-base", t)
            .expect("adler boots");
        assert_eq!(a["server"]["cloud"], "adler");
        let s = proxy
            .boot_server(
                &vault,
                &id,
                "sullivan",
                "vm-s",
                "m1.large",
                "bionimbus-genomics",
                t,
            )
            .expect("sullivan boots");
        assert_eq!(s["server"]["cloud"], "sullivan");

        // The aggregated listing is OpenStack-format JSON with per-cloud tags.
        let listing = proxy.list_servers(&vault, &id, t);
        let servers = listing["servers"].as_array().expect("array");
        assert_eq!(servers.len(), 2);
        let clouds: Vec<&str> = servers
            .iter()
            .map(|s| s["cloud"].as_str().expect("tagged"))
            .collect();
        assert!(clouds.contains(&"adler") && clouds.contains(&"sullivan"));
        // Eucalyptus state was translated into the OpenStack vocabulary.
        assert!(servers.iter().all(|s| s["status"] == "ACTIVE"));
    }

    #[test]
    fn usage_aggregates_cores_per_cloud() {
        let (mut proxy, vault, id) = setup();
        let t = SimTime::ZERO;
        proxy
            .boot_server(&vault, &id, "adler", "a", "m1.xlarge", "ubuntu-base", t)
            .expect("boots");
        proxy
            .boot_server(&vault, &id, "sullivan", "b", "m1.medium", "ubuntu-base", t)
            .expect("boots");
        let usage = proxy.usage(&vault, &id);
        assert_eq!(usage["adler"], 8);
        assert_eq!(usage["sullivan"], 2);
    }

    #[test]
    fn delete_works_through_both_dialects() {
        let (mut proxy, vault, id) = setup();
        let t = SimTime::ZERO;
        let a = proxy
            .boot_server(&vault, &id, "adler", "a", "m1.small", "ubuntu-base", t)
            .expect("boots");
        let s = proxy
            .boot_server(&vault, &id, "sullivan", "s", "m1.small", "ubuntu-base", t)
            .expect("boots");
        proxy
            .delete_server(
                &vault,
                &id,
                "adler",
                a["server"]["id"].as_u64().expect("id"),
                t,
            )
            .expect("deletes");
        proxy
            .delete_server(
                &vault,
                &id,
                "sullivan",
                s["server"]["id"].as_u64().expect("id"),
                t,
            )
            .expect("deletes");
        let listing = proxy.list_servers(&vault, &id, t);
        assert!(listing["servers"].as_array().expect("array").is_empty());
    }

    #[test]
    fn unenrolled_cloud_is_rejected_and_skipped() {
        let (mut proxy, vault, id) = setup();
        let poor = Identity {
            canonical: "openid:https://id.example/poor".into(),
        };
        let err = proxy
            .boot_server(
                &vault,
                &poor,
                "adler",
                "x",
                "m1.small",
                "ubuntu-base",
                SimTime::ZERO,
            )
            .expect_err("not enrolled");
        assert_eq!(
            err,
            ProxyError::NotEnrolled {
                cloud: "adler".into()
            }
        );
        // And the listing for an unenrolled identity is empty, not an error.
        let listing = proxy.list_servers(&vault, &poor, SimTime::ZERO);
        assert!(listing["servers"].as_array().expect("array").is_empty());
        let _ = id;
    }

    #[test]
    fn unknown_cloud_and_image() {
        let (mut proxy, vault, id) = setup();
        assert!(matches!(
            proxy.boot_server(
                &vault,
                &id,
                "nimbus",
                "x",
                "m1.small",
                "ubuntu-base",
                SimTime::ZERO
            ),
            Err(ProxyError::NotEnrolled { .. }) | Err(ProxyError::UnknownCloud(_))
        ));
        assert_eq!(
            proxy
                .boot_server(
                    &vault,
                    &id,
                    "adler",
                    "x",
                    "m1.small",
                    "windows-3.1",
                    SimTime::ZERO
                )
                .unwrap_err(),
            ProxyError::UnknownImage("windows-3.1".into())
        );
    }

    #[test]
    fn xml_extraction() {
        let xml = "<a><instanceId>i-1</instanceId><x/><instanceId>i-2</instanceId></a>";
        assert_eq!(xml_values(xml, "instanceId"), vec!["i-1", "i-2"]);
        assert!(xml_values(xml, "missing").is_empty());
        assert!(xml_values("<open>unclosed", "open").is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate cloud names")]
    fn duplicate_clouds_rejected() {
        let m = CloudMapping::from_json(r#"{"cloud": "a", "kind": "OpenStack"}"#).expect("parses");
        TranslationProxy::new(vec![
            (m.clone(), CloudController::with_racks("a", 1)),
            (m, CloudController::with_racks("a2", 1)),
        ]);
    }
}
