//! # osdc-provision — bare metal to cloud in "much less than a day" (§7.3)
//!
//! "Our first full rack installation of OpenStack was performed manually
//! and took over a week to complete... we are using Chef, along with PXE
//! booting and IPMI, to fully automate provisioning with the goal of
//! taking a full rack from bare metal to a compute or storage cloud in
//! much less than a day."
//!
//! Two models, one experiment (X1):
//!
//! * [`manual`] — the baseline: a small crew of admins hand-installing 39
//!   servers, serialized by human attention and an 8-hour workday;
//! * [`pipeline`] — the automated flow the paper describes, stage for
//!   stage: IPMI power-on → PXE boot (image pull over a shared boot
//!   server NIC) → preseeded Ubuntu install (package pulls through a
//!   shared repository proxy) → post-install script + reboot → Chef
//!   registration → Chef converge (run-lists, bounded server concurrency)
//!   → cleanup. All 39 servers run concurrently, throttled only by the
//!   shared resources — which is exactly why automation wins by an order
//!   of magnitude. Stage failures retry with bounded attempts.

pub mod manual;
pub mod pipeline;

pub use manual::{manual_rack_install, ManualParams, ManualReport};
pub use pipeline::{provision_rack, PipelineParams, ProvisionReport, Stage};
