//! The manual baseline: "performed manually and took over a week".

use osdc_sim::{SimDuration, SimRng};

/// Knobs for the manual install model.
#[derive(Clone, Debug)]
pub struct ManualParams {
    pub servers: u32,
    /// Admins working in parallel.
    pub admins: u32,
    /// Hands-on hours per server (mean; lognormal spread).
    pub hands_on_hours_mean: f64,
    /// Probability a server needs re-work (wrong RAID config, typo'd
    /// network settings — discovered at validation).
    pub rework_prob: f64,
    /// Workday length in hours.
    pub workday_hours: f64,
}

impl Default for ManualParams {
    fn default() -> Self {
        ManualParams {
            servers: 39,
            admins: 2,
            // OS install + network + OpenStack packages + validation.
            hands_on_hours_mean: 2.5,
            rework_prob: 0.15,
            workday_hours: 8.0,
        }
    }
}

#[derive(Clone, Debug)]
pub struct ManualReport {
    pub total_hands_on_hours: f64,
    /// Wall-clock working days until the rack is done.
    pub wall_days: f64,
    pub wall_time: SimDuration,
    pub reworked_servers: u32,
}

/// Simulate a manual rack build. Hands-on time is sampled per server
/// (lognormal, σ=0.3), rework re-queues a server once at half cost, and
/// admins work `workday_hours`-hour days.
pub fn manual_rack_install(params: &ManualParams, seed: u64) -> ManualReport {
    let mut rng = SimRng::new(seed);
    let sigma = 0.3f64;
    // Lognormal with the requested mean: mu = ln(mean) - sigma²/2.
    let mu = params.hands_on_hours_mean.ln() - sigma * sigma / 2.0;
    let mut total_hours = 0.0;
    let mut reworked = 0;
    for _ in 0..params.servers {
        let hours = rng.lognormal(mu, sigma);
        total_hours += hours;
        if rng.chance(params.rework_prob) {
            reworked += 1;
            total_hours += hours * 0.5;
        }
    }
    // Admins parallelize the queue; wall time is bounded by the busiest
    // admin, and only `workday_hours` of each 24 advance the work.
    let per_admin_hours = total_hours / params.admins as f64;
    let wall_days = per_admin_hours / params.workday_hours;
    ManualReport {
        total_hands_on_hours: total_hours,
        wall_days,
        wall_time: SimDuration::from_secs_f64(wall_days * 24.0 * 3600.0),
        reworked_servers: reworked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rack_takes_over_a_week() {
        // The paper's experience: "took over a week to complete".
        let report = manual_rack_install(&ManualParams::default(), 42);
        assert!(
            report.wall_days > 4.0,
            "manual install should take about a work week+: {:.1} days",
            report.wall_days
        );
        assert!(report.total_hands_on_hours > 39.0 * 1.5);
    }

    #[test]
    fn more_admins_shorten_wall_time() {
        let base = manual_rack_install(&ManualParams::default(), 1);
        let crewed = manual_rack_install(
            &ManualParams {
                admins: 4,
                ..Default::default()
            },
            1,
        );
        assert!(crewed.wall_days < base.wall_days / 1.5);
        // Hands-on total is the same work regardless of crew size.
        assert!((crewed.total_hands_on_hours - base.total_hands_on_hours).abs() < 1e-9);
    }

    #[test]
    fn rework_increases_hours() {
        let clean = manual_rack_install(
            &ManualParams {
                rework_prob: 0.0,
                ..Default::default()
            },
            7,
        );
        let messy = manual_rack_install(
            &ManualParams {
                rework_prob: 0.9,
                ..Default::default()
            },
            7,
        );
        assert_eq!(clean.reworked_servers, 0);
        assert!(messy.reworked_servers > 30);
        assert!(messy.total_hands_on_hours > clean.total_hands_on_hours);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = manual_rack_install(&ManualParams::default(), 5);
        let b = manual_rack_install(&ManualParams::default(), 5);
        assert_eq!(a.total_hands_on_hours, b.total_hands_on_hours);
        assert_eq!(a.reworked_servers, b.reworked_servers);
    }
}
