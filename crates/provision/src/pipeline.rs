//! The automated pipeline: IPMI → PXE → preseed → Chef (§7.3).
//!
//! "Our system starts with one PXE boot server, a Chef server, and a set
//! of servers with IPMI configured. IPMI is triggered to boot the
//! servers, which then pull a start-up image and boot options from the
//! PXE boot server... the installer runs a script specified at the end of
//! the preseed file which sets up networking... Upon rebooting, the next
//! script double-checks the IPMI configuration, finishes partitioning the
//! disk and sets up additional RAIDs as necessary, before downloading and
//! installing the Chef client. The Chef client then checks in with the
//! Chef server and runs the 'recipes'... a final clean up script runs to
//! deliver us a fully functional OpenStack rack."
//!
//! Simulated on the discrete-event kernel: every server advances through
//! [`Stage`]s whose durations are sampled per server; the PXE/repo pulls
//! share the boot server's NIC (a [`TokenBucket`]) and Chef converges are
//! bounded by server concurrency (a [`ServicePool`]). Stage failures
//! retry up to a bound.

use osdc_sim::resource::{ServicePool, TokenBucket};
use osdc_sim::stats::Log2Histogram;
use osdc_sim::{Engine, RetryPolicy, Scheduler, SimDuration, SimRng, SimTime, Simulation};

/// The pipeline stages, in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    IpmiPowerOn,
    PxeImagePull,
    PreseedInstall,
    PostInstallScript,
    Reboot,
    ChefRegister,
    ChefConverge,
    Cleanup,
    Ready,
}

impl Stage {
    fn next(self) -> Option<Stage> {
        use Stage::*;
        Some(match self {
            IpmiPowerOn => PxeImagePull,
            PxeImagePull => PreseedInstall,
            PreseedInstall => PostInstallScript,
            PostInstallScript => Reboot,
            Reboot => ChefRegister,
            ChefRegister => ChefConverge,
            ChefConverge => Cleanup,
            Cleanup => Ready,
            Ready => return None,
        })
    }
}

/// Pipeline tuning.
#[derive(Clone, Debug)]
pub struct PipelineParams {
    pub servers: u32,
    /// PXE/repo boot-server NIC, bits/second (shared by image pulls and
    /// package installs).
    pub boot_server_bps: f64,
    /// Boot image size per server, bytes.
    pub boot_image_bytes: u64,
    /// Package payload per server during the preseed install, bytes.
    pub install_payload_bytes: u64,
    /// Concurrent Chef converges the server sustains.
    pub chef_concurrency: usize,
    /// Mean Chef converge minutes (lognormal).
    pub chef_converge_mins: f64,
    /// Per-stage transient failure probability (timeouts, flaky DHCP).
    pub stage_failure_prob: f64,
    /// Override failure probability for the ChefConverge stage (a broken
    /// cookbook, an unreachable Chef server — the chaos layer's knob).
    /// `None` means the converge fails like any other stage.
    pub chef_failure_prob: Option<f64>,
    /// Attempts per stage before declaring the server failed.
    pub max_attempts: u32,
    /// Spacing between retry attempts. The historical pipeline waited a
    /// flat 30 s; exponential backoff decorrelates a rack's worth of
    /// clients hammering a struggling Chef server.
    pub retry: RetryPolicy,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            servers: 39,
            boot_server_bps: 1e9,
            boot_image_bytes: 300 << 20,      // netboot + installer image
            install_payload_bytes: 900 << 20, // Ubuntu server package set
            chef_concurrency: 12,
            chef_converge_mins: 10.0,
            stage_failure_prob: 0.03,
            chef_failure_prob: None,
            max_attempts: 4,
            retry: RetryPolicy::fixed_30s(4),
        }
    }
}

/// Outcome of provisioning one rack.
#[derive(Clone, Debug)]
pub struct ProvisionReport {
    pub servers_ready: u32,
    pub servers_failed: u32,
    /// Time from IPMI trigger to the last server Ready.
    pub wall_time: SimDuration,
    pub total_retries: u32,
    /// Per-server completion minutes.
    pub completion_minutes: Log2Histogram,
}

#[derive(Debug)]
enum Ev {
    /// Begin a stage attempt on a server.
    Begin(u32, Stage),
    /// A stage attempt finished (maybe failing).
    Done(u32, Stage),
}

struct RackWorld {
    params: PipelineParams,
    rng: SimRng,
    pxe_nic: TokenBucket,
    chef: ServicePool,
    attempts: Vec<u32>,
    ready_at: Vec<Option<SimTime>>,
    failed: Vec<bool>,
    retries: u32,
}

impl RackWorld {
    fn sample_fixed(&mut self, mean_secs: f64) -> SimDuration {
        // Lognormal around the mean with modest spread.
        let sigma = 0.25f64;
        let mu = mean_secs.ln() - sigma * sigma / 2.0;
        SimDuration::from_secs_f64(self.rng.lognormal(mu, sigma))
    }

    /// Duration of one attempt of `stage` starting at `now`, accounting
    /// for shared resources.
    fn stage_duration(&mut self, now: SimTime, stage: Stage) -> SimDuration {
        match stage {
            Stage::IpmiPowerOn => self.sample_fixed(40.0),
            Stage::PxeImagePull => {
                let done = self
                    .pxe_nic
                    .accept(now, self.params.boot_image_bytes as f64 * 8.0);
                done.saturating_since(now) + self.sample_fixed(20.0)
            }
            Stage::PreseedInstall => {
                let done = self
                    .pxe_nic
                    .accept(now, self.params.install_payload_bytes as f64 * 8.0);
                // Disk writes + debconf run concurrently with the pull; the
                // pull is usually the long pole, plus fixed install work.
                done.saturating_since(now) + self.sample_fixed(240.0)
            }
            Stage::PostInstallScript => self.sample_fixed(90.0),
            Stage::Reboot => self.sample_fixed(150.0),
            Stage::ChefRegister => self.sample_fixed(45.0),
            Stage::ChefConverge => {
                let service = self.sample_fixed(self.params.chef_converge_mins * 60.0);
                let (_, finish) = self.chef.schedule(now, service);
                finish.saturating_since(now)
            }
            Stage::Cleanup => self.sample_fixed(60.0),
            Stage::Ready => SimDuration::ZERO,
        }
    }
}

impl Simulation for RackWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
        match event {
            Ev::Begin(server, stage) => {
                if stage == Stage::Ready {
                    self.ready_at[server as usize] = Some(now);
                    return;
                }
                let d = self.stage_duration(now, stage);
                sched.after(d, Ev::Done(server, stage));
            }
            Ev::Done(server, stage) => {
                // Transient failure?
                let failure_prob = match stage {
                    Stage::ChefConverge => self
                        .params
                        .chef_failure_prob
                        .unwrap_or(self.params.stage_failure_prob),
                    _ => self.params.stage_failure_prob,
                };
                if self.rng.chance(failure_prob) {
                    self.attempts[server as usize] += 1;
                    if self.attempts[server as usize] >= self.params.max_attempts {
                        self.failed[server as usize] = true;
                        return;
                    }
                    // Back off per the retry policy; a server whose policy
                    // budget runs out before max_attempts fails early.
                    let attempt = self.attempts[server as usize] - 1;
                    let retry = self.params.retry.clone();
                    match retry.delay(attempt, &mut self.rng) {
                        Some(delay) => {
                            self.retries += 1;
                            sched.after(delay, Ev::Begin(server, stage));
                        }
                        None => self.failed[server as usize] = true,
                    }
                    return;
                }
                let next = stage.next().expect("Ready never reaches Done");
                sched.after(SimDuration::ZERO, Ev::Begin(server, next));
            }
        }
    }
}

/// Run the automated pipeline for one rack.
pub fn provision_rack(params: &PipelineParams, seed: u64) -> ProvisionReport {
    let n = params.servers as usize;
    let mut world = RackWorld {
        pxe_nic: TokenBucket::new(params.boot_server_bps),
        chef: ServicePool::new(params.chef_concurrency),
        rng: SimRng::new(seed),
        attempts: vec![0; n],
        ready_at: vec![None; n],
        failed: vec![false; n],
        retries: 0,
        params: params.clone(),
    };
    let mut engine = Engine::new();
    for s in 0..params.servers {
        engine.schedule(SimTime::ZERO, Ev::Begin(s, Stage::IpmiPowerOn));
    }
    engine.run_to_completion(&mut world);

    let mut completion_minutes = Log2Histogram::new();
    let mut last = SimTime::ZERO;
    let mut ready = 0;
    for t in world.ready_at.iter().flatten() {
        ready += 1;
        last = last.max(*t);
        completion_minutes.record(t.as_secs_f64() / 60.0);
    }
    ProvisionReport {
        servers_ready: ready,
        servers_failed: world.failed.iter().filter(|&&f| f).count() as u32,
        wall_time: last.saturating_since(SimTime::ZERO),
        total_retries: world.retries,
        completion_minutes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn automated_rack_finishes_well_under_a_day() {
        let report = provision_rack(&PipelineParams::default(), 42);
        assert_eq!(report.servers_ready + report.servers_failed, 39);
        assert!(report.servers_ready >= 37, "most servers come up");
        let hours = report.wall_time.as_hours_f64();
        assert!(
            hours < 12.0,
            "automation target is 'much less than a day': {hours:.1}h"
        );
        assert!(hours > 0.5, "it is not instantaneous either: {hours:.2}h");
    }

    #[test]
    fn automation_beats_manual_by_order_of_magnitude() {
        let auto = provision_rack(&PipelineParams::default(), 1);
        let manual = crate::manual::manual_rack_install(&crate::manual::ManualParams::default(), 1);
        let speedup = manual.wall_time.as_secs_f64() / auto.wall_time.as_secs_f64();
        assert!(speedup > 8.0, "speedup only {speedup:.1}×");
    }

    #[test]
    fn shared_boot_nic_is_a_real_bottleneck() {
        let fast = provision_rack(
            &PipelineParams {
                boot_server_bps: 10e9,
                stage_failure_prob: 0.0,
                ..Default::default()
            },
            3,
        );
        let slow = provision_rack(
            &PipelineParams {
                boot_server_bps: 100e6,
                stage_failure_prob: 0.0,
                ..Default::default()
            },
            3,
        );
        assert!(slow.wall_time > fast.wall_time.mul_f64(1.5));
    }

    #[test]
    fn chef_concurrency_matters() {
        let narrow = provision_rack(
            &PipelineParams {
                chef_concurrency: 1,
                stage_failure_prob: 0.0,
                ..Default::default()
            },
            5,
        );
        let wide = provision_rack(
            &PipelineParams {
                chef_concurrency: 39,
                stage_failure_prob: 0.0,
                ..Default::default()
            },
            5,
        );
        assert!(narrow.wall_time > wide.wall_time.mul_f64(2.0));
    }

    #[test]
    fn failures_retry_and_eventually_fail_out() {
        let flaky = provision_rack(
            &PipelineParams {
                stage_failure_prob: 0.5,
                max_attempts: 2,
                ..Default::default()
            },
            7,
        );
        assert!(flaky.total_retries > 0);
        assert!(
            flaky.servers_failed > 0,
            "with p=0.5 and 2 attempts some servers die"
        );
    }

    #[test]
    fn zero_failure_prob_means_no_retries() {
        let clean = provision_rack(
            &PipelineParams {
                stage_failure_prob: 0.0,
                ..Default::default()
            },
            9,
        );
        assert_eq!(clean.total_retries, 0);
        assert_eq!(clean.servers_failed, 0);
        assert_eq!(clean.servers_ready, 39);
    }

    #[test]
    fn chef_failure_override_targets_the_converge() {
        // All stages clean except Chef converge, which always fails: every
        // server must burn its attempts there and fail out.
        let broken_cookbook = provision_rack(
            &PipelineParams {
                stage_failure_prob: 0.0,
                chef_failure_prob: Some(1.0),
                ..Default::default()
            },
            13,
        );
        assert_eq!(broken_cookbook.servers_ready, 0);
        assert_eq!(broken_cookbook.servers_failed, 39);
        // And clearing the override heals the rack.
        let fixed = provision_rack(
            &PipelineParams {
                stage_failure_prob: 0.0,
                chef_failure_prob: Some(0.0),
                ..Default::default()
            },
            13,
        );
        assert_eq!(fixed.servers_ready, 39);
    }

    #[test]
    fn exponential_backoff_spaces_retries_out() {
        let mk = |retry| {
            provision_rack(
                &PipelineParams {
                    stage_failure_prob: 0.25,
                    retry,
                    ..Default::default()
                },
                17,
            )
        };
        let fixed = mk(RetryPolicy::fixed_30s(4));
        let expo = mk(RetryPolicy::exponential(4));
        assert!(expo.total_retries > 0);
        // Same seed, same flakiness: both complete the rack; the policy
        // only changes the spacing (and thus wall time), not correctness.
        assert_eq!(
            fixed.servers_ready + fixed.servers_failed,
            expo.servers_ready + expo.servers_failed
        );
        // Exhausted-policy servers fail early rather than hang.
        let starved = provision_rack(
            &PipelineParams {
                stage_failure_prob: 0.5,
                retry: RetryPolicy::None,
                max_attempts: 4,
                ..Default::default()
            },
            19,
        );
        assert!(
            starved.servers_failed > 0,
            "no retries: first failure kills"
        );
        assert_eq!(starved.total_retries, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = provision_rack(&PipelineParams::default(), 11);
        let b = provision_rack(&PipelineParams::default(), 11);
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.total_retries, b.total_retries);
    }

    #[test]
    fn stage_order_is_the_papers() {
        use Stage::*;
        let mut s = IpmiPowerOn;
        let mut order = vec![s];
        while let Some(n) = s.next() {
            order.push(n);
            s = n;
        }
        assert_eq!(
            order,
            vec![
                IpmiPowerOn,
                PxeImagePull,
                PreseedInstall,
                PostInstallScript,
                Reboot,
                ChefRegister,
                ChefConverge,
                Cleanup,
                Ready
            ]
        );
    }
}
