//! Property tests on the provisioning pipeline: conservation, bounds and
//! monotonicity over arbitrary parameterizations.

use osdc_provision::{manual_rack_install, provision_rack, ManualParams, PipelineParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every server ends either Ready or failed-out; retry counts are
    /// consistent with the failure probability.
    #[test]
    fn servers_are_conserved(
        servers in 1u32..60,
        failure_prob in 0.0f64..0.4,
        chef in 1usize..40,
        seed: u64,
    ) {
        let report = provision_rack(
            &PipelineParams {
                servers,
                stage_failure_prob: failure_prob,
                chef_concurrency: chef,
                ..Default::default()
            },
            seed,
        );
        prop_assert_eq!(report.servers_ready + report.servers_failed, servers);
        if failure_prob == 0.0 {
            prop_assert_eq!(report.total_retries, 0);
            prop_assert_eq!(report.servers_failed, 0);
        }
        prop_assert_eq!(report.completion_minutes.count(), report.servers_ready as u64);
        // Nothing provisions instantly; nothing takes a week.
        if report.servers_ready > 0 {
            prop_assert!(report.wall_time.as_hours_f64() > 0.1);
            prop_assert!(report.wall_time.as_days_f64() < 7.0);
        }
    }

    /// More Chef concurrency never makes the rack slower (same seed, all
    /// else equal, zero failures to keep runs comparable).
    #[test]
    fn chef_concurrency_is_monotone(seed: u64, small in 1usize..6) {
        let base = PipelineParams {
            stage_failure_prob: 0.0,
            ..Default::default()
        };
        let narrow = provision_rack(
            &PipelineParams { chef_concurrency: small, ..base.clone() },
            seed,
        );
        let wide = provision_rack(
            &PipelineParams { chef_concurrency: small * 8, ..base },
            seed,
        );
        prop_assert!(wide.wall_time <= narrow.wall_time);
    }

    /// The manual baseline's wall time scales inversely with crew size and
    /// hands-on totals are crew-independent.
    #[test]
    fn manual_crew_scaling(seed: u64, admins in 1u32..8) {
        let solo = manual_rack_install(&ManualParams { admins: 1, ..Default::default() }, seed);
        let crew = manual_rack_install(&ManualParams { admins, ..Default::default() }, seed);
        prop_assert!((solo.total_hands_on_hours - crew.total_hands_on_hours).abs() < 1e-9);
        prop_assert!((crew.wall_days - solo.wall_days / admins as f64).abs() < 1e-9);
    }

    /// Automation beats the manual baseline across the whole parameter
    /// space the paper's claim spans.
    #[test]
    fn automation_always_wins(seed: u64, failure_prob in 0.0f64..0.2) {
        let auto = provision_rack(
            &PipelineParams { stage_failure_prob: failure_prob, ..Default::default() },
            seed,
        );
        let manual = manual_rack_install(&ManualParams::default(), seed);
        prop_assert!(
            auto.wall_time.as_secs_f64() * 5.0 < manual.wall_time.as_secs_f64(),
            "automation must stay ≥5× faster: {} vs {}",
            auto.wall_time,
            manual.wall_time
        );
    }
}
