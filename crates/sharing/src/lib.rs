//! # osdc-sharing — trust-spectrum capabilities over epidemic gossip
//!
//! The paper lists *file sharing* as a first-class OSDC subsystem: "Data
//! scientists ... share these with their collaborators" across the
//! federation's four data centers. This crate grows that line into a
//! working metadata plane:
//!
//! * [`capability`] — shares are signed, revocable **capabilities** on a
//!   trust spectrum `View < LendUntil(t) < Copy < Transfer`, minted
//!   against `osdc-storage` volume paths and signed with HMAC-MD5
//!   federation keys from `osdc-crypto`.
//! * [`registry`] — each data center keeps per-origin **append-only
//!   record logs**; the version vector of log lengths summarizes its
//!   knowledge, so anti-entropy is log-suffix exchange and merge is a
//!   commutative, idempotent append. Revocation is a new record; lend
//!   expiry needs no record at all, only the DES clock.
//! * [`gossip`] — deterministic push–pull epidemic rounds with seeded
//!   peer sampling.
//! * [`federation`] — [`SharingSim`] runs the four registries over the
//!   simulated OSDC WAN with **delay-tolerant delivery queues**: when a
//!   chaos partition cuts a site off, messages park and re-disseminate
//!   on heal. `Copy`/`Transfer` materialization rides `osdc-transfer`
//!   UDR sessions.
//! * [`enforce`] — the storage boundary: a live capability authorizes
//!   reads through the Samba export gate without a per-DC account.
//!
//! The differential oracle asserting that revocation really revokes and
//! lends really expire under arbitrary fault schedules lives in
//! `osdc-audit` (`sharing_oracle`); the experiment harness is
//! `exp_sharing` in `osdc-bench`.

pub mod capability;
pub mod enforce;
pub mod federation;
pub mod gossip;
pub mod registry;

pub use capability::{Action, Capability, CapabilityId, DcId, Record, RecordBody, TrustLevel};
pub use enforce::{read_with_capability, EnforceError};
pub use federation::{
    Event, PartitionEvent, ShareError, SharingConfig, SharingReport, SharingSim, SITES,
};
pub use gossip::{sample_peer, GossipMessage};
pub use registry::{IntegrateOutcome, Registry, VersionVector, WireRecord};
