//! Capabilities on the trust spectrum, and the signed records that carry
//! them between data centers.
//!
//! A share in the OSDC model is not an ACL row but a *capability*: a
//! signed statement "the federation key of data center X granted user U
//! level L over path P at time T". Capabilities sit on an ordered trust
//! spectrum — the further right, the more the grantor trusts the
//! grantee:
//!
//! ```text
//! View  <  LendUntil(t)  <  Copy  <  Transfer
//! ```
//!
//! * [`TrustLevel::View`] — read at any data center that has learned of
//!   the grant.
//! * [`TrustLevel::LendUntil`] — `View`, but self-expiring at a virtual
//!   time; expiry needs no revocation record, only a clock.
//! * [`TrustLevel::Copy`] — `View` plus the right to materialize a
//!   replica at another data center over `osdc-transfer`.
//! * [`TrustLevel::Transfer`] — everything, including handing the data
//!   onward (the paper's "data brought to researchers" flows).
//!
//! Grants and revocations are [`Record`]s: a body plus an HMAC-MD5
//! [`Signature`] from the issuing data center's federation key
//! (`osdc-crypto::sign`). Records never mutate — revocation is a *new*
//! record, which is what makes the per-origin logs in
//! [`crate::registry`] append-only and gossip idempotent.

use osdc_crypto::{Keyring, Signature, SignatureError, SigningKey};
use osdc_sim::SimTime;

/// One of the four capability-bearing data centers (the WAN hub,
/// StarLight, stores nothing). Index into [`crate::federation::SITES`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DcId(pub u8);

impl DcId {
    /// Capability-bearing data centers in the federation.
    pub const COUNT: usize = 4;
    pub const ALL: [DcId; DcId::COUNT] = [DcId(0), DcId(1), DcId(2), DcId(3)];

    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dc{}", self.0)
    }
}

/// What a request wants to do with shared data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// Read bytes through the local export gate.
    Read,
    /// Materialize a replica at another data center.
    Copy,
    /// Hand the data onward (re-share / take ownership).
    Transfer,
}

impl Action {
    pub const ALL: [Action; 3] = [Action::Read, Action::Copy, Action::Transfer];

    pub fn label(self) -> &'static str {
        match self {
            Action::Read => "read",
            Action::Copy => "copy",
            Action::Transfer => "transfer",
        }
    }
}

/// Position on the trust spectrum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrustLevel {
    View,
    /// `View` until `expires` (exclusive) on the simulation clock, then
    /// nothing — no revocation record required.
    LendUntil {
        expires: SimTime,
    },
    Copy,
    Transfer,
}

impl TrustLevel {
    /// Lattice rank; a lend ranks above plain `View` while live because
    /// it carries a deadline the grantor chose deliberately.
    pub fn rank(self) -> u8 {
        match self {
            TrustLevel::View => 0,
            TrustLevel::LendUntil { .. } => 1,
            TrustLevel::Copy => 2,
            TrustLevel::Transfer => 3,
        }
    }

    /// Does this level permit `action` at virtual time `now`?
    pub fn allows(self, action: Action, now: SimTime) -> bool {
        match (self, action) {
            (TrustLevel::View, Action::Read) => true,
            (TrustLevel::LendUntil { expires }, Action::Read) => now < expires,
            (TrustLevel::Copy, Action::Read | Action::Copy) => true,
            (TrustLevel::Transfer, _) => true,
            _ => false,
        }
    }

    /// Is the level itself dead at `now` (lend expired)?
    pub fn expired(self, now: SimTime) -> bool {
        matches!(self, TrustLevel::LendUntil { expires } if now >= expires)
    }

    pub fn label(self) -> &'static str {
        match self {
            TrustLevel::View => "view",
            TrustLevel::LendUntil { .. } => "lend",
            TrustLevel::Copy => "copy",
            TrustLevel::Transfer => "transfer",
        }
    }

    fn tag(self) -> u8 {
        match self {
            TrustLevel::View => 0,
            TrustLevel::LendUntil { .. } => 1,
            TrustLevel::Copy => 2,
            TrustLevel::Transfer => 3,
        }
    }

    fn expiry_nanos(self) -> u64 {
        match self {
            TrustLevel::LendUntil { expires } => expires.as_nanos(),
            _ => 0,
        }
    }
}

/// Identity of a capability: which data center minted it, and its
/// position in that data center's grant log. Log position doubles as the
/// id, so ids are dense, orderable, and free.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CapabilityId {
    pub origin: DcId,
    pub seq: u32,
}

impl std::fmt::Display for CapabilityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cap:{}/{}", self.origin, self.seq)
    }
}

/// A granted share.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Capability {
    pub id: CapabilityId,
    /// Cloud username of the grantee (the Samba-gate identity).
    pub grantee: String,
    /// Absolute path prefix on the origin data center's volume; grants
    /// cover the whole subtree.
    pub path: String,
    pub level: TrustLevel,
    pub granted_at: SimTime,
}

impl Capability {
    /// Does this capability's prefix cover `path`? Exact match or a
    /// subtree under the prefix; `/` covers everything.
    pub fn covers(&self, path: &str) -> bool {
        if self.path == "/" {
            return path.starts_with('/');
        }
        path == self.path
            || (path.len() > self.path.len()
                && path.starts_with(&self.path)
                && path.as_bytes()[self.path.len()] == b'/')
    }
}

/// What a signed record says.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecordBody {
    Grant(Capability),
    /// Revocation of `id`, issued at `at`. Any data center may issue one
    /// (it lands in the *issuer's* log), mirroring how the OSDC let any
    /// federation operator pull a misbehaving share.
    Revoke {
        id: CapabilityId,
        at: SimTime,
    },
}

impl RecordBody {
    /// Canonical byte encoding: tag + fixed-width fields +
    /// length-prefixed strings, so signatures are unambiguous and
    /// platform-independent.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            RecordBody::Grant(cap) => {
                out.push(1u8);
                out.push(cap.id.origin.0);
                out.extend_from_slice(&cap.id.seq.to_le_bytes());
                out.extend_from_slice(&cap.granted_at.as_nanos().to_le_bytes());
                out.push(cap.level.tag());
                out.extend_from_slice(&cap.level.expiry_nanos().to_le_bytes());
                out.extend_from_slice(&(cap.grantee.len() as u32).to_le_bytes());
                out.extend_from_slice(cap.grantee.as_bytes());
                out.extend_from_slice(&(cap.path.len() as u32).to_le_bytes());
                out.extend_from_slice(cap.path.as_bytes());
            }
            RecordBody::Revoke { id, at } => {
                out.push(2u8);
                out.push(id.origin.0);
                out.extend_from_slice(&id.seq.to_le_bytes());
                out.extend_from_slice(&at.as_nanos().to_le_bytes());
            }
        }
        out
    }
}

/// A signed record: the unit both the logs and the gossip wire carry.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    pub body: RecordBody,
    pub sig: Signature,
}

impl Record {
    pub fn sign(body: RecordBody, key: &SigningKey) -> Record {
        let sig = key.sign(&body.canonical_bytes());
        Record { body, sig }
    }

    /// Verify against the federation keyring. Gossip integration refuses
    /// unverifiable records — a partition cannot launder a forged grant.
    pub fn verify(&self, ring: &Keyring) -> Result<(), SignatureError> {
        ring.verify(&self.body.canonical_bytes(), &self.sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(level: TrustLevel) -> Capability {
        Capability {
            id: CapabilityId {
                origin: DcId(1),
                seq: 3,
            },
            grantee: "alice".into(),
            path: "/projects/genomics".into(),
            level,
            granted_at: SimTime::ZERO,
        }
    }

    #[test]
    fn trust_spectrum_is_ordered_and_monotone_in_read() {
        let t = SimTime::ZERO;
        let ranks: Vec<u8> = [
            TrustLevel::View,
            TrustLevel::LendUntil {
                expires: t + osdc_sim::SimDuration::from_secs(1),
            },
            TrustLevel::Copy,
            TrustLevel::Transfer,
        ]
        .iter()
        .map(|l| l.rank())
        .collect();
        assert!(ranks.windows(2).all(|w| w[0] < w[1]));
        // Every live level allows Read; only Transfer allows Transfer.
        for l in [TrustLevel::View, TrustLevel::Copy, TrustLevel::Transfer] {
            assert!(l.allows(Action::Read, t));
        }
        assert!(!TrustLevel::Copy.allows(Action::Transfer, t));
        assert!(TrustLevel::Transfer.allows(Action::Copy, t));
    }

    #[test]
    fn lend_expires_exactly_at_the_deadline() {
        let expires = SimTime(1_000);
        let l = TrustLevel::LendUntil { expires };
        assert!(l.allows(Action::Read, SimTime(999)));
        assert!(
            !l.allows(Action::Read, SimTime(1_000)),
            "expiry is exclusive"
        );
        assert!(!l.allows(Action::Copy, SimTime(0)), "a lend never copies");
        assert!(l.expired(SimTime(1_000)));
        assert!(!l.expired(SimTime(999)));
    }

    #[test]
    fn prefix_cover_respects_segment_boundaries() {
        let c = cap(TrustLevel::View);
        assert!(c.covers("/projects/genomics"));
        assert!(c.covers("/projects/genomics/run1.bam"));
        assert!(!c.covers("/projects/genomics2/run1.bam"));
        assert!(!c.covers("/projects"));
        let root = Capability {
            path: "/".into(),
            ..cap(TrustLevel::View)
        };
        assert!(root.covers("/anything/at/all"));
    }

    #[test]
    fn record_signatures_bind_every_field() {
        let key = SigningKey::from_seed(42);
        let mut ring = Keyring::new();
        ring.register(&key);
        let rec = Record::sign(RecordBody::Grant(cap(TrustLevel::Copy)), &key);
        assert!(rec.verify(&ring).is_ok());
        // Flip the level: same id, different canonical bytes → BadMac.
        let mut tampered = rec.clone();
        if let RecordBody::Grant(c) = &mut tampered.body {
            c.level = TrustLevel::Transfer;
        }
        assert!(tampered.verify(&ring).is_err());
        // Flip the grantee.
        let mut tampered = rec.clone();
        if let RecordBody::Grant(c) = &mut tampered.body {
            c.grantee = "mallory".into();
        }
        assert!(tampered.verify(&ring).is_err());
    }

    #[test]
    fn canonical_bytes_distinguish_grant_from_revoke() {
        let g = RecordBody::Grant(cap(TrustLevel::View)).canonical_bytes();
        let r = RecordBody::Revoke {
            id: CapabilityId {
                origin: DcId(1),
                seq: 3,
            },
            at: SimTime::ZERO,
        }
        .canonical_bytes();
        assert_ne!(g, r);
        assert_eq!(g[0], 1);
        assert_eq!(r[0], 2);
    }
}
