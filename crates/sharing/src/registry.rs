//! Per-data-center capability registries: append-only record logs, a
//! version vector over them, and the who-can-do-what check.
//!
//! Every data center keeps one log per *origin* (including itself). A
//! log only ever grows, so the federation-wide state is a CRDT: the
//! [`VersionVector`] of log lengths summarizes exactly what a replica
//! knows, anti-entropy is "send me your suffixes past my vector", and
//! merging is appending verified records in order. Revocations and
//! grants commute across origins — the derived capability index is a
//! pure function of the union of records plus the clock.

use std::collections::{BTreeMap, BTreeSet};

use osdc_crypto::Keyring;
use osdc_sim::{SimTime, TenantInterner, TenantStore};
use osdc_telemetry::audit;

use crate::capability::{Action, Capability, CapabilityId, DcId, Record, RecordBody, TrustLevel};

/// Lengths of the four per-origin logs, as known by one replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct VersionVector(pub [u32; DcId::COUNT]);

impl VersionVector {
    /// `self` dominates `other` when it knows at least as much from
    /// every origin.
    pub fn dominates(&self, other: &VersionVector) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a >= b)
    }

    /// Total number of records known.
    pub fn total(&self) -> u64 {
        self.0.iter().map(|&n| n as u64).sum()
    }
}

impl std::fmt::Display for VersionVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} {} {} {}]",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// A record plus its log coordinates, as shipped by gossip.
#[derive(Clone, Debug, PartialEq)]
pub struct WireRecord {
    pub origin: DcId,
    pub seq: u32,
    pub record: Record,
}

/// What [`Registry::integrate`] did with a batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegrateOutcome {
    /// Records appended (new knowledge).
    pub applied: u32,
    /// Records already known (idempotent skip).
    pub duplicates: u32,
    /// Records refused: bad signature, wrong coordinates, or a gap.
    pub rejected: u32,
}

/// One data center's view of every share in the federation.
#[derive(Clone, Debug)]
pub struct Registry {
    /// Which data center this replica lives at.
    dc: DcId,
    /// Append-only record logs, indexed by origin.
    logs: [Vec<Record>; DcId::COUNT],
    /// Derived index: every grant ever seen.
    caps: BTreeMap<CapabilityId, Capability>,
    /// Derived index: ids with a known revocation.
    revoked: BTreeSet<CapabilityId>,
    /// Interned grantee names backing `by_grantee`.
    grantees: TenantInterner,
    /// Derived index: grantee → ids of every grant naming them, so
    /// [`Registry::check`] scans one tenant's capabilities instead of
    /// the whole federation's.
    by_grantee: TenantStore<Vec<CapabilityId>>,
}

impl Registry {
    pub fn new(dc: DcId) -> Self {
        Registry {
            dc,
            logs: Default::default(),
            caps: BTreeMap::new(),
            revoked: BTreeSet::new(),
            grantees: TenantInterner::new(),
            by_grantee: TenantStore::new(),
        }
    }

    /// Index a freshly-learned grant under its grantee.
    fn index_grant(&mut self, cap: &Capability) {
        let id = self.grantees.intern(&cap.grantee);
        self.by_grantee
            .get_or_insert_with(id, Vec::new)
            .push(cap.id);
    }

    pub fn dc(&self) -> DcId {
        self.dc
    }

    pub fn version(&self) -> VersionVector {
        let mut v = [0u32; DcId::COUNT];
        for (i, log) in self.logs.iter().enumerate() {
            v[i] = log.len() as u32;
        }
        VersionVector(v)
    }

    /// Mint a grant in this replica's own log. The id is the log
    /// position; the record is signed with the local federation key.
    pub fn grant(
        &mut self,
        grantee: &str,
        path: &str,
        level: TrustLevel,
        now: SimTime,
        key: &osdc_crypto::SigningKey,
    ) -> CapabilityId {
        let id = CapabilityId {
            origin: self.dc,
            seq: self.logs[self.dc.index()].len() as u32,
        };
        let cap = Capability {
            id,
            grantee: grantee.to_string(),
            path: path.to_string(),
            level,
            granted_at: now,
        };
        let record = Record::sign(RecordBody::Grant(cap.clone()), key);
        self.logs[self.dc.index()].push(record);
        self.index_grant(&cap);
        self.caps.insert(id, cap);
        id
    }

    /// Issue a revocation of `id` from this replica. Returns false when
    /// the capability is unknown here (nothing to revoke yet — the
    /// caller may retry after gossip catches up).
    pub fn revoke(
        &mut self,
        id: CapabilityId,
        now: SimTime,
        key: &osdc_crypto::SigningKey,
    ) -> bool {
        if !self.caps.contains_key(&id) {
            return false;
        }
        if self.revoked.contains(&id) {
            return false; // already dead; don't spam the log
        }
        let record = Record::sign(RecordBody::Revoke { id, at: now }, key);
        self.logs[self.dc.index()].push(record);
        self.revoked.insert(id);
        true
    }

    /// Records the remote replica (summarized by `remote`) has not seen:
    /// the suffix of every log past the remote's watermark.
    pub fn missing_for(&self, remote: &VersionVector) -> Vec<WireRecord> {
        let mut out = Vec::new();
        for (i, log) in self.logs.iter().enumerate() {
            let from = remote.0[i] as usize;
            for (seq, record) in log.iter().enumerate().skip(from) {
                out.push(WireRecord {
                    origin: DcId(i as u8),
                    seq: seq as u32,
                    record: record.clone(),
                });
            }
        }
        out
    }

    /// Merge gossiped records. Signature-verified, idempotent, and
    /// append-only: a record is applied only at the next free position
    /// of its origin log, duplicates are skipped, gaps and forgeries are
    /// rejected (counted, never applied).
    pub fn integrate(&mut self, batch: &[WireRecord], ring: &Keyring) -> IntegrateOutcome {
        let before = self.version();
        let mut outcome = IntegrateOutcome::default();
        // Within a batch, apply each origin's records in sequence order
        // regardless of arrival interleaving.
        let mut sorted: Vec<&WireRecord> = batch.iter().collect();
        sorted.sort_by_key(|w| (w.origin, w.seq));
        for wire in sorted {
            let log = &mut self.logs[wire.origin.index()];
            let next = log.len() as u32;
            if wire.seq < next {
                outcome.duplicates += 1;
                continue;
            }
            if wire.seq > next || wire.record.verify(ring).is_err() {
                outcome.rejected += 1;
                continue;
            }
            // A grant's id must match its log coordinates, or the index
            // would lie about who minted it.
            if let RecordBody::Grant(cap) = &wire.record.body {
                if cap.id.origin != wire.origin || cap.id.seq != wire.seq {
                    outcome.rejected += 1;
                    continue;
                }
            }
            log.push(wire.record.clone());
            match &wire.record.body {
                RecordBody::Grant(cap) => {
                    self.index_grant(cap);
                    self.caps.insert(cap.id, cap.clone());
                }
                RecordBody::Revoke { id, .. } => {
                    self.revoked.insert(*id);
                }
            }
            outcome.applied += 1;
        }
        audit::check!(
            self.version().dominates(&before),
            "sharing.version_monotone",
            "{}: integrate moved the version vector backwards ({} -> {})",
            self.dc,
            before,
            self.version()
        );
        outcome
    }

    /// The who-can-do-what check: the highest-ranked live capability
    /// covering `path` that permits `action` for `grantee` at `now`,
    /// under *this replica's* current knowledge.
    ///
    /// Scans only `grantee`'s own grants via the per-grantee index —
    /// O(this tenant's shares), not O(every share in the federation).
    /// The winner is the max by `(rank, id)`, which is order-independent,
    /// so the narrowed scan returns exactly what the full scan did.
    pub fn check(
        &self,
        grantee: &str,
        path: &str,
        action: Action,
        now: SimTime,
    ) -> Option<CapabilityId> {
        let ids = self
            .grantees
            .get(grantee)
            .and_then(|gid| self.by_grantee.get(gid))
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        let mut best: Option<&Capability> = None;
        for id in ids {
            let cap = &self.caps[id];
            debug_assert_eq!(cap.grantee, grantee, "grantee index out of sync");
            if self.revoked.contains(&cap.id) || !cap.covers(path) || !cap.level.allows(action, now)
            {
                continue;
            }
            if best.is_none_or(|b| (cap.level.rank(), cap.id) > (b.level.rank(), b.id)) {
                best = Some(cap);
            }
        }
        if let Some(cap) = best {
            audit::check!(
                !self.revoked.contains(&cap.id),
                "sharing.check_never_returns_revoked",
                "{}: check({grantee}, {path}, {}) returned revoked {}",
                self.dc,
                action.label(),
                cap.id
            );
            audit::check!(
                !cap.level.expired(now),
                "sharing.check_never_returns_expired",
                "{}: check({grantee}, {path}, {}) returned expired {}",
                self.dc,
                action.label(),
                cap.id
            );
        }
        best.map(|c| c.id)
    }

    /// Look up a capability by id (any origin), if known here.
    pub fn capability(&self, id: CapabilityId) -> Option<&Capability> {
        self.caps.get(&id)
    }

    pub fn is_revoked(&self, id: CapabilityId) -> bool {
        self.revoked.contains(&id)
    }

    /// All capabilities known to this replica (live or not), in id order.
    pub fn capabilities(&self) -> impl Iterator<Item = &Capability> {
        self.caps.values()
    }

    pub fn records_known(&self) -> u64 {
        self.version().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osdc_crypto::SigningKey;
    use osdc_sim::SimDuration;

    fn ring_for(keys: &[&SigningKey]) -> Keyring {
        let mut ring = Keyring::new();
        for k in keys {
            ring.register(k);
        }
        ring
    }

    #[test]
    fn grant_then_sync_then_check_at_remote() {
        let ka = SigningKey::from_seed(0);
        let ring = ring_for(&[&ka]);
        let mut a = Registry::new(DcId(0));
        let mut b = Registry::new(DcId(1));
        let id = a.grant(
            "alice",
            "/projects/genomics",
            TrustLevel::View,
            SimTime::ZERO,
            &ka,
        );
        assert_eq!(
            b.check("alice", "/projects/genomics/f", Action::Read, SimTime::ZERO),
            None,
            "b has not heard yet"
        );
        let outcome = b.integrate(&a.missing_for(&b.version()), &ring);
        assert_eq!(outcome.applied, 1);
        assert_eq!(
            b.check("alice", "/projects/genomics/f", Action::Read, SimTime::ZERO),
            Some(id)
        );
        assert_eq!(a.version(), b.version());
    }

    #[test]
    fn integrate_is_idempotent() {
        let ka = SigningKey::from_seed(0);
        let ring = ring_for(&[&ka]);
        let mut a = Registry::new(DcId(0));
        let mut b = Registry::new(DcId(1));
        a.grant("u", "/d", TrustLevel::Copy, SimTime::ZERO, &ka);
        let batch = a.missing_for(&VersionVector::default());
        assert_eq!(b.integrate(&batch, &ring).applied, 1);
        let again = b.integrate(&batch, &ring);
        assert_eq!(again.applied, 0);
        assert_eq!(again.duplicates, 1);
        assert_eq!(b.records_known(), 1);
    }

    #[test]
    fn forged_records_are_rejected() {
        let ka = SigningKey::from_seed(0);
        let mallory = SigningKey::from_seed(99); // not in the ring
        let ring = ring_for(&[&ka]);
        let mut a = Registry::new(DcId(0));
        let mut b = Registry::new(DcId(1));
        a.grant("u", "/d", TrustLevel::View, SimTime::ZERO, &ka);
        let mut batch = a.missing_for(&b.version());
        // Re-sign with an untrusted key.
        batch[0].record = Record::sign(batch[0].record.body.clone(), &mallory);
        let outcome = b.integrate(&batch, &ring);
        assert_eq!(outcome.applied, 0);
        assert_eq!(outcome.rejected, 1);
        assert_eq!(b.records_known(), 0);
    }

    #[test]
    fn grant_with_mismatched_coordinates_is_rejected() {
        let ka = SigningKey::from_seed(0);
        let ring = ring_for(&[&ka]);
        let mut a = Registry::new(DcId(0));
        let mut b = Registry::new(DcId(1));
        a.grant("u", "/d", TrustLevel::View, SimTime::ZERO, &ka);
        let mut batch = a.missing_for(&b.version());
        // Replay a's record as if it came from origin 2's log.
        batch[0].origin = DcId(2);
        assert_eq!(b.integrate(&batch, &ring).rejected, 1);
    }

    #[test]
    fn gaps_are_rejected_not_buffered() {
        let ka = SigningKey::from_seed(0);
        let ring = ring_for(&[&ka]);
        let mut a = Registry::new(DcId(0));
        let mut b = Registry::new(DcId(1));
        a.grant("u", "/d1", TrustLevel::View, SimTime::ZERO, &ka);
        a.grant("u", "/d2", TrustLevel::View, SimTime::ZERO, &ka);
        let batch = a.missing_for(&b.version());
        // Deliver only the second record: seq 1 with nothing at seq 0.
        assert_eq!(b.integrate(&batch[1..], &ring).rejected, 1);
        // Full suffix heals it.
        assert_eq!(b.integrate(&batch, &ring).applied, 2);
    }

    #[test]
    fn revocation_travels_in_the_revoker_log() {
        let keys: Vec<SigningKey> = (0..2).map(SigningKey::from_seed).collect();
        let ring = ring_for(&[&keys[0], &keys[1]]);
        let mut a = Registry::new(DcId(0));
        let mut b = Registry::new(DcId(1));
        let id = a.grant("alice", "/p", TrustLevel::Transfer, SimTime::ZERO, &keys[0]);
        b.integrate(&a.missing_for(&b.version()), &ring);
        // B (not the origin!) revokes; the record sits in B's log.
        assert!(b.revoke(id, SimTime(5), &keys[1]));
        assert_eq!(b.check("alice", "/p", Action::Read, SimTime(6)), None);
        // A learns of the revocation from B's log suffix.
        a.integrate(&b.missing_for(&a.version()), &ring);
        assert_eq!(a.check("alice", "/p", Action::Read, SimTime(6)), None);
        assert!(a.is_revoked(id));
        // Double-revoke is refused.
        assert!(!a.revoke(id, SimTime(7), &keys[0]));
    }

    #[test]
    fn lend_expires_without_any_record() {
        let ka = SigningKey::from_seed(0);
        let mut a = Registry::new(DcId(0));
        let expires = SimTime::ZERO + SimDuration::from_secs(60);
        a.grant(
            "bob",
            "/data",
            TrustLevel::LendUntil { expires },
            SimTime::ZERO,
            &ka,
        );
        assert!(a
            .check("bob", "/data/f", Action::Read, SimTime(1))
            .is_some());
        assert_eq!(a.check("bob", "/data/f", Action::Read, expires), None);
        assert_eq!(a.records_known(), 1, "expiry consumed no log space");
    }

    #[test]
    fn highest_rank_wins_among_overlapping_grants() {
        let ka = SigningKey::from_seed(0);
        let mut a = Registry::new(DcId(0));
        let view = a.grant("u", "/d", TrustLevel::View, SimTime::ZERO, &ka);
        let copy = a.grant("u", "/d", TrustLevel::Copy, SimTime::ZERO, &ka);
        assert_eq!(
            a.check("u", "/d/f", Action::Read, SimTime::ZERO),
            Some(copy)
        );
        // Revoking the copy grant falls back to the view grant for reads.
        a.revoke(copy, SimTime(1), &ka);
        assert_eq!(a.check("u", "/d/f", Action::Read, SimTime(2)), Some(view));
        assert_eq!(a.check("u", "/d/f", Action::Copy, SimTime(2)), None);
    }
}
