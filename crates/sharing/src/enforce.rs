//! Enforcement at the storage boundary: capabilities meet the Samba gate.
//!
//! A capability authorizes *across* data centers what the per-DC Samba
//! export authorizes *within* one: the holder of a live `View`-or-better
//! capability may read the covered subtree through the export without
//! appearing in its per-prefix access rules. The check order mirrors the
//! export gate's own: diagnose the path shape first (typed
//! [`PathError`]), then the capability, then the volume read.

use osdc_sim::SimTime;
use osdc_storage::export::{validate_path, PathError};
use osdc_storage::{FileData, SambaExport, VolumeError};

use crate::capability::{Action, CapabilityId};
use crate::registry::Registry;

/// Why a capability-backed read failed.
#[derive(Clone, Debug, PartialEq)]
pub enum EnforceError {
    /// The path is not something the export can interpret.
    MalformedPath(PathError),
    /// No live capability covers the read at this replica's knowledge.
    NoCapability,
    /// The capability is fine but the volume refused.
    Volume(VolumeError),
}

impl std::fmt::Display for EnforceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnforceError::MalformedPath(e) => write!(f, "malformed path: {e}"),
            EnforceError::NoCapability => write!(f, "no live capability covers this read"),
            EnforceError::Volume(e) => write!(f, "volume error: {e:?}"),
        }
    }
}

impl std::error::Error for EnforceError {}

/// Read `path` from `export` on the strength of a capability held by
/// `grantee`, under `registry`'s current knowledge at `now`. Returns the
/// data and the capability that authorized it.
pub fn read_with_capability(
    export: &SambaExport,
    registry: &Registry,
    grantee: &str,
    path: &str,
    now: SimTime,
) -> Result<(FileData, CapabilityId), EnforceError> {
    validate_path(path).map_err(EnforceError::MalformedPath)?;
    let cap = registry
        .check(grantee, path, Action::Read, now)
        .ok_or(EnforceError::NoCapability)?;
    let data = export
        .with_volume(|v| v.read(path).map(|(data, _)| data))
        .map_err(EnforceError::Volume)?;
    Ok((data, cap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::{DcId, TrustLevel};
    use osdc_crypto::SigningKey;
    use osdc_sim::SimDuration;
    use osdc_storage::{GlusterVersion, Volume};

    fn export_with(path: &str, bytes: &[u8]) -> SambaExport {
        let vol = Volume::new("shared", GlusterVersion::V3_3, 2, 2, 1 << 30, 7);
        let e = SambaExport::new(vol);
        e.add_account("curator", "pw");
        e.grant("/projects", "curator", osdc_storage::AccessKind::Write);
        e.write("curator", "pw", path, FileData::bytes(bytes.to_vec()))
            .expect("seed write");
        e
    }

    #[test]
    fn capability_read_bypasses_samba_rules_but_not_the_clock() {
        let export = export_with("/projects/genomics/run1.bam", b"reads");
        let key = SigningKey::from_seed(0);
        let mut reg = Registry::new(DcId(0));
        let expires = SimTime::ZERO + SimDuration::from_secs(60);
        reg.grant(
            "visitor",
            "/projects/genomics",
            TrustLevel::LendUntil { expires },
            SimTime::ZERO,
            &key,
        );
        // "visitor" has no Samba account at all — the capability alone
        // authorizes the read.
        let (data, _cap) = read_with_capability(
            &export,
            &reg,
            "visitor",
            "/projects/genomics/run1.bam",
            SimTime(1),
        )
        .expect("lend is live");
        assert_eq!(data, FileData::bytes(b"reads".to_vec()));
        // The lend expires: same call now fails closed.
        assert_eq!(
            read_with_capability(
                &export,
                &reg,
                "visitor",
                "/projects/genomics/run1.bam",
                expires,
            ),
            Err(EnforceError::NoCapability)
        );
    }

    #[test]
    fn malformed_paths_diagnosed_before_capability_lookup() {
        let export = export_with("/projects/genomics/run1.bam", b"x");
        let reg = Registry::new(DcId(0));
        assert_eq!(
            read_with_capability(&export, &reg, "v", "/projects/../etc", SimTime::ZERO),
            Err(EnforceError::MalformedPath(PathError::DotSegment))
        );
    }

    #[test]
    fn volume_errors_pass_through_typed() {
        let export = export_with("/projects/genomics/run1.bam", b"x");
        let key = SigningKey::from_seed(0);
        let mut reg = Registry::new(DcId(0));
        reg.grant("v", "/projects", TrustLevel::View, SimTime::ZERO, &key);
        assert_eq!(
            read_with_capability(&export, &reg, "v", "/projects/missing", SimTime::ZERO),
            Err(EnforceError::Volume(VolumeError::NotFound))
        );
    }
}
