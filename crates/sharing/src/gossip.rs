//! The epidemic protocol: push–pull anti-entropy digests.
//!
//! Each gossip round a data center samples one peer (seeded, uniform
//! over the other three) and sends its [`VersionVector`] as a digest.
//! The peer answers with every record the digest proves the caller
//! lacks *and* its own digest; the caller integrates, then pushes back
//! the records the peer lacks. One round therefore fully reconciles a
//! pair — the classic push–pull variant, which converges in O(log n)
//! rounds and, on this 4-node federation, typically one or two.
//!
//! Messages are plain values delivered by `crate::federation` over the
//! simulated WAN; when a partition makes a peer unreachable the message
//! parks in a delay-tolerant queue instead (see [`crate::federation`]).

use osdc_sim::SimRng;

use crate::capability::DcId;
use crate::registry::{VersionVector, WireRecord};

/// A gossip datagram between data centers.
#[derive(Clone, Debug)]
pub enum GossipMessage {
    /// Round opener: "here is what I know; send me the rest."
    SyncRequest { from: DcId, digest: VersionVector },
    /// Answer: missing records plus the responder's own digest, so the
    /// requester can push back in turn.
    SyncResponse {
        from: DcId,
        digest: VersionVector,
        records: Vec<WireRecord>,
    },
    /// The push half: records the responder was missing.
    SyncPush {
        from: DcId,
        records: Vec<WireRecord>,
    },
}

impl GossipMessage {
    pub fn from_dc(&self) -> DcId {
        match self {
            GossipMessage::SyncRequest { from, .. }
            | GossipMessage::SyncResponse { from, .. }
            | GossipMessage::SyncPush { from, .. } => *from,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            GossipMessage::SyncRequest { .. } => "sync-request",
            GossipMessage::SyncResponse { .. } => "sync-response",
            GossipMessage::SyncPush { .. } => "sync-push",
        }
    }

    /// Records carried (requests carry none).
    pub fn record_count(&self) -> usize {
        match self {
            GossipMessage::SyncRequest { .. } => 0,
            GossipMessage::SyncResponse { records, .. }
            | GossipMessage::SyncPush { records, .. } => records.len(),
        }
    }
}

/// Seeded uniform peer sampling: any data center but `me`.
pub fn sample_peer(rng: &mut SimRng, me: DcId) -> DcId {
    let pick = rng.below(DcId::COUNT as u64 - 1) as u8;
    if pick >= me.0 {
        DcId(pick + 1)
    } else {
        DcId(pick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_peer_never_picks_self_and_covers_all() {
        for me in DcId::ALL {
            let mut rng = SimRng::new(7 + me.0 as u64);
            let mut seen = [false; DcId::COUNT];
            for _ in 0..200 {
                let p = sample_peer(&mut rng, me);
                assert_ne!(p, me);
                seen[p.index()] = true;
            }
            let others = seen.iter().filter(|&&s| s).count();
            assert_eq!(others, DcId::COUNT - 1, "all peers reachable from {me}");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = SimRng::new(11);
        let mut b = SimRng::new(11);
        for _ in 0..50 {
            assert_eq!(sample_peer(&mut a, DcId(2)), sample_peer(&mut b, DcId(2)));
        }
    }
}
