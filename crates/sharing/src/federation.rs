//! The federation simulator: four capability registries gossiping over
//! the simulated OSDC WAN, with delay-tolerant queues for partitions.
//!
//! [`SharingSim`] couples one [`Registry`] per data center to the DES
//! kernel. Gossip rounds fire on the virtual clock (staggered per data
//! center), messages travel at one-way WAN latency, and when
//! `osdc-chaos`-style partition windows take a site's StarLight links
//! down, outbound messages park in a delay-tolerant (DTN) queue and
//! re-disseminate the moment the partition heals — the federation-wide
//! state dissemination pattern of the OSDF operations story.
//!
//! The metadata plane (grants, revocations, digests) is what this DES
//! models. The *data* plane for `Copy`/`Transfer` capabilities rides the
//! existing `osdc-transfer` sessions: [`SharingSim::copy_to`] runs a UDR
//! session over the current WAN state (partitions included) and reports
//! the paper's throughput metrics, exactly like the Table 3 harness.

use std::collections::VecDeque;

use osdc_crypto::{Keyring, SigningKey};
use osdc_net::fluid::FluidNet;
use osdc_net::topology::NodeId;
use osdc_net::wan::{osdc_wan, OsdcSite, OsdcWan};
use osdc_sim::{derive_seed, Engine, Scheduler, SimDuration, SimRng, SimTime, Simulation};
use osdc_telemetry::{audit, Telemetry};
use osdc_transfer::{Protocol, TransferEngine, TransferError, TransferReport, TransferSpec};

use crate::capability::{Action, CapabilityId, DcId, TrustLevel};
use crate::gossip::{sample_peer, GossipMessage};
use crate::registry::Registry;

/// The capability-bearing sites, indexed by [`DcId`]. StarLight is the
/// hub every inter-site path crosses; it stores nothing.
pub const SITES: [OsdcSite; DcId::COUNT] = [
    OsdcSite::ChicagoKenwood,
    OsdcSite::ChicagoLakeshore,
    OsdcSite::Lvoc,
    OsdcSite::AmpathMiami,
];

/// A partition window: `site` loses its StarLight links at `at_secs`
/// for `duration_secs` (the sharing-layer projection of an
/// `osdc-chaos` `LinkDown`/`LinkFlap` fault).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionEvent {
    pub at_secs: f64,
    pub duration_secs: f64,
    pub site: OsdcSite,
}

impl PartitionEvent {
    pub fn at(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(self.at_secs)
    }

    pub fn until(&self) -> SimTime {
        self.at() + SimDuration::from_secs_f64(self.duration_secs)
    }
}

/// Knobs for a federation run. Everything is derived from `seed`.
#[derive(Clone, Copy, Debug)]
pub struct SharingConfig {
    pub seed: u64,
    /// Residual long-haul loss (the Table 3 calibration knob).
    pub long_haul_loss: f64,
    /// Anti-entropy round period per data center.
    pub round_interval: SimDuration,
}

impl SharingConfig {
    pub fn new(seed: u64) -> Self {
        SharingConfig {
            seed,
            long_haul_loss: 1.2e-7,
            round_interval: SimDuration::from_secs(30),
        }
    }
}

/// Why a sharing-layer operation was refused.
#[derive(Clone, Debug, PartialEq)]
pub enum ShareError {
    /// No live capability covers the request at this data center's
    /// current knowledge.
    Denied {
        grantee: String,
        path: String,
        action: Action,
    },
    /// The data already lives at the requesting data center.
    AlreadyLocal,
    /// The materializing transfer failed (partitioned WAN, deadline).
    Transfer(TransferError),
}

impl std::fmt::Display for ShareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShareError::Denied {
                grantee,
                path,
                action,
            } => write!(f, "{grantee} may not {} {path}", action.label()),
            ShareError::AlreadyLocal => write!(f, "data already local"),
            ShareError::Transfer(e) => write!(f, "materialization failed: {e}"),
        }
    }
}

impl std::error::Error for ShareError {}

/// DES events of the metadata plane.
#[derive(Clone, Debug)]
pub enum Event {
    /// A data center opens an anti-entropy round.
    Round {
        dc: DcId,
    },
    /// A gossip datagram arrives.
    Deliver {
        to: DcId,
        msg: GossipMessage,
    },
    /// Partition window `idx` begins / ends.
    PartitionStart {
        idx: usize,
    },
    PartitionEnd {
        idx: usize,
    },
}

/// Aggregate outcome of a federation run (the `exp_sharing` row).
#[derive(Clone, Debug, Default)]
pub struct SharingReport {
    pub grants: u64,
    pub revokes: u64,
    pub rounds: u64,
    pub messages_delivered: u64,
    pub messages_buffered: u64,
    pub dtn_flushed: u64,
    pub records_converged: u64,
    pub convergence_p50_secs: f64,
    pub convergence_max_secs: f64,
    pub converged: bool,
    pub checks_allowed: u64,
    pub checks_denied: u64,
    pub copies: u64,
    /// Copy materializations that returned a typed [`ShareError`]
    /// (capability denied at enforcement time, or the UDR session
    /// failed) instead of completing. A revocation or partition racing a
    /// copy lands here, never in a panic.
    pub copies_failed: u64,
    pub bytes_copied: u64,
    /// Revoked or expired capabilities still granting anywhere. The
    /// acceptance bar: zero, always.
    pub safety_violations: u64,
}

struct World {
    wan: OsdcWan,
    registries: Vec<Registry>,
    keys: Vec<SigningKey>,
    ring: Keyring,
    rngs: Vec<SimRng>,
    round_interval: SimDuration,
    partitions: Vec<PartitionEvent>,
    /// Active partition depth per site (windows may nest).
    cut_depth: [u32; 5],
    /// Delay-tolerant queue: messages that could not be routed, in send
    /// order. Flushed when partitions heal.
    dtn: VecDeque<(DcId, DcId, GossipMessage)>,
    tele: Telemetry,
    /// (origin, seq) → (mint time, bitmask of data centers holding it).
    spread: std::collections::BTreeMap<(u8, u32), (SimTime, u8)>,
    convergence_secs: Vec<f64>,
    grants: u64,
    revokes: u64,
    rounds: u64,
    messages_delivered: u64,
    messages_buffered: u64,
    dtn_flushed: u64,
    checks_allowed: u64,
    checks_denied: u64,
    copies: u64,
    copies_failed: u64,
    bytes_copied: u64,
}

impl World {
    fn node(&self, dc: DcId) -> NodeId {
        self.wan.node(SITES[dc.index()])
    }

    fn hub(&self) -> NodeId {
        self.wan.node(OsdcSite::StarLight)
    }

    /// One-way latency, or `None` while partitioned.
    fn one_way(&self, from: DcId, to: DcId) -> Option<SimDuration> {
        self.wan
            .topology
            .rtt(self.node(from), self.node(to))
            .map(|rtt| rtt.mul_f64(0.5))
    }

    fn send(&mut self, from: DcId, to: DcId, msg: GossipMessage, sched: &mut Scheduler<Event>) {
        match self.one_way(from, to) {
            Some(delay) => {
                self.tele.incr(self.tele.counter("sharing.gossip_sent"));
                sched.after(delay, Event::Deliver { to, msg });
            }
            None => {
                self.messages_buffered += 1;
                self.tele.incr(self.tele.counter("sharing.dtn_buffered"));
                // Anti-entropy requests supersede older ones from the
                // same pair — a digest is a summary, not a delta, so
                // only the newest matters. Responses/pushes all keep.
                if matches!(msg, GossipMessage::SyncRequest { .. }) {
                    self.dtn.retain(|(f, t, m)| {
                        !(*f == from && *t == to && matches!(m, GossipMessage::SyncRequest { .. }))
                    });
                }
                self.dtn.push_back((from, to, msg));
            }
        }
    }

    /// Re-disseminate every parked message whose route is back.
    fn flush_dtn(&mut self, sched: &mut Scheduler<Event>) {
        let mut kept = VecDeque::new();
        while let Some((from, to, msg)) = self.dtn.pop_front() {
            match self.one_way(from, to) {
                Some(delay) => {
                    self.dtn_flushed += 1;
                    self.tele.incr(self.tele.counter("sharing.dtn_flushed"));
                    sched.after(delay, Event::Deliver { to, msg });
                }
                None => kept.push_back((from, to, msg)),
            }
        }
        self.dtn = kept;
    }

    fn set_site_links(&mut self, site: OsdcSite, up: bool) {
        let a = self.wan.node(site);
        let hub = self.hub();
        for link in self.wan.topology.links_between(a, hub) {
            self.wan.topology.set_link_up(link, up);
        }
    }

    /// Integrate a gossip batch at `to`, then advance the convergence
    /// bookkeeping for every record `to` now holds.
    fn integrate_tracked(&mut self, to: DcId, batch: &[crate::registry::WireRecord], now: SimTime) {
        let outcome = self.registries[to.index()].integrate(batch, &self.ring);
        self.tele.add(
            self.tele.counter("sharing.records_applied"),
            outcome.applied as u64,
        );
        if outcome.rejected > 0 {
            self.tele.add(
                self.tele.counter("sharing.records_rejected"),
                outcome.rejected as u64,
            );
        }
        let version = self.registries[to.index()].version();
        for wire in batch {
            if wire.seq < version.0[wire.origin.index()] {
                self.mark_seen(wire.origin, wire.seq, to, now);
            }
        }
    }

    fn mark_seen(&mut self, origin: DcId, seq: u32, at: DcId, now: SimTime) {
        let full: u8 = (1 << DcId::COUNT) - 1;
        if let Some((minted, mask)) = self.spread.get_mut(&(origin.0, seq)) {
            *mask |= 1 << at.0;
            if *mask == full {
                let latency = now.saturating_since(*minted).as_secs_f64();
                self.convergence_secs.push(latency);
                self.tele
                    .observe(self.tele.histogram("sharing.convergence_secs"), latency);
                let minted = *minted;
                self.spread.remove(&(origin.0, seq));
                audit::check!(
                    minted <= now,
                    "sharing.convergence_causal",
                    "record {origin}/{seq} converged before it was minted"
                );
            }
        }
    }
}

impl Simulation for World {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, sched: &mut Scheduler<Event>) {
        match event {
            Event::Round { dc } => {
                self.rounds += 1;
                let peer = sample_peer(&mut self.rngs[dc.index()], dc);
                let digest = self.registries[dc.index()].version();
                self.send(
                    dc,
                    peer,
                    GossipMessage::SyncRequest { from: dc, digest },
                    sched,
                );
                sched.after(self.round_interval, Event::Round { dc });
            }
            Event::Deliver { to, msg } => {
                self.messages_delivered += 1;
                self.tele
                    .incr(self.tele.counter("sharing.gossip_delivered"));
                match msg {
                    GossipMessage::SyncRequest { from, digest } => {
                        let records = self.registries[to.index()].missing_for(&digest);
                        let my_digest = self.registries[to.index()].version();
                        self.send(
                            to,
                            from,
                            GossipMessage::SyncResponse {
                                from: to,
                                digest: my_digest,
                                records,
                            },
                            sched,
                        );
                    }
                    GossipMessage::SyncResponse {
                        from,
                        digest,
                        records,
                    } => {
                        self.integrate_tracked(to, &records, now);
                        let push = self.registries[to.index()].missing_for(&digest);
                        if !push.is_empty() {
                            self.send(
                                to,
                                from,
                                GossipMessage::SyncPush {
                                    from: to,
                                    records: push,
                                },
                                sched,
                            );
                        }
                    }
                    GossipMessage::SyncPush { records, .. } => {
                        self.integrate_tracked(to, &records, now);
                    }
                }
            }
            Event::PartitionStart { idx } => {
                let site = self.partitions[idx].site;
                let depth = &mut self.cut_depth[site as usize];
                *depth += 1;
                if *depth == 1 {
                    self.set_site_links(site, false);
                    self.tele.incr(self.tele.counter("sharing.partitions"));
                }
            }
            Event::PartitionEnd { idx } => {
                let site = self.partitions[idx].site;
                let depth = &mut self.cut_depth[site as usize];
                *depth = depth.saturating_sub(1);
                if *depth == 0 {
                    self.set_site_links(site, true);
                    self.flush_dtn(sched);
                }
            }
        }
    }
}

/// The federation: engine + world, with an imperative control surface
/// for harnesses, oracles and examples.
pub struct SharingSim {
    engine: Engine<Event>,
    world: World,
    seed: u64,
    long_haul_loss: f64,
    transfer_count: u64,
}

impl SharingSim {
    pub fn new(cfg: SharingConfig) -> Self {
        let mut ring = Keyring::new();
        let keys: Vec<SigningKey> = DcId::ALL
            .iter()
            .map(|dc| {
                let key = SigningKey::from_seed(derive_seed(cfg.seed, 0x5109 + dc.0 as u64));
                ring.register(&key);
                key
            })
            .collect();
        let world = World {
            wan: osdc_wan(cfg.long_haul_loss),
            registries: DcId::ALL.iter().map(|&dc| Registry::new(dc)).collect(),
            keys,
            ring,
            rngs: DcId::ALL
                .iter()
                .map(|dc| SimRng::new(derive_seed(cfg.seed, 0x905519 + dc.0 as u64)))
                .collect(),
            round_interval: cfg.round_interval,
            partitions: Vec::new(),
            cut_depth: [0; 5],
            dtn: VecDeque::new(),
            tele: Telemetry::disabled(),
            spread: std::collections::BTreeMap::new(),
            convergence_secs: Vec::new(),
            grants: 0,
            revokes: 0,
            rounds: 0,
            messages_delivered: 0,
            messages_buffered: 0,
            dtn_flushed: 0,
            checks_allowed: 0,
            checks_denied: 0,
            copies: 0,
            copies_failed: 0,
            bytes_copied: 0,
        };
        let mut engine = Engine::new();
        // Stagger first rounds so the four data centers never gossip in
        // lockstep: dc k opens at (k+1)/4 of one interval.
        for dc in DcId::ALL {
            let first = SimDuration(cfg.round_interval.0 * (dc.0 as u64 + 1) / DcId::COUNT as u64);
            engine.schedule(SimTime::ZERO + first, Event::Round { dc });
        }
        SharingSim {
            engine,
            world,
            seed: cfg.seed,
            long_haul_loss: cfg.long_haul_loss,
            transfer_count: 0,
        }
    }

    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.world.tele = tele;
    }

    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    pub fn keyring(&self) -> &Keyring {
        &self.world.ring
    }

    pub fn registry(&self, dc: DcId) -> &Registry {
        &self.world.registries[dc.index()]
    }

    /// Schedule partition windows (idempotent per call; windows may
    /// overlap and nest).
    pub fn apply_partitions(&mut self, schedule: &[PartitionEvent]) {
        for ev in schedule {
            let idx = self.world.partitions.len();
            self.world.partitions.push(*ev);
            self.engine.schedule(ev.at(), Event::PartitionStart { idx });
            self.engine
                .schedule(ev.until(), Event::PartitionEnd { idx });
        }
    }

    /// Mint a grant at `origin`, effective immediately there and
    /// everywhere else once gossip carries it.
    pub fn grant(
        &mut self,
        origin: DcId,
        grantee: &str,
        path: &str,
        level: TrustLevel,
    ) -> CapabilityId {
        let now = self.engine.now();
        let id = self.world.registries[origin.index()].grant(
            grantee,
            path,
            level,
            now,
            &self.world.keys[origin.index()],
        );
        self.world.grants += 1;
        self.world
            .tele
            .incr(self.world.tele.counter("sharing.grants"));
        self.world
            .spread
            .insert((origin.0, id.seq), (now, 1 << origin.0));
        id
    }

    /// Issue a revocation from `issuer` (any data center that has heard
    /// of the capability). Returns false when `issuer` has not.
    pub fn revoke(&mut self, issuer: DcId, id: CapabilityId) -> bool {
        let now = self.engine.now();
        let done =
            self.world.registries[issuer.index()].revoke(id, now, &self.world.keys[issuer.index()]);
        if done {
            self.world.revokes += 1;
            self.world
                .tele
                .incr(self.world.tele.counter("sharing.revokes"));
            let seq = self.world.registries[issuer.index()].version().0[issuer.index()] - 1;
            self.world
                .spread
                .insert((issuer.0, seq), (now, 1 << issuer.0));
        }
        done
    }

    /// The who-can-do-what check under `dc`'s current knowledge.
    pub fn check(
        &mut self,
        dc: DcId,
        grantee: &str,
        path: &str,
        action: Action,
    ) -> Option<CapabilityId> {
        let now = self.engine.now();
        let hit = self.world.registries[dc.index()].check(grantee, path, action, now);
        if hit.is_some() {
            self.world.checks_allowed += 1;
            self.world
                .tele
                .incr(self.world.tele.counter("sharing.checks_allowed"));
        } else {
            self.world.checks_denied += 1;
            self.world
                .tele
                .incr(self.world.tele.counter("sharing.checks_denied"));
        }
        hit
    }

    /// Advance virtual time by `d`, processing gossip and partitions.
    pub fn run_for(&mut self, d: SimDuration) -> SimTime {
        let until = self.engine.now() + d;
        self.engine.run_until(&mut self.world, until)
    }

    /// Advance to an absolute time (no-op when already past it).
    pub fn run_until_time(&mut self, t: SimTime) -> SimTime {
        if t <= self.engine.now() {
            return self.engine.now();
        }
        self.engine.run_until(&mut self.world, t)
    }

    /// All four replicas agree (identical version vectors)?
    pub fn converged(&self) -> bool {
        let v0 = self.world.registries[0].version();
        self.world.registries.iter().all(|r| r.version() == v0)
    }

    /// Run anti-entropy rounds until replicas agree and the DTN queue is
    /// empty, up to `max_rounds` intervals. Returns whether quiescence
    /// was reached (it cannot be while a partition window is open).
    pub fn quiesce(&mut self, max_rounds: u32) -> bool {
        for _ in 0..max_rounds {
            if self.converged() && self.world.dtn.is_empty() {
                return true;
            }
            self.run_for(self.world.round_interval);
        }
        self.converged() && self.world.dtn.is_empty()
    }

    /// Materialize shared data at `at`: enforce the capability under
    /// `at`'s current knowledge, then run a UDR session from the origin
    /// data center over the WAN as it stands (partitions included).
    pub fn copy_to(
        &mut self,
        at: DcId,
        grantee: &str,
        path: &str,
        bytes: u64,
    ) -> Result<TransferReport, ShareError> {
        let now = self.engine.now();
        let checked = self.world.registries[at.index()].check(grantee, path, Action::Copy, now);
        let cap_id = match checked {
            Some(id) => id,
            // A revocation (or a lend expiry) that raced the copy: the
            // caller gets the typed error and the scorecard counts it.
            None => {
                self.count_copy_failure();
                return Err(ShareError::Denied {
                    grantee: grantee.to_string(),
                    path: path.to_string(),
                    action: Action::Copy,
                });
            }
        };
        let src = cap_id.origin;
        if src == at {
            return Err(ShareError::AlreadyLocal);
        }
        // A fresh fluid net seeded from the sim seed, with the current
        // partition state projected onto it.
        let mut wan = osdc_wan(self.long_haul_loss);
        for (site_idx, depth) in self.world.cut_depth.iter().enumerate() {
            if *depth > 0 {
                let site = OsdcSite::ALL[site_idx];
                let a = wan.node(site);
                let hub = wan.node(OsdcSite::StarLight);
                for link in wan.topology.links_between(a, hub) {
                    wan.topology.set_link_up(link, false);
                }
            }
        }
        let spec = TransferSpec {
            protocol: Protocol::Udr,
            cipher: osdc_crypto::CipherKind::None,
            bytes,
            files: 1,
            src: wan.node(SITES[src.index()]),
            dst: wan.node(SITES[at.index()]),
        };
        self.transfer_count += 1;
        let net = FluidNet::new(
            wan.topology,
            derive_seed(self.seed, 0xc09 + self.transfer_count),
        );
        let mut engine = TransferEngine::new(net);
        engine.set_telemetry(self.world.tele.clone());
        let report = match engine.try_run(&spec, SimDuration::from_hours(24)) {
            Ok(report) => report,
            // The WAN as partitioned right now could not carry the
            // session: counted, not fatal.
            Err(e) => {
                self.count_copy_failure();
                return Err(ShareError::Transfer(e));
            }
        };
        self.world.copies += 1;
        self.world.bytes_copied += bytes;
        self.world
            .tele
            .add(self.world.tele.counter("sharing.bytes_copied"), bytes);
        Ok(report)
    }

    fn count_copy_failure(&mut self) {
        self.world.copies_failed += 1;
        self.world
            .tele
            .add(self.world.tele.counter("sharing.copies_failed"), 1);
    }

    /// Count revoked-or-expired capabilities still granting anywhere, at
    /// the current instant. The acceptance bar is zero at all times;
    /// this is the scorecard half of the audit story (the differential
    /// oracle in `osdc-audit` re-checks against a flat model).
    pub fn safety_violations(&self) -> u64 {
        let now = self.engine.now();
        let mut violations = 0;
        for registry in &self.world.registries {
            let caps: Vec<_> = registry.capabilities().cloned().collect();
            for cap in caps {
                let dead = registry.is_revoked(cap.id) || cap.level.expired(now);
                if !dead {
                    continue;
                }
                for action in Action::ALL {
                    if registry.check(&cap.grantee, &cap.path, action, now) == Some(cap.id) {
                        violations += 1;
                    }
                }
            }
        }
        violations
    }

    /// Pending DTN messages (nonzero only while partitioned).
    pub fn dtn_depth(&self) -> usize {
        self.world.dtn.len()
    }

    pub fn report(&self) -> SharingReport {
        let mut latencies = self.world.convergence_secs.clone();
        // total_cmp, not partial_cmp().expect(): a NaN latency (e.g. a
        // poisoned clock delta) must not panic the scorecard. NaNs sort
        // last under the IEEE total order, so p50/max stay meaningful.
        latencies.sort_by(f64::total_cmp);
        let p50 = if latencies.is_empty() {
            0.0
        } else {
            latencies[latencies.len() / 2]
        };
        let max = latencies.last().copied().unwrap_or(0.0);
        SharingReport {
            grants: self.world.grants,
            revokes: self.world.revokes,
            rounds: self.world.rounds,
            messages_delivered: self.world.messages_delivered,
            messages_buffered: self.world.messages_buffered,
            dtn_flushed: self.world.dtn_flushed,
            records_converged: latencies.len() as u64,
            convergence_p50_secs: p50,
            convergence_max_secs: max,
            converged: self.converged(),
            checks_allowed: self.world.checks_allowed,
            checks_denied: self.world.checks_denied,
            copies: self.world.copies,
            copies_failed: self.world.copies_failed,
            bytes_copied: self.world.bytes_copied,
            safety_violations: self.safety_violations(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(seed: u64) -> SharingSim {
        SharingSim::new(SharingConfig::new(seed))
    }

    #[test]
    fn grant_gossips_to_every_data_center() {
        let mut s = sim(1);
        let id = s.grant(DcId(0), "alice", "/projects/genomics", TrustLevel::View);
        assert_eq!(
            s.check(DcId(2), "alice", "/projects/genomics/f", Action::Read),
            None
        );
        assert!(s.quiesce(16));
        for dc in DcId::ALL {
            assert_eq!(
                s.check(dc, "alice", "/projects/genomics/f", Action::Read),
                Some(id),
                "{dc} missing the grant"
            );
        }
        let r = s.report();
        assert_eq!(r.records_converged, 1);
        assert!(r.convergence_max_secs > 0.0);
        assert_eq!(r.safety_violations, 0);
    }

    #[test]
    fn revocation_reaches_every_replica() {
        let mut s = sim(2);
        let id = s.grant(DcId(1), "bob", "/public/1000genomes", TrustLevel::Copy);
        assert!(s.quiesce(16));
        // Revoke from a *different* data center than the origin.
        assert!(s.revoke(DcId(3), id));
        assert!(s.quiesce(16));
        for dc in DcId::ALL {
            assert_eq!(
                s.check(dc, "bob", "/public/1000genomes/x", Action::Read),
                None
            );
        }
        assert_eq!(s.report().safety_violations, 0);
    }

    #[test]
    fn partition_buffers_then_flushes() {
        let mut s = sim(3);
        // LVOC is cut off for 10 minutes starting at t=0.
        s.apply_partitions(&[PartitionEvent {
            at_secs: 0.0,
            duration_secs: 600.0,
            site: OsdcSite::Lvoc,
        }]);
        let id = s.grant(DcId(0), "carol", "/data/climate", TrustLevel::Transfer);
        // Give gossip plenty of rounds *within* the partition window.
        s.run_for(SimDuration::from_secs(540));
        let lvoc = DcId(2);
        assert_eq!(
            s.check(lvoc, "carol", "/data/climate/t.nc", Action::Read),
            None,
            "partitioned replica must not have learned the grant"
        );
        // The other three converge among themselves meanwhile.
        for dc in [DcId(0), DcId(1), DcId(3)] {
            assert_eq!(
                s.check(dc, "carol", "/data/climate/t.nc", Action::Read),
                Some(id)
            );
        }
        assert!(s.report().messages_buffered > 0, "DTN must have buffered");
        // Partition heals at 600s; quiesce from there.
        s.run_until_time(SimTime::ZERO + SimDuration::from_secs(601));
        assert!(s.quiesce(16));
        assert_eq!(
            s.check(lvoc, "carol", "/data/climate/t.nc", Action::Read),
            Some(id)
        );
        let r = s.report();
        assert!(r.dtn_flushed > 0, "healing must flush the DTN queue");
        assert_eq!(r.safety_violations, 0);
    }

    #[test]
    fn revocation_wins_even_when_issued_during_partition() {
        let mut s = sim(4);
        let id = s.grant(DcId(0), "dave", "/projects/mri", TrustLevel::Copy);
        assert!(s.quiesce(16));
        // Miami drops off; while it is dark, the origin revokes.
        s.apply_partitions(&[PartitionEvent {
            at_secs: s.now().as_secs_f64() + 1.0,
            duration_secs: 300.0,
            site: OsdcSite::AmpathMiami,
        }]);
        s.run_for(SimDuration::from_secs(2));
        assert!(s.revoke(DcId(0), id));
        // During the partition, Miami still honours the stale grant —
        // that is the expected (and documented) inconsistency window.
        s.run_for(SimDuration::from_secs(60));
        assert_eq!(
            s.check(DcId(3), "dave", "/projects/mri/scan1", Action::Read),
            Some(id)
        );
        // After healing + quiescence the revocation is global.
        s.run_for(SimDuration::from_secs(300));
        assert!(s.quiesce(16));
        for dc in DcId::ALL {
            assert_eq!(
                s.check(dc, "dave", "/projects/mri/scan1", Action::Read),
                None
            );
        }
        assert_eq!(s.report().safety_violations, 0);
    }

    #[test]
    fn lend_expires_federation_wide_without_records() {
        let mut s = sim(5);
        let expires = SimTime::ZERO + SimDuration::from_secs(120);
        s.grant(
            DcId(2),
            "erin",
            "/archive",
            TrustLevel::LendUntil { expires },
        );
        assert!(s.quiesce(4));
        assert!(s.now() < expires, "quiesce should beat the lend deadline");
        assert!(s
            .check(DcId(0), "erin", "/archive/v1", Action::Read)
            .is_some());
        s.run_until_time(expires);
        for dc in DcId::ALL {
            assert_eq!(s.check(dc, "erin", "/archive/v1", Action::Read), None);
        }
        assert_eq!(s.report().safety_violations, 0);
    }

    #[test]
    fn copy_rides_a_transfer_session() {
        let mut s = sim(6);
        s.grant(DcId(0), "frank", "/public/ncbi", TrustLevel::Copy);
        assert!(s.quiesce(16));
        let report = s
            .copy_to(DcId(2), "frank", "/public/ncbi/blast.db", 1 << 30)
            .expect("copy allowed and routable");
        assert!(report.mbps > 0.0);
        assert_eq!(s.report().copies, 1);
        // View-only grantee cannot copy.
        s.grant(DcId(0), "grace", "/public/ncbi", TrustLevel::View);
        assert!(s.quiesce(16));
        assert!(matches!(
            s.copy_to(DcId(2), "grace", "/public/ncbi/blast.db", 1024),
            Err(ShareError::Denied { .. })
        ));
    }

    #[test]
    fn revocation_racing_a_copy_is_counted_not_fatal() {
        let mut s = sim(7);
        let id = s.grant(DcId(0), "heidi", "/projects/genomics", TrustLevel::Copy);
        assert!(s.quiesce(16));
        s.revoke(DcId(0), id);
        assert!(s.quiesce(16));
        // The capability is dead everywhere by the time the materialize
        // lands: typed error, scorecard event, no panic.
        assert!(matches!(
            s.copy_to(DcId(2), "heidi", "/projects/genomics", 1 << 20),
            Err(ShareError::Denied { .. })
        ));
        let r = s.report();
        assert_eq!(r.copies, 0);
        assert_eq!(r.copies_failed, 1);
    }

    #[test]
    fn report_survives_nan_convergence_latency() {
        // A poisoned latency sample must not panic the sort; NaN orders
        // last under total_cmp so max is still finite-meaningful only
        // when the data is, and p50 keeps working regardless.
        let mut s = sim(8);
        s.grant(DcId(0), "ivan", "/data/climate", TrustLevel::View);
        s.quiesce(16);
        s.world.convergence_secs.push(f64::NAN);
        s.world.convergence_secs.push(12.5);
        let r = s.report();
        assert_eq!(r.records_converged, s.world.convergence_secs.len() as u64);
        assert!(r.convergence_p50_secs.is_finite());
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let drive = |seed| {
            let mut s = sim(seed);
            s.apply_partitions(&[PartitionEvent {
                at_secs: 60.0,
                duration_secs: 240.0,
                site: OsdcSite::ChicagoLakeshore,
            }]);
            let id = s.grant(DcId(0), "u", "/d", TrustLevel::Copy);
            s.run_for(SimDuration::from_secs(90));
            s.revoke(DcId(0), id);
            s.quiesce(32);
            let r = s.report();
            (
                r.rounds,
                r.messages_delivered,
                r.messages_buffered,
                r.dtn_flushed,
                r.convergence_max_secs.to_bits(),
                r.converged,
            )
        };
        assert_eq!(drive(42), drive(42));
        assert_ne!(drive(42), drive(43), "seed must actually matter");
    }
}
