//! Property-based checks on the sharing federation: under randomized
//! grant/lend/revoke churn and randomized partition windows, the safety
//! invariant (no revoked or expired capability ever grants) holds at
//! every probe point, replicas converge once partitions heal, and
//! same-seed runs are bit-identical.

use osdc_net::wan::OsdcSite;
use osdc_sharing::{Action, DcId, PartitionEvent, SharingConfig, SharingSim, TrustLevel};
use osdc_sim::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

const USERS: [&str; 4] = ["alice", "bob", "carol", "dave"];
const PATHS: [&str; 4] = [
    "/projects/genomics",
    "/public/1000genomes",
    "/data/climate",
    "/archive/modencode",
];

/// Drive a seeded churn schedule and return a run fingerprint.
fn drive(seed: u64, partitions: &[(u8, u16, u16)], ops: u32) -> (u64, u64, bool, u64) {
    let mut sim = SharingSim::new(SharingConfig::new(seed));
    let schedule: Vec<PartitionEvent> = partitions
        .iter()
        .map(|&(site, at, dur)| PartitionEvent {
            at_secs: at as f64,
            duration_secs: dur as f64 + 1.0,
            site: OsdcSite::ALL[(site % 4) as usize],
        })
        .collect();
    sim.apply_partitions(&schedule);
    let mut rng = SimRng::new(seed ^ 0xc4a2_9e11);
    let mut minted = Vec::new();
    let mut violations = 0u64;
    for i in 0..ops {
        sim.run_for(SimDuration::from_secs(rng.range_inclusive(5, 60)));
        let dc = DcId((rng.below(4)) as u8);
        match rng.below(10) {
            0..=4 => {
                let level = match rng.below(4) {
                    0 => TrustLevel::View,
                    1 => TrustLevel::LendUntil {
                        expires: sim.now() + SimDuration::from_secs(rng.range_inclusive(30, 600)),
                    },
                    2 => TrustLevel::Copy,
                    _ => TrustLevel::Transfer,
                };
                let user = USERS[(rng.below(4)) as usize];
                let path = PATHS[(rng.below(4)) as usize];
                minted.push(sim.grant(dc, user, path, level));
            }
            5..=7 if !minted.is_empty() => {
                let id = minted[(rng.below(minted.len() as u64)) as usize];
                sim.revoke(dc, id);
            }
            _ => {
                let user = USERS[(rng.below(4)) as usize];
                let path = PATHS[(rng.below(4)) as usize];
                sim.check(dc, user, path, Action::Read);
            }
        }
        // The safety bar holds at *every* step, not just at the end.
        if i % 8 == 0 {
            violations += sim.safety_violations();
        }
    }
    // Let every partition window close, then quiesce.
    let last = schedule
        .iter()
        .map(|p| p.until())
        .max()
        .unwrap_or(SimTime::ZERO);
    sim.run_until_time(last + SimDuration::from_secs(1));
    let quiesced = sim.quiesce(64);
    violations += sim.safety_violations();
    let r = sim.report();
    (
        r.messages_delivered,
        r.records_converged,
        quiesced && r.converged,
        violations + r.safety_violations,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn churn_under_partitions_is_safe_and_convergent(
        seed in 0u64..1_000,
        partitions in proptest::collection::vec((0u8..4, 0u16..900, 60u16..600), 0..4),
        ops in 12u32..40,
    ) {
        let (_, _, quiesced, violations) = drive(seed, &partitions, ops);
        prop_assert_eq!(violations, 0, "revoked/expired capability granted");
        prop_assert!(quiesced, "replicas failed to converge after partitions healed");
    }

    #[test]
    fn same_seed_same_fingerprint(
        seed in 0u64..1_000,
        partitions in proptest::collection::vec((0u8..4, 0u16..900, 60u16..600), 0..3),
        ops in 12u32..24,
    ) {
        prop_assert_eq!(
            drive(seed, &partitions, ops),
            drive(seed, &partitions, ops)
        );
    }
}
