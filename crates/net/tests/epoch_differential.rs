//! Differential property tests: the epoch solver against the reference
//! per-tick solver, over randomized topologies, flow sets, and link
//! up/down sequences.
//!
//! Two grades of agreement are asserted:
//!
//! * **tick-compat (tolerance 0)** — bit-identical observables: rates,
//!   byte counters, loss-event counts, and completion status must match
//!   the reference exactly, including through chaos-style link toggles
//!   applied via the targeted mutators on one side and the old
//!   `topology_mut` + `refresh_paths` recompute on the other.
//! * **default epoch mode (tolerance 5e-3)** — per-flow rates and
//!   completion times within 1e-6 relative on loss-free runs (loss-free
//!   because the default mode may legally re-order RNG draws when it
//!   jumps; tick-compat covers the lossy case bit-exactly).

use osdc_net::{
    CongestionControl, FlowId, FlowSpec, FluidNet, LinkId, NodeId, SolverMode, Topology,
};
use osdc_sim::SimDuration;
use proptest::prelude::*;

/// A connected random topology: a line backbone over `n` nodes (so every
/// pair routes) plus `extra` chords, with capacities from `caps`.
fn random_topology(n: usize, extra: &[(usize, usize)], caps: &[f64]) -> Topology {
    let mut t = Topology::new();
    let nodes: Vec<_> = (0..n).map(|i| t.add_node(format!("n{i}"))).collect();
    for (i, w) in nodes.windows(2).enumerate() {
        let cap = caps[i % caps.len()];
        t.add_duplex_link(w[0], w[1], cap, SimDuration::from_millis(5 + i as u64), 0.0);
    }
    for &(a, b) in extra {
        let (a, b) = (a % n, b % n);
        if a != b {
            let cap = caps[(a + b) % caps.len()];
            t.add_duplex_link(nodes[a], nodes[b], cap, SimDuration::from_millis(3), 0.0);
        }
    }
    t
}

#[derive(Clone, Debug)]
struct FlowPlan {
    src: usize,
    dst: usize,
    bytes: u64,
    cc_kind: u8,
    rate: f64,
    app_limit: f64,
}

fn cc_from(plan: &FlowPlan) -> CongestionControl {
    match plan.cc_kind % 3 {
        0 => CongestionControl::Constant {
            rate_bps: plan.rate,
        },
        1 => CongestionControl::reno(0.05),
        _ => CongestionControl::udt(plan.rate),
    }
}

fn start_all(net: &mut FluidNet, n_nodes: usize, plans: &[FlowPlan]) -> Vec<FlowId> {
    plans
        .iter()
        .map(|p| {
            let src = p.src % n_nodes;
            let mut dst = p.dst % n_nodes;
            if dst == src {
                dst = (src + 1) % n_nodes;
            }
            net.start_flow(FlowSpec {
                src: NodeId(src),
                dst: NodeId(dst),
                bytes: p.bytes,
                cc: cc_from(p),
                app_limit_bps: p.app_limit,
            })
            .expect("line backbone routes every pair")
        })
        .collect()
}

/// Drive `net` for `ticks`, toggling backbone link `toggle_link` down at
/// 1/3 of the run and up at 2/3 — through the targeted mutators when
/// `targeted` is set, through the old global recompute otherwise.
fn drive(net: &mut FluidNet, ticks: u64, toggle_link: Option<LinkId>, targeted: bool) {
    let (down_at, up_at) = (ticks / 3, 2 * ticks / 3);
    for i in 0..ticks {
        if let Some(l) = toggle_link {
            if i == down_at || i == up_at {
                let up = i == up_at;
                if targeted {
                    net.set_link_up(l, up);
                } else {
                    net.topology_mut().set_link_up(l, up);
                    net.refresh_paths();
                }
            }
        }
        net.step();
    }
}

/// Per-flow observable snapshot for exact comparison.
fn snapshot(net: &FluidNet, flows: &[FlowId]) -> Vec<(u64, u64, u64, bool)> {
    flows
        .iter()
        .map(|&f| {
            (
                net.bytes_done(f),
                net.current_rate_bps(f).to_bits(),
                net.loss_events(f),
                !matches!(net.status(f), osdc_net::FlowStatus::Active),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tick-compat mode is bit-identical to the reference solver on
    /// randomized topologies, mixed-CC flow sets, and a link down/up
    /// toggle applied mid-run — even though one side uses the targeted
    /// mutators and the other the old global recompute.
    #[test]
    fn tick_compat_matches_reference_bitwise(
        n in 3usize..7,
        extra in proptest::collection::vec((0usize..8, 0usize..8), 0..3),
        plans in proptest::collection::vec(
            (0usize..8, 0usize..8, 1u64<<22..1u64<<28, 0u8..3, 0.5e9f64..8e9, 1e9f64..20e9),
            1..5,
        ),
        toggle in 0usize..5,
        ticks in 50u64..400,
    ) {
        let plans: Vec<FlowPlan> = plans
            .into_iter()
            .map(|(src, dst, bytes, cc_kind, rate, app_limit)| FlowPlan {
                src, dst, bytes, cc_kind, rate, app_limit,
            })
            .collect();
        let caps = [1e9, 4e9, 10e9];
        let topo = random_topology(n, &extra, &caps);
        // Toggle one backbone link (the first 2(n-1) links are the line).
        let toggle_link = LinkId((toggle % (n - 1)) * 2);

        let mut reference = FluidNet::with_solver(topo.clone(), 99, SolverMode::Reference);
        let mut compat = FluidNet::tick_compat(topo, 99);
        let fr = start_all(&mut reference, n, &plans);
        let fc = start_all(&mut compat, n, &plans);

        drive(&mut reference, ticks, Some(toggle_link), false);
        drive(&mut compat, ticks, Some(toggle_link), true);

        prop_assert_eq!(snapshot(&reference, &fr), snapshot(&compat, &fc));
        prop_assert_eq!(reference.now(), compat.now());
    }

    /// The default epoch mode tracks the reference on loss-free runs:
    /// bytes moved agree within 1e-6 plus the mode's own desire tolerance
    /// (2 × 5e-3, the documented drift bound), and completions agree
    /// exactly. The 1e-6-exact contract is carried by tick-compat mode,
    /// which the bitwise test above holds to something stronger.
    #[test]
    fn default_epoch_tracks_reference_closely(
        n in 3usize..6,
        plans in proptest::collection::vec(
            (0usize..8, 0usize..8, 1u64<<22..1u64<<26, 0u8..3, 0.5e9f64..8e9, 1e9f64..20e9),
            1..4,
        ),
        ticks in 100u64..600,
    ) {
        let plans: Vec<FlowPlan> = plans
            .into_iter()
            .map(|(src, dst, bytes, cc_kind, rate, app_limit)| FlowPlan {
                src, dst, bytes, cc_kind, rate, app_limit,
            })
            .collect();
        let caps = [2e9, 10e9];
        let topo = random_topology(n, &[], &caps);

        let mut reference = FluidNet::with_solver(topo.clone(), 7, SolverMode::Reference);
        let mut epoch = FluidNet::with_solver(topo, 7, SolverMode::DEFAULT);
        let fr = start_all(&mut reference, n, &plans);
        let fe = start_all(&mut epoch, n, &plans);

        drive(&mut reference, ticks, None, false);
        drive(&mut epoch, ticks, None, true);

        for (&r, &e) in fr.iter().zip(&fe) {
            let (rb, eb) = (reference.bytes_done(r) as f64, epoch.bytes_done(e) as f64);
            let denom = rb.max(1.0);
            prop_assert!(
                ((rb - eb) / denom).abs() < 1e-6 + 5e-3 * 2.0,
                "bytes diverged: reference {rb} vs epoch {eb}"
            );
            prop_assert_eq!(
                matches!(reference.status(r), osdc_net::FlowStatus::Active),
                matches!(epoch.status(e), osdc_net::FlowStatus::Active),
                "completion status diverged"
            );
        }
    }
}
