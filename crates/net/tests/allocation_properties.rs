//! Property-based checks on the fluid model's max-min fair allocator:
//! conservation (no link over capacity), demand-boundedness and fairness,
//! over randomized topologies and flow sets.

use osdc_net::{CongestionControl, FlowSpec, FluidNet, Topology};
use osdc_sim::SimDuration;
use proptest::prelude::*;

/// Build a star topology: `n` leaves through one shared hub link.
fn star(n_leaves: usize, hub_capacity: f64) -> (Topology, Vec<osdc_net::NodeId>, osdc_net::NodeId) {
    let mut t = Topology::new();
    let hub = t.add_node("hub");
    let sink = t.add_node("sink");
    t.add_duplex_link(hub, sink, hub_capacity, SimDuration::from_millis(5), 0.0);
    let leaves: Vec<_> = (0..n_leaves)
        .map(|i| {
            let leaf = t.add_node(format!("leaf{i}"));
            t.add_duplex_link(leaf, hub, 100e9, SimDuration::from_millis(1), 0.0);
            leaf
        })
        .collect();
    (t, leaves, sink)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// However demands are drawn, one tick never moves more bytes through
    /// the shared link than its capacity allows, and no flow exceeds its
    /// own demand.
    #[test]
    fn conservation_and_demand_bounds(
        demands in proptest::collection::vec(1.0e6f64..5e9, 1..12),
        cap_gbps in 1.0f64..20.0,
    ) {
        let cap = cap_gbps * 1e9;
        let (topo, leaves, sink) = star(demands.len(), cap);
        let mut net = FluidNet::new(topo, 7);
        let flows: Vec<_> = demands
            .iter()
            .zip(&leaves)
            .map(|(&d, &leaf)| {
                net.start_flow(FlowSpec {
                    src: leaf,
                    dst: sink,
                    bytes: u64::MAX,
                    cc: CongestionControl::Constant { rate_bps: d },
                    app_limit_bps: f64::INFINITY,
                }).expect("route")
            })
            .collect();
        let steps = 100u64;
        for _ in 0..steps {
            net.step();
        }
        let elapsed = net.now().as_secs_f64();
        let mut total_bits = 0.0;
        for (f, &d) in flows.iter().zip(&demands) {
            let bits = net.bytes_done(*f) as f64 * 8.0;
            total_bits += bits;
            prop_assert!(
                bits <= d * elapsed * 1.0001,
                "flow exceeded its demand: {} > {}", bits, d * elapsed
            );
        }
        prop_assert!(
            total_bits <= cap * elapsed * 1.0001,
            "link overdriven: {} > {}", total_bits, cap * elapsed
        );
    }

    /// Equal demands through a shared bottleneck get equal shares.
    #[test]
    fn equal_demands_equal_shares(n in 2usize..10, demand in 1.0e9f64..20e9) {
        let (topo, leaves, sink) = star(n, 5e9);
        let mut net = FluidNet::new(topo, 11);
        let flows: Vec<_> = leaves
            .iter()
            .map(|&leaf| {
                net.start_flow(FlowSpec {
                    src: leaf,
                    dst: sink,
                    bytes: u64::MAX,
                    cc: CongestionControl::Constant { rate_bps: demand },
                    app_limit_bps: f64::INFINITY,
                }).expect("route")
            })
            .collect();
        for _ in 0..50 {
            net.step();
        }
        let bytes: Vec<f64> = flows.iter().map(|&f| net.bytes_done(f) as f64).collect();
        let min = bytes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max: f64 = bytes.iter().cloned().fold(0.0, f64::max);
        prop_assert!(max > 0.0);
        prop_assert!((max - min) / max < 0.01, "unfair shares: {bytes:?}");
    }

    /// A small demand is never throttled below its ask while bigger flows
    /// still get the rest (max-min property).
    #[test]
    fn small_demand_is_satisfied(big in 2.0e9f64..20e9) {
        let (topo, leaves, sink) = star(2, 1e9);
        let mut net = FluidNet::new(topo, 13);
        let small = net.start_flow(FlowSpec {
            src: leaves[0],
            dst: sink,
            bytes: u64::MAX,
            cc: CongestionControl::Constant { rate_bps: 50e6 },
            app_limit_bps: f64::INFINITY,
        }).expect("route");
        let large = net.start_flow(FlowSpec {
            src: leaves[1],
            dst: sink,
            bytes: u64::MAX,
            cc: CongestionControl::Constant { rate_bps: big },
            app_limit_bps: f64::INFINITY,
        }).expect("route");
        for _ in 0..100 {
            net.step();
        }
        let t = net.now().as_secs_f64();
        let small_rate = net.bytes_done(small) as f64 * 8.0 / t;
        let large_rate = net.bytes_done(large) as f64 * 8.0 / t;
        prop_assert!((small_rate / 50e6 - 1.0).abs() < 0.02, "small flow got {small_rate}");
        // The big flow takes (almost) all the remainder of the 1G hub.
        prop_assert!(large_rate > 0.90e9 - 50e6, "large flow got {large_rate}");
    }
}
