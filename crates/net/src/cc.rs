//! Congestion-control models advanced in fluid-simulation ticks.
//!
//! Two real protocols matter for Table 3:
//!
//! * **TCP Reno** (what 2012 rsync-over-ssh rode on): window-based AIMD —
//!   exponential slow start to `ssthresh`, +1 MSS per RTT in congestion
//!   avoidance, window halving on loss. At 104 ms RTT a single Reno stream
//!   needs ~3500 packets in flight to hold 400 mbit/s, so even rare random
//!   loss (~1e-7/packet) caps it far below the 10G line rate — the effect
//!   the paper exploits.
//! * **UDT D-AIMD** (what UDR rides on): rate-based control updated every
//!   `SYN = 0.01 s`. The increase step grows with the *estimated available
//!   bandwidth* (decimal-quantized, per the UDT spec), and the decrease is
//!   a gentle ×8/9, so recovery after a loss takes well under a second
//!   instead of many RTTs. That asymmetry is the entire UDR story.

use crate::MSS_BYTES;

/// UDT's fixed rate-control interval, seconds.
pub const UDT_SYN_SECS: f64 = 0.01;

/// Default TCP socket-buffer (receive window) ceiling in bytes.
///
/// This is the quietly decisive constant of Table 3: a single 2012-era TCP
/// stream is bounded by `min(cwnd, rwnd) / RTT`, and hosts tuned to a
/// few-megabyte `tcp_rmem` top out around 400 mbit/s at 104 ms — exactly
/// where the paper's unencrypted rsync lands. UDT sizes its own UDP
/// buffers to the bandwidth-delay product and escapes the ceiling.
pub const DEFAULT_RWND_BYTES: f64 = 5.55e6;

/// TCP Reno window state (window counted in packets).
#[derive(Clone, Debug)]
pub struct RenoState {
    pub cwnd_pkts: f64,
    pub ssthresh_pkts: f64,
    /// Receive-window ceiling in packets (socket buffer bound).
    pub rwnd_pkts: f64,
    /// Smoothed RTT used to convert window → rate, seconds.
    pub rtt_secs: f64,
}

impl RenoState {
    pub fn new(rtt_secs: f64) -> Self {
        Self::with_rwnd(rtt_secs, DEFAULT_RWND_BYTES)
    }

    pub fn with_rwnd(rtt_secs: f64, rwnd_bytes: f64) -> Self {
        RenoState {
            cwnd_pkts: 2.0,
            ssthresh_pkts: f64::INFINITY,
            rwnd_pkts: (rwnd_bytes / MSS_BYTES).max(2.0),
            rtt_secs: rtt_secs.max(1e-4),
        }
    }

    pub fn desired_rate_bps(&self) -> f64 {
        self.cwnd_pkts.min(self.rwnd_pkts) * MSS_BYTES * 8.0 / self.rtt_secs
    }

    /// Advance by `dt` seconds during which `acked_pkts` packets were
    /// delivered (fluid approximation of the ack clock).
    pub fn on_progress(&mut self, acked_pkts: f64) {
        if self.cwnd_pkts < self.ssthresh_pkts {
            // Slow start: +1 packet per ack (doubling per RTT).
            self.cwnd_pkts = (self.cwnd_pkts + acked_pkts).min(self.ssthresh_pkts.max(2.0));
        } else {
            // Congestion avoidance: +1/cwnd per ack.
            self.cwnd_pkts += acked_pkts / self.cwnd_pkts;
        }
        // The window can never outgrow what the receiver will buffer.
        self.cwnd_pkts = self.cwnd_pkts.min(self.rwnd_pkts);
    }

    pub fn on_loss(&mut self) {
        self.ssthresh_pkts = (self.cwnd_pkts / 2.0).max(2.0);
        self.cwnd_pkts = self.ssthresh_pkts;
    }
}

/// UDT rate-based state (rate counted in packets/second).
#[derive(Clone, Debug)]
pub struct UdtState {
    pub rate_pps: f64,
    /// Bottleneck bandwidth estimate in bits/second (UDT derives this from
    /// packet-pair probes; the fluid model feeds it the true path value).
    pub bw_estimate_bps: f64,
    /// Seconds of simulated time accumulated toward the next SYN boundary.
    syn_accum: f64,
    /// Whether a loss arrived during the current SYN interval (suppresses
    /// the increase for that interval, per the spec).
    loss_this_syn: bool,
}

impl UdtState {
    pub fn new(bw_estimate_bps: f64) -> Self {
        UdtState {
            // UDT starts around a handful of packets per SYN.
            rate_pps: 16.0 / UDT_SYN_SECS,
            bw_estimate_bps,
            syn_accum: 0.0,
            loss_this_syn: false,
        }
    }

    pub fn desired_rate_bps(&self) -> f64 {
        self.rate_pps * MSS_BYTES * 8.0
    }

    /// The published UDT increase formula: packets added per SYN interval,
    /// from the decimal-quantized available bandwidth.
    fn inc_pkts_per_syn(&self) -> f64 {
        let avail_bps = self.bw_estimate_bps - self.rate_pps * MSS_BYTES * 8.0;
        if avail_bps <= 0.0 {
            1.0 / MSS_BYTES
        } else {
            let quantized = 10f64.powf(avail_bps.log10().ceil());
            (quantized * 1.5e-6 / MSS_BYTES).max(1.0 / MSS_BYTES)
        }
    }

    /// Advance by `dt` seconds; applies one increase per elapsed SYN
    /// boundary (loss-free intervals only).
    pub fn on_tick(&mut self, dt: f64) {
        self.syn_accum += dt;
        while self.syn_accum >= UDT_SYN_SECS {
            self.syn_accum -= UDT_SYN_SECS;
            if self.loss_this_syn {
                self.loss_this_syn = false;
            } else {
                self.rate_pps += self.inc_pkts_per_syn() / UDT_SYN_SECS;
            }
        }
    }

    /// Multiplicative decrease on a loss event: rate ← rate × 8/9.
    pub fn on_loss(&mut self) {
        self.rate_pps *= 8.0 / 9.0;
        self.rate_pps = self.rate_pps.max(1.0);
        self.loss_this_syn = true;
    }
}

/// A flow's congestion-control discipline.
#[derive(Clone, Debug)]
pub enum CongestionControl {
    /// Window-based TCP Reno.
    Reno(RenoState),
    /// Rate-based UDT.
    Udt(UdtState),
    /// Fixed-rate source (UDP-style or an abstract provisioned channel).
    Constant { rate_bps: f64 },
}

impl CongestionControl {
    pub fn reno(rtt_secs: f64) -> Self {
        CongestionControl::Reno(RenoState::new(rtt_secs))
    }

    pub fn reno_with_rwnd(rtt_secs: f64, rwnd_bytes: f64) -> Self {
        CongestionControl::Reno(RenoState::with_rwnd(rtt_secs, rwnd_bytes))
    }

    pub fn udt(bw_estimate_bps: f64) -> Self {
        CongestionControl::Udt(UdtState::new(bw_estimate_bps))
    }

    /// Rate the flow *wants* to send at right now, bits/second.
    pub fn desired_rate_bps(&self) -> f64 {
        match self {
            CongestionControl::Reno(s) => s.desired_rate_bps(),
            CongestionControl::Udt(s) => s.desired_rate_bps(),
            CongestionControl::Constant { rate_bps } => *rate_bps,
        }
    }

    /// Advance internal clocks after a tick in which `delivered_bytes` got
    /// through.
    pub fn on_tick(&mut self, dt: f64, delivered_bytes: f64) {
        match self {
            CongestionControl::Reno(s) => s.on_progress(delivered_bytes / MSS_BYTES),
            CongestionControl::Udt(s) => s.on_tick(dt),
            CongestionControl::Constant { .. } => {}
        }
    }

    pub fn on_loss(&mut self) {
        match self {
            CongestionControl::Reno(s) => s.on_loss(),
            CongestionControl::Udt(s) => s.on_loss(),
            CongestionControl::Constant { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut s = RenoState::new(0.1);
        let start = s.cwnd_pkts;
        // One RTT of acks at the current rate doubles the window.
        s.on_progress(start);
        assert!((s.cwnd_pkts - 2.0 * start).abs() < 1e-9);
    }

    #[test]
    fn reno_congestion_avoidance_is_linear() {
        let mut s = RenoState::new(0.1);
        s.ssthresh_pkts = 10.0;
        s.cwnd_pkts = 10.0;
        // One full window of acks adds ~1 packet.
        s.on_progress(10.0);
        assert!((s.cwnd_pkts - 11.0).abs() < 1e-9);
    }

    #[test]
    fn reno_loss_halves() {
        let mut s = RenoState::new(0.1);
        s.cwnd_pkts = 100.0;
        s.ssthresh_pkts = 50.0;
        s.on_loss();
        assert_eq!(s.cwnd_pkts, 50.0);
        assert_eq!(s.ssthresh_pkts, 50.0);
    }

    #[test]
    fn reno_rate_matches_window_over_rtt() {
        let mut s = RenoState::new(0.104);
        s.cwnd_pkts = 3561.0; // ≈ what 400 mbit/s needs at 104 ms
        let rate = s.desired_rate_bps();
        assert!(
            (rate / 1e6 - 400.0).abs() < 1.0,
            "rate {} mbit/s",
            rate / 1e6
        );
    }

    #[test]
    fn udt_ramps_quickly() {
        let mut s = UdtState::new(10e9);
        let r0 = s.desired_rate_bps();
        for _ in 0..100 {
            s.on_tick(UDT_SYN_SECS); // one simulated second
        }
        let r1 = s.desired_rate_bps();
        assert!(
            r1 > r0 + 1e9,
            "UDT should gain >1 Gbit/s per second when idle: {r0} → {r1}"
        );
    }

    #[test]
    fn udt_decrease_is_gentle() {
        let mut s = UdtState::new(10e9);
        s.rate_pps = 90_000.0;
        s.on_loss();
        assert!((s.rate_pps - 80_000.0).abs() < 1.0);
    }

    #[test]
    fn udt_no_increase_in_lossy_syn() {
        let mut s = UdtState::new(10e9);
        s.rate_pps = 1000.0;
        s.on_loss();
        let r = s.rate_pps;
        s.on_tick(UDT_SYN_SECS); // the SYN containing the loss: no increase
        assert_eq!(s.rate_pps, r);
        s.on_tick(UDT_SYN_SECS); // next SYN: growth resumes
        assert!(s.rate_pps > r);
    }

    #[test]
    fn udt_increase_shrinks_near_capacity() {
        let far = UdtState {
            rate_pps: 1000.0,
            ..UdtState::new(10e9)
        };
        let near = UdtState {
            rate_pps: 10e9 / (MSS_BYTES * 8.0) * 0.999,
            ..UdtState::new(10e9)
        };
        assert!(far.inc_pkts_per_syn() > near.inc_pkts_per_syn());
    }

    #[test]
    fn udt_min_increase_at_saturation() {
        let over = UdtState {
            rate_pps: 10e9 / (MSS_BYTES * 8.0) * 1.5,
            ..UdtState::new(10e9)
        };
        assert_eq!(over.inc_pkts_per_syn(), 1.0 / MSS_BYTES);
    }

    #[test]
    fn constant_rate_is_inert() {
        let mut cc = CongestionControl::Constant { rate_bps: 5e6 };
        cc.on_loss();
        cc.on_tick(1.0, 1e6);
        assert_eq!(cc.desired_rate_bps(), 5e6);
    }

    #[test]
    fn reno_recovers_after_loss() {
        // Sanity-check the AIMD sawtooth: loss then growth back.
        let mut cc = CongestionControl::reno(0.1);
        for _ in 0..20 {
            let pkts = cc.desired_rate_bps() * 0.1 / (MSS_BYTES * 8.0);
            cc.on_tick(0.1, pkts * MSS_BYTES);
        }
        let peak = cc.desired_rate_bps();
        cc.on_loss();
        let post = cc.desired_rate_bps();
        assert!(post < peak);
        for _ in 0..200 {
            let pkts = cc.desired_rate_bps() * 0.1 / (MSS_BYTES * 8.0);
            cc.on_tick(0.1, pkts * MSS_BYTES);
        }
        assert!(cc.desired_rate_bps() > post);
    }
}
