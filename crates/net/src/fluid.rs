//! The fluid network: max-min fair sharing plus stochastic loss.
//!
//! Each tick (default 10 ms):
//!
//! 1. every active flow states its *desired* rate — the minimum of its
//!    congestion-control rate and its application limit;
//! 2. link capacity is divided by progressive filling (max-min fairness):
//!    all flows grow uniformly until a link saturates or a flow reaches its
//!    desire, then that constraint freezes and filling continues;
//! 3. flows advance `rate × dt` bytes; completion times are recorded;
//! 4. random loss is sampled per flow from its path loss probability and
//!    the number of packets it moved this tick; lossy flows get their
//!    congestion control's loss reaction. Links driven at ≥ capacity apply
//!    an additional congestion-loss probability, closing the AIMD loop even
//!    on clean fiber.
//!
//! # Epochs
//!
//! Re-running progressive filling every tick is wasteful: between
//! *allocation-changing events* (flow arrival/completion, a link going up
//! or down, a material change in a flow's desired rate) the allocation is
//! constant, so the solver result can be cached and each tick reduced to
//! the advance/loss bookkeeping of step 3–4. [`SolverMode`] selects how
//! aggressively the cache is reused:
//!
//! * [`SolverMode::Reference`] — the original semantics: a full
//!   progressive-filling solve on every tick. Kept as the referee for
//!   differential tests.
//! * [`SolverMode::Epoch`] — the cached allocation is reused until an
//!   allocation-changing event. `desire_tolerance` bounds how far a
//!   congestion-controlled flow's desire may drift from the value used at
//!   the last solve before a re-solve is forced. At `0.0`
//!   (tick-compatibility mode) any bit-level drift re-solves, every solve
//!   runs the full reference arithmetic, and runs are **byte-identical**
//!   to `Reference` — same rates, same traces, same RNG draws. At a
//!   positive tolerance the solver additionally re-solves *incrementally*:
//!   only the connected component of flows touched by dirty links or
//!   drifted desires is re-filled (exact, because max-min allocation
//!   decomposes over link-disjoint components), an early-exit skips
//!   filling entirely when every link can carry the sum of its flows'
//!   desires, and deadline-driven runs jump analytically over runs of
//!   ticks where every active flow is constant-rate.
//!
//! The solver is allocation-free on the hot path: all per-solve working
//! sets live in persistent scratch buffers on the [`FluidNet`].

use osdc_sim::stats::Series;
use osdc_sim::{SimDuration, SimRng, SimTime};
use osdc_telemetry::{audit, CounterId, GaugeId, HistogramId, Telemetry};

use crate::cc::CongestionControl;
use crate::topology::{LinkId, NodeId, Topology};
use crate::MSS_BYTES;

/// Pre-interned ids for the network-wide metrics; per-flow series go out
/// as trace points instead, so flow count never grows the registry.
#[derive(Clone, Copy, Debug)]
struct NetIds {
    flows_started: CounterId,
    flows_completed: CounterId,
    loss_events: CounterId,
    active_flows: GaugeId,
    flow_throughput_mbps: HistogramId,
}

impl NetIds {
    fn register(tele: &Telemetry) -> Self {
        NetIds {
            flows_started: tele.counter("net.flows_started"),
            flows_completed: tele.counter("net.flows_completed"),
            loss_events: tele.counter("net.loss_events"),
            active_flows: tele.gauge("net.active_flows"),
            flow_throughput_mbps: tele.histogram("net.flow_throughput_mbps"),
        }
    }
}

/// Emit one trace point for every `TRACE_POINT_STRIDE` local `Series`
/// samples. The local series keeps its fine 500 ms grid for plots; the
/// shared ring gets one point per ~5 simulated seconds so a terabyte-scale
/// Table 3 transfer cannot evict everything else.
const TRACE_POINT_STRIDE: u64 = 10;

/// How the max-min allocation is computed and reused across ticks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SolverMode {
    /// Full progressive-filling solve on every tick (the pre-epoch
    /// semantics). The referee for differential testing.
    Reference,
    /// Cache the allocation between allocation-changing events.
    Epoch {
        /// Relative drift of a flow's desired rate (vs. the desire used at
        /// the last solve) that forces a re-solve. `0.0` is
        /// tick-compatibility mode: byte-identical to [`SolverMode::Reference`].
        desire_tolerance: f64,
    },
}

impl SolverMode {
    /// Default epoch mode: re-solve on ~0.5 % desire drift. Fast, and
    /// throughput-accurate to well under a percent.
    pub const DEFAULT: SolverMode = SolverMode::Epoch {
        desire_tolerance: 5e-3,
    };

    /// Epoch bookkeeping with zero drift tolerance: same rates, traces and
    /// RNG draws as [`SolverMode::Reference`], byte for byte.
    pub const TICK_COMPAT: SolverMode = SolverMode::Epoch {
        desire_tolerance: 0.0,
    };

    fn tolerance(self) -> Option<f64> {
        match self {
            SolverMode::Reference => None,
            SolverMode::Epoch { desire_tolerance } => Some(desire_tolerance),
        }
    }
}

/// Handle to a flow inside a [`FluidNet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FlowId(pub usize);

/// Parameters for starting a flow.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    pub src: NodeId,
    pub dst: NodeId,
    /// Total bytes to move; `u64::MAX` approximates an unbounded source.
    pub bytes: u64,
    pub cc: CongestionControl,
    /// Application ceiling in bits/second (disk, cipher, or protocol stage
    /// bottleneck). `f64::INFINITY` if unconstrained.
    pub app_limit_bps: f64,
}

#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FlowStatus {
    Active,
    Done { at: SimTime },
}

/// Why a flow could not be started. Under fault injection (links down,
/// sites partitioned) these are runtime conditions the caller degrades
/// on, not configuration errors worth a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// No usable route between the endpoints (possibly because every
    /// candidate path crosses a downed link).
    NoRoute { src: String, dst: String },
    /// Source and destination are the same node.
    SameEndpoint { node: String },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::NoRoute { src, dst } => write!(f, "no route {src} → {dst}"),
            NetError::SameEndpoint { node } => {
                write!(f, "flow endpoints must differ (both {node})")
            }
        }
    }
}

impl std::error::Error for NetError {}

struct FlowState {
    src: NodeId,
    dst: NodeId,
    path: Vec<LinkId>,
    path_loss: f64,
    bytes_total: u64,
    bytes_done: f64,
    cc: CongestionControl,
    app_limit_bps: f64,
    status: FlowStatus,
    started: SimTime,
    /// `(time, instantaneous mbit/s)` sampled on a coarse grid.
    trace: Series,
    next_trace_at: SimTime,
    loss_events: u64,
    /// Samples taken so far, for striding telemetry points.
    samples: u64,
    /// `("net.flowN.mbps", "net.flowN.cwnd_mbps")`, precomputed at
    /// `start_flow` only when telemetry is live.
    point_names: Option<(String, String)>,
    /// Allocated rate from the last solve, bits/second.
    rate_bps: f64,
    /// The desire fed to the solver at the last solve; drift beyond the
    /// mode's tolerance forces a re-solve.
    desire_used: f64,
    /// Whether any path link was saturated at the last solve.
    congested: bool,
    /// Per-tick loss-event probability cache, keyed on the exact
    /// `(p, pkts)` pair so the `powf` is skipped while the rate holds.
    q_key_p: f64,
    q_key_pkts: f64,
    q_event: f64,
}

impl FlowState {
    fn is_active(&self) -> bool {
        self.status == FlowStatus::Active
    }

    fn desire(&self) -> f64 {
        self.cc.desired_rate_bps().min(self.app_limit_bps)
    }

    /// Would re-solving with desire `d` materially change the allocation?
    fn desire_drifted(&self, d: f64, tol: f64) -> bool {
        if tol == 0.0 {
            // Tick compatibility: any bit-level drift re-solves.
            return d != self.desire_used;
        }
        // A flow held below its desire by links stays link-limited while
        // its desire remains above the allocation: the desire is not the
        // binding constraint, so its motion cannot change the result.
        if self.rate_bps < self.desire_used - 1e-6 && d > self.rate_bps * (1.0 + tol) {
            return false;
        }
        (d - self.desire_used).abs() > tol * self.desire_used.max(1.0)
    }
}

/// Persistent solver working sets: nothing on the solve path allocates.
#[derive(Default)]
struct Scratch {
    /// `(flow index, desired rate)` in ascending flow order.
    desires: Vec<(usize, f64)>,
    /// `(flow index, allocated rate)`, parallel to `desires`.
    alloc: Vec<(usize, f64)>,
    frozen: Vec<bool>,
    remaining: Vec<f64>,
    users: Vec<usize>,
    /// Per-flow membership in the incremental re-solve set.
    resolve: Vec<bool>,
    /// Per-link membership closure of the re-solve set.
    link_in_r: Vec<bool>,
}

/// Solver work counters, exposed for benches and perf baselines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Ticks advanced (analytic jumps count every tick they cover).
    pub ticks: u64,
    /// Progressive-filling solves actually executed.
    pub solves: u64,
}

/// The simulator. Owns a topology, the flows, a clock and a seeded RNG.
pub struct FluidNet {
    topo: Topology,
    flows: Vec<FlowState>,
    now: SimTime,
    tick: SimDuration,
    rng: SimRng,
    /// Extra per-packet loss probability applied when a link is saturated.
    congestion_loss: f64,
    /// Interval between throughput trace samples.
    trace_every: SimDuration,
    tele: Telemetry,
    ids: Option<NetIds>,
    mode: SolverMode,
    /// Active-flow counter, maintained on start/complete/cancel so no call
    /// site pays an O(flows) scan.
    active: usize,
    /// Whether the cached allocation may be reused at all. Cleared by
    /// whole-topology invalidations (`topology_mut`, tick changes).
    cache_valid: bool,
    /// Links whose state or crossing-flow set changed since the last
    /// solve; only flows across these links need re-solving.
    dirty_links: Vec<bool>,
    any_dirty: bool,
    /// Current per-link allocated load, maintained across solves.
    link_load: Vec<f64>,
    link_saturated: Vec<bool>,
    scratch: Scratch,
    stats: SolverStats,
}

impl FluidNet {
    pub fn new(topo: Topology, seed: u64) -> Self {
        Self::with_solver(topo, seed, SolverMode::DEFAULT)
    }

    /// Build with an explicit solver mode; see [`SolverMode`].
    pub fn with_solver(topo: Topology, seed: u64, mode: SolverMode) -> Self {
        let links = topo.link_count();
        FluidNet {
            topo,
            flows: Vec::new(),
            now: SimTime::ZERO,
            tick: SimDuration::from_millis(10),
            rng: SimRng::new(seed),
            congestion_loss: 1e-4,
            trace_every: SimDuration::from_millis(500),
            tele: Telemetry::disabled(),
            ids: None,
            mode,
            active: 0,
            cache_valid: false,
            dirty_links: vec![false; links],
            any_dirty: false,
            link_load: vec![0.0; links],
            link_saturated: vec![false; links],
            scratch: Scratch::default(),
            stats: SolverStats::default(),
        }
    }

    /// Epoch bookkeeping, byte-identical artifacts to the pre-epoch
    /// (reference) solver. For golden-trace comparisons.
    pub fn tick_compat(topo: Topology, seed: u64) -> Self {
        Self::with_solver(topo, seed, SolverMode::TICK_COMPAT)
    }

    pub fn solver_mode(&self) -> SolverMode {
        self.mode
    }

    /// Tick/solve counters since construction.
    pub fn solver_stats(&self) -> SolverStats {
        self.stats
    }

    /// Attach a telemetry handle. Per-flow throughput/cwnd go into the
    /// trace ring as strided points; loss events and flow lifecycle go
    /// into counters; completed-flow goodput into a histogram.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.ids = tele.is_enabled().then(|| NetIds::register(&tele));
        self.tele = tele;
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }
    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn set_tick(&mut self, tick: SimDuration) {
        assert!(!tick.is_zero());
        self.tick = tick;
        self.cache_valid = false;
    }

    /// Launch a flow. Errors (rather than panicking) when the endpoints
    /// coincide or no usable route exists — under fault injection a
    /// partitioned WAN is a runtime condition to degrade on, not a
    /// configuration bug.
    pub fn start_flow(&mut self, spec: FlowSpec) -> Result<FlowId, NetError> {
        if spec.src == spec.dst {
            return Err(NetError::SameEndpoint {
                node: self.topo.node_name(spec.src).to_string(),
            });
        }
        let path =
            self.topo
                .shortest_path(spec.src, spec.dst)
                .ok_or_else(|| NetError::NoRoute {
                    src: self.topo.node_name(spec.src).to_string(),
                    dst: self.topo.node_name(spec.dst).to_string(),
                })?;
        let path_loss = self.topo.path_loss_rate(&path);
        let id = FlowId(self.flows.len());
        let point_names = self.ids.map(|_| {
            (
                format!("net.flow{}.mbps", id.0),
                format!("net.flow{}.cwnd_mbps", id.0),
            )
        });
        for &l in &path {
            self.mark_link_dirty(l);
        }
        self.flows.push(FlowState {
            src: spec.src,
            dst: spec.dst,
            path,
            path_loss,
            bytes_total: spec.bytes,
            bytes_done: 0.0,
            cc: spec.cc,
            app_limit_bps: spec.app_limit_bps,
            status: FlowStatus::Active,
            started: self.now,
            trace: Series::new(format!("flow{}", id.0)),
            next_trace_at: self.now,
            loss_events: 0,
            samples: 0,
            point_names,
            rate_bps: 0.0,
            desire_used: f64::NAN,
            congested: false,
            q_key_p: f64::NAN,
            q_key_pkts: f64::NAN,
            q_event: 0.0,
        });
        self.active += 1;
        if let Some(ids) = &self.ids {
            self.tele.incr(ids.flows_started);
            self.tele.set_gauge(ids.active_flows, self.active as f64);
        }
        Ok(id)
    }

    /// Mutable access to the topology, for fault injection. Follow link
    /// mutations with [`FluidNet::refresh_paths`]. Invalidates the cached
    /// allocation wholesale; the targeted [`FluidNet::set_link_up`] /
    /// [`FluidNet::set_link_loss_rate`] / [`FluidNet::set_link_delay`]
    /// mutators are cheaper because they only dirty what they touch.
    pub fn topology_mut(&mut self) -> &mut Topology {
        self.cache_valid = false;
        &mut self.topo
    }

    /// Re-resolve every active flow after a topology change: routing
    /// reconverges onto the new shortest usable path, and path loss is
    /// re-sampled from current link state. Flows left with no usable
    /// route keep their stale path and stall (downed links carry
    /// nothing) until connectivity returns. Returns how many flows
    /// changed path.
    pub fn refresh_paths(&mut self) -> usize {
        self.cache_valid = false;
        self.reroute_flows()
    }

    /// Reroute active flows onto current shortest paths, marking the old
    /// and new path links of every moved flow dirty and keeping the
    /// per-link load ledger consistent.
    fn reroute_flows(&mut self) -> usize {
        let mut rerouted = 0;
        for i in 0..self.flows.len() {
            if !self.flows[i].is_active() {
                continue;
            }
            let (src, dst) = (self.flows[i].src, self.flows[i].dst);
            if let Some(path) = self.topo.shortest_path(src, dst) {
                if path != self.flows[i].path {
                    rerouted += 1;
                    let rate = self.flows[i].rate_bps;
                    for k in 0..self.flows[i].path.len() {
                        let l = self.flows[i].path[k];
                        self.mark_link_dirty(l);
                        self.link_load[l.0] -= rate;
                    }
                    for &l in &path {
                        self.mark_link_dirty(l);
                        self.link_load[l.0] += rate;
                    }
                    self.flows[i].path = path;
                }
            }
            self.flows[i].path_loss = self.topo.path_loss_rate(&self.flows[i].path);
        }
        rerouted
    }

    /// Bring a link up or down and reconverge routing, dirtying only the
    /// link and the paths of flows that moved. Equivalent to
    /// `topology_mut().set_link_up(..)` + [`FluidNet::refresh_paths`] but
    /// keeps the allocation cache for flows the change cannot affect.
    /// Returns how many flows changed path.
    pub fn set_link_up(&mut self, id: LinkId, up: bool) -> usize {
        self.topo.set_link_up(id, up);
        self.mark_link_dirty(id);
        self.reroute_flows()
    }

    /// Change a link's residual loss rate. Loss does not enter the
    /// allocator or the routing metric, so only the path-loss of flows
    /// crossing the link is refreshed; cached rates stay valid.
    pub fn set_link_loss_rate(&mut self, id: LinkId, loss_rate: f64) {
        self.topo.set_link_loss_rate(id, loss_rate);
        for i in 0..self.flows.len() {
            if self.flows[i].is_active() && self.flows[i].path.contains(&id) {
                self.flows[i].path_loss = self.topo.path_loss_rate(&self.flows[i].path);
            }
        }
    }

    /// Change a link's propagation delay and reconverge routing (delay is
    /// the routing metric, so any path may move). Returns how many flows
    /// changed path.
    pub fn set_link_delay(&mut self, id: LinkId, delay: SimDuration) -> usize {
        self.topo.set_link_delay(id, delay);
        self.reroute_flows()
    }

    fn mark_link_dirty(&mut self, l: LinkId) {
        if l.0 >= self.dirty_links.len() {
            self.dirty_links.resize(l.0 + 1, false);
        }
        self.dirty_links[l.0] = true;
        self.any_dirty = true;
    }

    pub fn status(&self, id: FlowId) -> FlowStatus {
        self.flows[id.0].status
    }

    pub fn bytes_done(&self, id: FlowId) -> u64 {
        self.flows[id.0].bytes_done as u64
    }

    pub fn loss_events(&self, id: FlowId) -> u64 {
        self.flows[id.0].loss_events
    }

    pub fn trace(&self, id: FlowId) -> &Series {
        &self.flows[id.0].trace
    }

    /// The rate the flow was granted at the most recent solve, bits/second.
    pub fn current_rate_bps(&self, id: FlowId) -> f64 {
        self.flows[id.0].rate_bps
    }

    /// Mean goodput of a finished flow in bits/second.
    pub fn average_throughput_bps(&self, id: FlowId) -> Option<f64> {
        let f = &self.flows[id.0];
        match f.status {
            FlowStatus::Done { at } => {
                let secs = at.saturating_since(f.started).as_secs_f64();
                (secs > 0.0).then(|| f.bytes_done * 8.0 / secs)
            }
            FlowStatus::Active => None,
        }
    }

    /// Number of active flows. O(1): a counter maintained at flow
    /// start/completion/cancel.
    pub fn active_flows(&self) -> usize {
        self.active
    }

    /// Ensure link-indexed buffers cover the current topology (links can
    /// be added through `topology_mut`).
    fn ensure_link_buffers(&mut self) {
        let n = self.topo.link_count();
        if self.dirty_links.len() < n {
            self.dirty_links.resize(n, false);
        }
        if self.link_load.len() < n {
            self.link_load.resize(n, 0.0);
            self.link_saturated.resize(n, false);
        }
    }

    /// Reference progressive filling over `scratch.desires`, writing
    /// `scratch.alloc`. Arithmetic is identical to the pre-epoch solver;
    /// only the storage is persistent.
    fn allocate_into(topo: &Topology, flows: &[FlowState], s: &mut Scratch) {
        let links = topo.link_count();
        s.remaining.clear();
        s.remaining.extend((0..links).map(|l| {
            let link = topo.link(LinkId(l));
            // A downed link carries nothing: flows still routed over it
            // (no alternative path) freeze at zero rate and stall.
            if link.up {
                link.capacity_bps
            } else {
                0.0
            }
        }));
        s.alloc.clear();
        s.alloc.extend(s.desires.iter().map(|&(i, _)| (i, 0.0)));
        s.frozen.clear();
        s.frozen.resize(s.desires.len(), false);
        s.users.clear();
        s.users.resize(links, 0);
        loop {
            for c in s.users.iter_mut() {
                *c = 0;
            }
            for (k, &(i, _)) in s.desires.iter().enumerate() {
                if !s.frozen[k] {
                    for &l in &flows[i].path {
                        s.users[l.0] += 1;
                    }
                }
            }
            // Uniform growth headroom: min over flows of remaining demand
            // and min over their links of remaining/users.
            let mut delta = f64::INFINITY;
            let mut any = false;
            for (k, &(i, desire)) in s.desires.iter().enumerate() {
                if s.frozen[k] {
                    continue;
                }
                any = true;
                delta = delta.min(desire - s.alloc[k].1);
                for &l in &flows[i].path {
                    delta = delta.min(s.remaining[l.0] / s.users[l.0] as f64);
                }
            }
            if !any {
                break;
            }
            let delta = delta.max(0.0);
            for (k, &(i, desire)) in s.desires.iter().enumerate() {
                if s.frozen[k] {
                    continue;
                }
                s.alloc[k].1 += delta;
                for &l in &flows[i].path {
                    s.remaining[l.0] -= delta;
                }
                if s.alloc[k].1 >= desire - 1e-6 {
                    s.frozen[k] = true;
                }
            }
            // Freeze every unfrozen flow crossing a saturated link.
            let mut progressed = false;
            for (k, &(i, _)) in s.desires.iter().enumerate() {
                if s.frozen[k] {
                    continue;
                }
                if flows[i].path.iter().any(|&l| s.remaining[l.0] <= 1e-3) {
                    s.frozen[k] = true;
                    progressed = true;
                }
            }
            if delta <= 0.0 && !progressed {
                // No headroom and nothing froze: numerical corner; stop.
                break;
            }
        }
    }

    /// Full solve over every active flow: rebuilds desires, the per-link
    /// load ledger, saturation flags and every flow's cached rate.
    fn solve_full(&mut self) {
        self.stats.solves += 1;
        self.ensure_link_buffers();
        self.scratch.desires.clear();
        for (i, f) in self.flows.iter().enumerate() {
            if f.is_active() {
                self.scratch.desires.push((i, f.desire()));
            }
        }
        // Early exit (approximate modes only): if every link can carry the
        // sum of its crossing desires, the allocation *is* the desires.
        // Skipped in tick-compat because progressive filling reaches the
        // same values through different float additions.
        let relaxed = matches!(self.mode.tolerance(), Some(t) if t > 0.0);
        let mut fits = relaxed;
        if relaxed {
            for v in self.link_load.iter_mut() {
                *v = 0.0;
            }
            for &(i, d) in &self.scratch.desires {
                for &l in &self.flows[i].path {
                    self.link_load[l.0] += d;
                }
            }
            for l in 0..self.topo.link_count() {
                if self.link_load[l] > 0.0 {
                    let link = self.topo.link(LinkId(l));
                    if !link.up || self.link_load[l] > link.capacity_bps {
                        fits = false;
                        break;
                    }
                }
            }
        }
        if fits {
            self.scratch.alloc.clear();
            let desires = std::mem::take(&mut self.scratch.desires);
            self.scratch.alloc.extend(desires.iter().copied());
            self.scratch.desires = desires;
        } else {
            Self::allocate_into(&self.topo, &self.flows, &mut self.scratch);
            // Per-link load from the fresh allocation (reference order).
            for v in self.link_load.iter_mut() {
                *v = 0.0;
            }
            for &(i, rate) in &self.scratch.alloc {
                for &l in &self.flows[i].path {
                    self.link_load[l.0] += rate;
                }
            }
        }
        for l in 0..self.topo.link_count() {
            self.link_saturated[l] =
                self.link_load[l] >= self.topo.link(LinkId(l)).capacity_bps * 0.999;
        }
        for k in 0..self.scratch.desires.len() {
            let (i, d) = self.scratch.desires[k];
            let rate = self.scratch.alloc[k].1;
            audit::check!(
                rate.is_finite() && rate >= 0.0 && rate <= d + 1e-3,
                "net.flow_rate_in_bounds",
                "full solve: flow {i} allocated {rate} bps against desire {d}"
            );
            let sat = &self.link_saturated;
            let congested = self.flows[i].path.iter().any(|&l| sat[l.0]);
            let f = &mut self.flows[i];
            f.rate_bps = rate;
            f.desire_used = d;
            f.congested = congested;
        }
        self.audit_link_loads("solve_full");
        self.clear_dirty();
        self.cache_valid = true;
    }

    /// Audit-only structural scan over the link ledger: no link carries a
    /// negative load, and no *up* link is booked beyond its capacity
    /// (within progressive-filling float slack). Compiled out unless the
    /// `audit` feature is on.
    fn audit_link_loads(&self, site: &str) {
        if !audit::enabled() {
            return;
        }
        for l in 0..self.topo.link_count() {
            let load = self.link_load[l];
            let link = self.topo.link(LinkId(l));
            audit::check!(
                load >= -1e-3,
                "net.link_load_nonnegative",
                "{site}: link {l} booked at {load} bps"
            );
            if link.up {
                audit::check!(
                    load <= link.capacity_bps * (1.0 + 1e-6) + 1e-3,
                    "net.link_load_le_capacity",
                    "{site}: link {l} booked at {load} bps over {} bps capacity",
                    link.capacity_bps
                );
            }
        }
    }

    /// Incremental solve (positive-tolerance epoch mode only): re-fill
    /// just the connected component of flows reached from dirty links and
    /// drifted desires. Exact, because components sharing no link are
    /// independent under max-min filling.
    fn solve_partial(&mut self, tol: f64) {
        self.ensure_link_buffers();
        let nf = self.flows.len();
        self.scratch.resolve.clear();
        self.scratch.resolve.resize(nf, false);
        self.scratch.link_in_r.clear();
        self.scratch.link_in_r.resize(self.topo.link_count(), false);
        let mut any = false;
        for i in 0..nf {
            let f = &self.flows[i];
            if !f.is_active() {
                continue;
            }
            let d = f.desire();
            if f.path.iter().any(|&l| self.dirty_links[l.0]) || f.desire_drifted(d, tol) {
                self.scratch.resolve[i] = true;
                any = true;
            }
        }
        if !any {
            self.clear_dirty();
            return;
        }
        self.stats.solves += 1;
        for i in 0..nf {
            if self.scratch.resolve[i] {
                for &l in &self.flows[i].path {
                    self.scratch.link_in_r[l.0] = true;
                }
            }
        }
        // Closure: pull in every flow sharing a link with the set, until
        // the set's links are used by member flows only.
        loop {
            let mut grew = false;
            for i in 0..nf {
                if self.scratch.resolve[i] || !self.flows[i].is_active() {
                    continue;
                }
                let s = &self.scratch;
                if self.flows[i].path.iter().any(|&l| s.link_in_r[l.0]) {
                    self.scratch.resolve[i] = true;
                    for &l in &self.flows[i].path {
                        self.scratch.link_in_r[l.0] = true;
                    }
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        // Member flows release their load, re-fill on full capacities
        // (their links carry member flows only), then re-book.
        self.scratch.desires.clear();
        for i in 0..nf {
            if !self.scratch.resolve[i] || !self.flows[i].is_active() {
                continue;
            }
            let rate = self.flows[i].rate_bps;
            for k in 0..self.flows[i].path.len() {
                let l = self.flows[i].path[k];
                self.link_load[l.0] -= rate;
            }
            let d = self.flows[i].desire();
            self.scratch.desires.push((i, d));
        }
        Self::allocate_into(&self.topo, &self.flows, &mut self.scratch);
        for k in 0..self.scratch.desires.len() {
            let (i, d) = self.scratch.desires[k];
            let rate = self.scratch.alloc[k].1;
            audit::check!(
                rate.is_finite() && rate >= 0.0 && rate <= d + 1e-3,
                "net.flow_rate_in_bounds",
                "partial solve: flow {i} allocated {rate} bps against desire {d}"
            );
            for j in 0..self.flows[i].path.len() {
                let l = self.flows[i].path[j];
                self.link_load[l.0] += rate;
            }
            let f = &mut self.flows[i];
            f.rate_bps = rate;
            f.desire_used = d;
        }
        for l in 0..self.topo.link_count() {
            if self.scratch.link_in_r[l] {
                self.link_saturated[l] =
                    self.link_load[l] >= self.topo.link(LinkId(l)).capacity_bps * 0.999;
            }
        }
        for i in 0..nf {
            if self.scratch.resolve[i] {
                let sat = &self.link_saturated;
                let congested = self.flows[i].path.iter().any(|&l| sat[l.0]);
                self.flows[i].congested = congested;
            }
        }
        self.audit_link_loads("solve_partial");
        self.clear_dirty();
    }

    fn clear_dirty(&mut self) {
        if self.any_dirty {
            for d in self.dirty_links.iter_mut() {
                *d = false;
            }
            self.any_dirty = false;
        }
    }

    /// Does any active flow's desire sit outside the cached solve's
    /// tolerance band?
    fn desires_drifted(&self, tol: f64) -> bool {
        self.flows
            .iter()
            .any(|f| f.is_active() && f.desire_drifted(f.desire(), tol))
    }

    /// Advance one tick. Returns the new virtual time.
    pub fn step(&mut self) -> SimTime {
        self.stats.ticks += 1;
        if self.active == 0 {
            self.now += self.tick;
            return self.now;
        }
        match self.mode.tolerance() {
            None => self.solve_full(),
            Some(tol) => {
                if !self.cache_valid {
                    self.solve_full();
                } else if self.any_dirty || self.desires_drifted(tol) {
                    if tol == 0.0 {
                        // Tick compatibility: always the full reference
                        // arithmetic, so rates stay bit-identical.
                        self.solve_full();
                    } else {
                        self.solve_partial(tol);
                    }
                }
            }
        }
        self.advance_tick()
    }

    /// Steps 3–4 of the tick: advance every active flow on its cached
    /// rate, record completions and traces, sample loss. Observable order
    /// matches the reference solver exactly (ascending flow index).
    fn advance_tick(&mut self) -> SimTime {
        let dt = self.tick.as_secs_f64();
        let end = self.now + self.tick;
        let ids = self.ids;
        let mut completed = 0usize;
        for i in 0..self.flows.len() {
            if !self.flows[i].is_active() {
                continue;
            }
            let rate = self.flows[i].rate_bps;
            let f = &mut self.flows[i];
            let bytes = rate * dt / 8.0;
            f.bytes_done += bytes;
            f.cc.on_tick(dt, bytes);
            if f.bytes_done >= f.bytes_total as f64 {
                f.bytes_done = f.bytes_total as f64;
                f.status = FlowStatus::Done { at: end };
                completed += 1;
                self.active -= 1;
                if let Some(ids) = &ids {
                    self.tele.incr(ids.flows_completed);
                    let secs = end.saturating_since(f.started).as_secs_f64();
                    if secs > 0.0 {
                        self.tele
                            .observe(ids.flow_throughput_mbps, f.bytes_done * 8.0 / secs / 1e6);
                    }
                }
                // The freed capacity re-solves the sharers next tick.
                for k in 0..self.flows[i].path.len() {
                    let l = self.flows[i].path[k];
                    self.link_load[l.0] -= rate;
                    self.mark_link_dirty(l);
                }
            }
            let f = &mut self.flows[i];
            audit::check!(
                f.bytes_done <= f.bytes_total as f64,
                "net.flow_done_le_total",
                "flow {i}: {} of {} bytes after tick",
                f.bytes_done,
                f.bytes_total
            );
            if end >= f.next_trace_at {
                f.trace.push(end, rate / 1e6);
                f.next_trace_at = end + self.trace_every;
                if let Some((mbps_name, cwnd_name)) = &f.point_names {
                    if f.samples.is_multiple_of(TRACE_POINT_STRIDE) {
                        self.tele.point(mbps_name, end, rate / 1e6);
                        self.tele
                            .point(cwnd_name, end, f.cc.desired_rate_bps() / 1e6);
                    }
                }
                f.samples += 1;
            }
            // Loss sampling: path residual loss plus congestion loss on any
            // saturated link of the path.
            let pkts = bytes / MSS_BYTES;
            let p = f.path_loss
                + if f.congested {
                    self.congestion_loss
                } else {
                    0.0
                };
            if p > 0.0 && pkts > 0.0 {
                let p_event = if p == f.q_key_p && pkts == f.q_key_pkts {
                    f.q_event
                } else {
                    let q = 1.0 - (1.0 - p).powf(pkts);
                    f.q_key_p = p;
                    f.q_key_pkts = pkts;
                    f.q_event = q;
                    q
                };
                if self.rng.chance(p_event) {
                    f.cc.on_loss();
                    f.loss_events += 1;
                    if let Some(ids) = &ids {
                        self.tele.incr(ids.loss_events);
                    }
                }
            }
        }
        if completed > 0 {
            if let Some(ids) = &ids {
                self.tele.set_gauge(ids.active_flows, self.active as f64);
            }
        }
        self.now = end;
        self.now
    }

    /// Ticks needed to reach `deadline` from now (0 if already there).
    fn ticks_until(&self, deadline: SimTime) -> u64 {
        if deadline.0 <= self.now.0 {
            return 0;
        }
        (deadline.0 - self.now.0).div_ceil(self.tick.0)
    }

    /// Whether the run loops may replace tick-by-tick stepping with an
    /// analytic jump: approximate epoch mode, a clean cache, and every
    /// active flow constant-rate (so no desire can drift mid-jump).
    fn jump_eligible(&self) -> bool {
        matches!(self.mode.tolerance(), Some(t) if t > 0.0)
            && self.cache_valid
            && !self.any_dirty
            && self
                .flows
                .iter()
                .all(|f| !f.is_active() || matches!(f.cc, CongestionControl::Constant { .. }))
    }

    /// Advance up to `max_ticks` ticks in closed form: rates are frozen,
    /// so bytes, trace samples and loss events are computed without
    /// stepping. Stops one tick short of the earliest completion so the
    /// completion tick itself goes through [`FluidNet::advance_tick`].
    /// Returns the number of ticks jumped (0 when a completion or an
    /// over-unity loss probability demands per-tick stepping).
    fn jump_constant(&mut self, max_ticks: u64) -> u64 {
        let dt = self.tick.as_secs_f64();
        let mut k = max_ticks;
        for f in self.flows.iter().filter(|f| f.is_active()) {
            let bpt = f.rate_bps * dt / 8.0;
            if bpt <= 0.0 {
                continue;
            }
            let rem = f.bytes_total as f64 - f.bytes_done;
            let to_done = (rem / bpt).ceil();
            let to_done = if to_done >= u64::MAX as f64 {
                u64::MAX
            } else {
                to_done as u64
            };
            k = k.min(to_done.saturating_sub(1));
            // Loss probability saturating at 1 would mean a loss per tick;
            // leave that regime to the stepper.
            let p = f.path_loss
                + if f.congested {
                    self.congestion_loss
                } else {
                    0.0
                };
            if p > 0.0 && 1.0 - (1.0 - p).powf(bpt / MSS_BYTES) >= 1.0 {
                return 0;
            }
        }
        if k == 0 {
            return 0;
        }
        let t0 = self.now;
        let end = SimTime(t0.0 + k * self.tick.0);
        for i in 0..self.flows.len() {
            if !self.flows[i].is_active() {
                continue;
            }
            let f = &mut self.flows[i];
            let rate = f.rate_bps;
            let bpt = rate * dt / 8.0;
            f.bytes_done += k as f64 * bpt;
            // The jump stops one tick short of the earliest completion, so
            // no flow may cross its total inside the closed form.
            audit::check!(
                f.bytes_done < f.bytes_total as f64 || bpt <= 0.0,
                "net.jump_stops_before_completion",
                "flow {i}: {} of {} bytes after a {k}-tick jump",
                f.bytes_done,
                f.bytes_total
            );
            // Trace grid: the first tick-end at or past each due sample.
            loop {
                let nta = f.next_trace_at;
                if nta > end {
                    break;
                }
                let j = if nta.0 <= t0.0 {
                    1
                } else {
                    (nta.0 - t0.0).div_ceil(self.tick.0).max(1)
                };
                let sample_t = SimTime(t0.0 + j * self.tick.0);
                if sample_t > end {
                    break;
                }
                f.trace.push(sample_t, rate / 1e6);
                f.next_trace_at = sample_t + self.trace_every;
                if let Some((mbps_name, cwnd_name)) = &f.point_names {
                    if f.samples.is_multiple_of(TRACE_POINT_STRIDE) {
                        self.tele.point(mbps_name, sample_t, rate / 1e6);
                        self.tele
                            .point(cwnd_name, sample_t, f.cc.desired_rate_bps() / 1e6);
                    }
                }
                f.samples += 1;
            }
            // Loss events over k ticks: the per-tick Bernoulli process is
            // memoryless, so inter-loss gaps are geometric; sample them
            // directly instead of drawing every tick.
            let pkts = bpt / MSS_BYTES;
            let p = f.path_loss
                + if f.congested {
                    self.congestion_loss
                } else {
                    0.0
                };
            if p > 0.0 && pkts > 0.0 {
                let q = if p == f.q_key_p && pkts == f.q_key_pkts {
                    f.q_event
                } else {
                    let q = 1.0 - (1.0 - p).powf(pkts);
                    f.q_key_p = p;
                    f.q_key_pkts = pkts;
                    f.q_event = q;
                    q
                };
                let ln_1mq = (1.0 - q).ln();
                if ln_1mq < 0.0 {
                    let mut at = 0u64;
                    loop {
                        let u = self.rng.f64();
                        let gap = ((1.0 - u).ln() / ln_1mq).floor() + 1.0;
                        let gap = if gap >= u64::MAX as f64 {
                            u64::MAX
                        } else {
                            gap as u64
                        };
                        at = at.saturating_add(gap);
                        if at > k {
                            break;
                        }
                        let f = &mut self.flows[i];
                        f.cc.on_loss();
                        f.loss_events += 1;
                        if let Some(ids) = &self.ids {
                            self.tele.incr(ids.loss_events);
                        }
                    }
                }
            }
        }
        self.now = end;
        self.stats.ticks += k;
        k
    }

    /// Step until `flow` completes or `deadline` passes; returns completion
    /// time if it finished.
    pub fn run_flow_to_completion(&mut self, flow: FlowId, deadline: SimTime) -> Option<SimTime> {
        loop {
            if let FlowStatus::Done { at } = self.flows[flow.0].status {
                return Some(at);
            }
            if self.now >= deadline {
                return None;
            }
            if self.jump_eligible() {
                let k = self.ticks_until(deadline);
                if k > 0 && self.jump_constant(k) > 0 {
                    continue;
                }
            }
            self.step();
        }
    }

    /// Step until every flow completes or `deadline` passes.
    pub fn run_all(&mut self, deadline: SimTime) {
        while self.active > 0 && self.now < deadline {
            if self.jump_eligible() {
                let k = self.ticks_until(deadline);
                if k > 0 && self.jump_constant(k) > 0 {
                    continue;
                }
            }
            self.step();
        }
    }

    /// Step until the clock reaches `deadline`, whether or not any flow is
    /// active. Backoff waits idle here so the whole net stays on one clock.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.now < deadline {
            if self.active == 0 && self.mode != SolverMode::Reference {
                // No flows: ticks are pure clock advancement; integer-exact
                // in every epoch mode (tick compatibility included).
                let k = self.ticks_until(deadline);
                self.now = SimTime(self.now.0 + k * self.tick.0);
                self.stats.ticks += k;
                return;
            }
            if self.jump_eligible() {
                let k = self.ticks_until(deadline);
                if k > 0 && self.jump_constant(k) > 0 {
                    continue;
                }
            }
            self.step();
        }
    }

    /// Abandon an active flow (a transfer giving up on its attempt): it
    /// stops consuming bandwidth immediately. Returns the bytes it had
    /// moved, so a retrying caller can resume from the remainder.
    pub fn cancel_flow(&mut self, id: FlowId) -> u64 {
        if self.flows[id.0].is_active() {
            let rate = self.flows[id.0].rate_bps;
            self.flows[id.0].status = FlowStatus::Done { at: self.now };
            self.active -= 1;
            for k in 0..self.flows[id.0].path.len() {
                let l = self.flows[id.0].path[k];
                self.link_load[l.0] -= rate;
                self.mark_link_dirty(l);
            }
            if let Some(ids) = &self.ids {
                self.tele.set_gauge(ids.active_flows, self.active as f64);
            }
        }
        self.flows[id.0].bytes_done as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osdc_sim::SimDuration;

    fn two_node_net(cap_bps: f64, one_way_ms: u64, loss: f64) -> (FluidNet, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_duplex_link(a, b, cap_bps, SimDuration::from_millis(one_way_ms), loss);
        (FluidNet::new(t, 42), a, b)
    }

    fn deadline_secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn constant_flow_finishes_on_schedule() {
        let (mut net, a, b) = two_node_net(1e9, 5, 0.0);
        // 100 Mbyte at 100 mbit/s → 8 seconds.
        let f = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: 100_000_000,
                cc: CongestionControl::Constant { rate_bps: 100e6 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        let done = net
            .run_flow_to_completion(f, deadline_secs(60))
            .expect("finishes");
        let secs = done.as_secs_f64();
        assert!((secs - 8.0).abs() < 0.1, "took {secs}s");
        assert_eq!(net.bytes_done(f), 100_000_000);
    }

    #[test]
    fn app_limit_caps_throughput() {
        let (mut net, a, b) = two_node_net(10e9, 1, 0.0);
        let f = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: 125_000_000, // 1 Gbit
                cc: CongestionControl::Constant { rate_bps: 10e9 },
                app_limit_bps: 1e9,
            })
            .expect("route");
        let done = net
            .run_flow_to_completion(f, deadline_secs(60))
            .expect("finishes");
        assert!((done.as_secs_f64() - 1.0).abs() < 0.05);
    }

    #[test]
    fn fair_share_between_equal_flows() {
        let (mut net, a, b) = two_node_net(1e9, 1, 0.0);
        let mk = |net: &mut FluidNet| {
            net.start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: u64::MAX,
                cc: CongestionControl::Constant { rate_bps: 2e9 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route")
        };
        let f1 = mk(&mut net);
        let f2 = mk(&mut net);
        for _ in 0..100 {
            net.step();
        }
        let b1 = net.bytes_done(f1) as f64;
        let b2 = net.bytes_done(f2) as f64;
        assert!((b1 / b2 - 1.0).abs() < 0.01, "{b1} vs {b2}");
        // Combined ≈ link capacity × time = 1e9 × 1s / 8.
        assert!(((b1 + b2) / 1.25e8 - 1.0).abs() < 0.02);
    }

    #[test]
    fn demand_limited_flow_leaves_capacity_to_others() {
        let (mut net, a, b) = two_node_net(1e9, 1, 0.0);
        let small = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: u64::MAX,
                cc: CongestionControl::Constant { rate_bps: 100e6 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        let big = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: u64::MAX,
                cc: CongestionControl::Constant { rate_bps: 10e9 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        for _ in 0..100 {
            net.step();
        }
        let rate_small = net.bytes_done(small) as f64 * 8.0 / 1.0;
        let rate_big = net.bytes_done(big) as f64 * 8.0 / 1.0;
        assert!(
            (rate_small / 100e6 - 1.0).abs() < 0.02,
            "small got {rate_small}"
        );
        assert!((rate_big / 900e6 - 1.0).abs() < 0.02, "big got {rate_big}");
    }

    #[test]
    fn reno_lossless_fills_short_fat_pipe() {
        let (mut net, a, b) = two_node_net(100e6, 1, 0.0);
        let f = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: u64::MAX,
                cc: CongestionControl::reno(0.004),
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        for _ in 0..1000 {
            net.step();
        }
        // After 10 s the window has grown far past the BDP; the link is the
        // limit and congestion losses keep it near capacity.
        let tp = net.bytes_done(f) as f64 * 8.0 / 10.0;
        assert!(tp > 70e6, "tp {tp}");
    }

    #[test]
    fn reno_long_fat_pipe_is_loss_limited() {
        // The Table 3 regime: 10G, 104 ms RTT, residual loss ~1.2e-7.
        let (mut net, a, b) = two_node_net(10e9, 52, 1.2e-7 / 2.0); // per-link: path has 1 link each way
        let f = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: u64::MAX,
                cc: CongestionControl::reno(0.104),
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        // 120 simulated seconds.
        for _ in 0..12_000 {
            net.step();
        }
        let tp_mbps = net.bytes_done(f) as f64 * 8.0 / 120.0 / 1e6;
        // Loss-limited far below the 10G line rate, in the few-hundred-mbit
        // band the paper measured for rsync/TCP.
        assert!(
            (200.0..900.0).contains(&tp_mbps),
            "Reno on the LFN should sit in the hundreds of mbit/s, got {tp_mbps}"
        );
    }

    #[test]
    fn udt_beats_reno_on_long_fat_pipe() {
        let mk = |cc: CongestionControl| {
            let (mut net, a, b) = two_node_net(10e9, 52, 6e-8);
            let f = net
                .start_flow(FlowSpec {
                    src: a,
                    dst: b,
                    bytes: u64::MAX,
                    cc,
                    app_limit_bps: 1e9,
                })
                .expect("route");
            for _ in 0..6000 {
                net.step();
            }
            net.bytes_done(f) as f64 * 8.0 / 60.0
        };
        let reno = mk(CongestionControl::reno(0.104));
        let udt = mk(CongestionControl::udt(10e9));
        assert!(
            udt > reno * 1.3,
            "UDT ({:.0} mbit/s) should clearly beat Reno ({:.0} mbit/s)",
            udt / 1e6,
            reno / 1e6
        );
    }

    #[test]
    fn completion_deadline_returns_none() {
        let (mut net, a, b) = two_node_net(1e6, 1, 0.0);
        let f = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: u64::MAX,
                cc: CongestionControl::Constant { rate_bps: 1e6 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        assert!(net.run_flow_to_completion(f, deadline_secs(1)).is_none());
        assert_eq!(net.status(f), FlowStatus::Active);
    }

    #[test]
    fn traces_are_recorded() {
        let (mut net, a, b) = two_node_net(1e9, 1, 0.0);
        let f = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: u64::MAX,
                cc: CongestionControl::Constant { rate_bps: 500e6 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        for _ in 0..500 {
            net.step();
        }
        let trace = net.trace(f);
        assert!(trace.len() >= 9, "got {} samples", trace.len());
        assert!((trace.mean_after(SimTime::ZERO) - 500.0).abs() < 1.0);
    }

    #[test]
    fn telemetry_traces_flow_lifecycle() {
        let (mut net, a, b) = two_node_net(1e9, 5, 1e-5);
        let tele = Telemetry::new();
        net.set_telemetry(tele.clone());
        let f = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: 100_000_000,
                cc: CongestionControl::Constant { rate_bps: 100e6 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        assert_eq!(tele.counter_value("net.flows_started"), 1);
        assert_eq!(tele.gauge_value("net.active_flows"), Some(1.0));
        net.run_flow_to_completion(f, deadline_secs(60))
            .expect("finishes");
        assert_eq!(tele.counter_value("net.flows_completed"), 1);
        assert_eq!(tele.gauge_value("net.active_flows"), Some(0.0));
        assert_eq!(tele.counter_value("net.loss_events"), net.loss_events(f));
        let snap = tele.histograms_snapshot();
        let tp = snap
            .iter()
            .find(|h| h.name == "net.flow_throughput_mbps")
            .expect("throughput histogram");
        assert_eq!(tp.count, 1);
        let jsonl = tele.export_jsonl();
        assert!(jsonl.contains("net.flow0.mbps"));
        assert!(jsonl.contains("net.flow0.cwnd_mbps"));
    }

    #[test]
    fn telemetry_disabled_leaves_no_trace() {
        let (mut net, a, b) = two_node_net(1e9, 5, 0.0);
        net.set_telemetry(Telemetry::disabled());
        let f = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: 1_000_000,
                cc: CongestionControl::Constant { rate_bps: 100e6 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        net.run_flow_to_completion(f, deadline_secs(60))
            .expect("finishes");
        // The local Series still records; the shared ring stays empty.
        assert!(!net.trace(f).is_empty() || net.bytes_done(f) > 0);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let (mut net, a, b) = two_node_net(10e9, 52, 1e-6);
            let f = net
                .start_flow(FlowSpec {
                    src: a,
                    dst: b,
                    bytes: 10_000_000_000,
                    cc: CongestionControl::udt(10e9),
                    app_limit_bps: 1e9,
                })
                .expect("route");
            net.run_flow_to_completion(f, deadline_secs(1000))
        };
        assert_eq!(run(), run());
    }

    // ---- epoch-solver specific coverage ------------------------------

    /// Trace samples as `(nanos, rate bits)` for exact comparison.
    type TraceBits = Vec<(u64, u64)>;

    /// Run a mixed CC scenario in a given mode and return every
    /// bit-comparable observable.
    fn mixed_run(mode: SolverMode) -> (Vec<u64>, Vec<u64>, Vec<TraceBits>, u64) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let h = t.add_node("hub");
        let b = t.add_node("b");
        t.add_duplex_link(a, h, 10e9, SimDuration::from_millis(20), 1e-6);
        t.add_duplex_link(h, b, 2e9, SimDuration::from_millis(32), 1e-6);
        let mut net = FluidNet::with_solver(t, 99, mode);
        let specs = [
            CongestionControl::reno(0.104),
            CongestionControl::udt(2e9),
            CongestionControl::Constant { rate_bps: 400e6 },
        ];
        let flows: Vec<FlowId> = specs
            .iter()
            .map(|cc| {
                net.start_flow(FlowSpec {
                    src: a,
                    dst: b,
                    bytes: 3_000_000_000,
                    cc: cc.clone(),
                    app_limit_bps: 1.5e9,
                })
                .expect("route")
            })
            .collect();
        for _ in 0..4000 {
            net.step();
        }
        let bytes = flows.iter().map(|&f| net.bytes_done(f)).collect();
        let losses = flows.iter().map(|&f| net.loss_events(f)).collect();
        let traces = flows
            .iter()
            .map(|&f| {
                net.trace(f)
                    .points()
                    .iter()
                    .map(|&(t, v)| (t.as_nanos(), v.to_bits()))
                    .collect()
            })
            .collect();
        (bytes, losses, traces, net.solver_stats().solves)
    }

    #[test]
    fn tick_compat_is_bit_identical_to_reference() {
        let (rb, rl, rt, _) = mixed_run(SolverMode::Reference);
        let (eb, el, et, _) = mixed_run(SolverMode::TICK_COMPAT);
        assert_eq!(rb, eb, "bytes diverge");
        assert_eq!(rl, el, "loss events diverge");
        assert_eq!(rt, et, "traces diverge");
    }

    #[test]
    fn default_epoch_mode_stays_close_and_solves_less() {
        let (rb, _, _, rs) = mixed_run(SolverMode::Reference);
        let (eb, _, _, es) = mixed_run(SolverMode::DEFAULT);
        for (r, e) in rb.iter().zip(&eb) {
            let (r, e) = (*r as f64, *e as f64);
            assert!(
                (r - e).abs() / r.max(1.0) < 0.02,
                "epoch bytes drifted: {r} vs {e}"
            );
        }
        assert!(
            es * 3 < rs,
            "epoch mode should solve far less often: {es} vs {rs}"
        );
    }

    #[test]
    fn constant_only_jump_matches_stepping() {
        let run = |jump: bool| {
            let (mut net, a, b) = two_node_net(1e9, 5, 1e-5);
            let f = net
                .start_flow(FlowSpec {
                    src: a,
                    dst: b,
                    bytes: 250_000_000,
                    cc: CongestionControl::Constant { rate_bps: 400e6 },
                    app_limit_bps: f64::INFINITY,
                })
                .expect("route");
            if jump {
                net.run_flow_to_completion(f, deadline_secs(60))
            } else {
                loop {
                    if let FlowStatus::Done { at } = net.status(f) {
                        break Some(at);
                    }
                    net.step();
                }
            }
        };
        let jumped = run(true).expect("finishes");
        let stepped = run(false).expect("finishes");
        assert_eq!(
            jumped, stepped,
            "completion time must not depend on jumping"
        );
    }

    #[test]
    fn run_until_with_no_flows_is_exact() {
        let (mut net, _a, _b) = two_node_net(1e9, 5, 0.0);
        let deadline = SimTime::ZERO + SimDuration::from_millis(12_345);
        net.run_until(deadline);
        // Tick-grid overshoot, exactly as the stepper would land.
        assert_eq!(net.now(), SimTime::ZERO + SimDuration::from_millis(12_350));
    }

    #[test]
    fn active_flow_counter_tracks_lifecycle() {
        let (mut net, a, b) = two_node_net(1e9, 1, 0.0);
        assert_eq!(net.active_flows(), 0);
        let f1 = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: 1_000_000,
                cc: CongestionControl::Constant { rate_bps: 100e6 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        let f2 = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: u64::MAX,
                cc: CongestionControl::Constant { rate_bps: 100e6 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        assert_eq!(net.active_flows(), 2);
        net.run_flow_to_completion(f1, deadline_secs(10))
            .expect("finishes");
        assert_eq!(net.active_flows(), 1);
        net.cancel_flow(f2);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn targeted_link_mutators_match_global_refresh() {
        // Same fault sequence via topology_mut+refresh_paths and via the
        // targeted mutators must produce identical transfers.
        let run = |targeted: bool| {
            let mut t = Topology::new();
            let a = t.add_node("a");
            let b = t.add_node("b");
            let c = t.add_node("c");
            t.add_duplex_link(a, b, 10e9, SimDuration::from_millis(10), 1e-7);
            t.add_duplex_link(b, c, 10e9, SimDuration::from_millis(10), 1e-7);
            t.add_duplex_link(a, c, 1e9, SimDuration::from_millis(50), 1e-7);
            let fast = t.links_between(a, b);
            let mut net = FluidNet::tick_compat(t, 7);
            let f = net
                .start_flow(FlowSpec {
                    src: a,
                    dst: c,
                    bytes: u64::MAX,
                    cc: CongestionControl::Constant { rate_bps: 5e9 },
                    app_limit_bps: f64::INFINITY,
                })
                .expect("route");
            for _ in 0..50 {
                net.step();
            }
            for &l in &fast {
                if targeted {
                    net.set_link_up(l, false);
                    net.set_link_loss_rate(l, 0.5);
                } else {
                    net.topology_mut().set_link_up(l, false);
                    net.topology_mut().set_link_loss_rate(l, 0.5);
                    net.refresh_paths();
                }
            }
            for _ in 0..50 {
                net.step();
            }
            for &l in &fast {
                if targeted {
                    net.set_link_up(l, true);
                    net.set_link_loss_rate(l, 1e-7);
                } else {
                    net.topology_mut().set_link_up(l, true);
                    net.topology_mut().set_link_loss_rate(l, 1e-7);
                    net.refresh_paths();
                }
            }
            for _ in 0..50 {
                net.step();
            }
            (net.bytes_done(f), net.loss_events(f))
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn solver_stats_count_work() {
        let (mut net, a, b) = two_node_net(1e9, 1, 0.0);
        net.start_flow(FlowSpec {
            src: a,
            dst: b,
            bytes: u64::MAX,
            cc: CongestionControl::Constant { rate_bps: 100e6 },
            app_limit_bps: f64::INFINITY,
        })
        .expect("route");
        for _ in 0..100 {
            net.step();
        }
        let s = net.solver_stats();
        assert_eq!(s.ticks, 100);
        // A constant flow needs exactly one solve in epoch mode.
        assert_eq!(s.solves, 1);
    }
}
