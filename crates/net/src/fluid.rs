//! The fluid network: max-min fair sharing plus stochastic loss.
//!
//! Each tick (default 10 ms):
//!
//! 1. every active flow states its *desired* rate — the minimum of its
//!    congestion-control rate and its application limit;
//! 2. link capacity is divided by progressive filling (max-min fairness):
//!    all flows grow uniformly until a link saturates or a flow reaches its
//!    desire, then that constraint freezes and filling continues;
//! 3. flows advance `rate × dt` bytes; completion times are recorded;
//! 4. random loss is sampled per flow from its path loss probability and
//!    the number of packets it moved this tick; lossy flows get their
//!    congestion control's loss reaction. Links driven at ≥ capacity apply
//!    an additional congestion-loss probability, closing the AIMD loop even
//!    on clean fiber.

use osdc_sim::stats::Series;
use osdc_sim::{SimDuration, SimRng, SimTime};
use osdc_telemetry::{CounterId, GaugeId, HistogramId, Telemetry};

use crate::cc::CongestionControl;
use crate::topology::{LinkId, NodeId, Topology};
use crate::MSS_BYTES;

/// Pre-interned ids for the network-wide metrics; per-flow series go out
/// as trace points instead, so flow count never grows the registry.
#[derive(Clone, Copy, Debug)]
struct NetIds {
    flows_started: CounterId,
    flows_completed: CounterId,
    loss_events: CounterId,
    active_flows: GaugeId,
    flow_throughput_mbps: HistogramId,
}

impl NetIds {
    fn register(tele: &Telemetry) -> Self {
        NetIds {
            flows_started: tele.counter("net.flows_started"),
            flows_completed: tele.counter("net.flows_completed"),
            loss_events: tele.counter("net.loss_events"),
            active_flows: tele.gauge("net.active_flows"),
            flow_throughput_mbps: tele.histogram("net.flow_throughput_mbps"),
        }
    }
}

/// Emit one trace point for every `TRACE_POINT_STRIDE` local `Series`
/// samples. The local series keeps its fine 500 ms grid for plots; the
/// shared ring gets one point per ~5 simulated seconds so a terabyte-scale
/// Table 3 transfer cannot evict everything else.
const TRACE_POINT_STRIDE: u64 = 10;

/// Handle to a flow inside a [`FluidNet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FlowId(pub usize);

/// Parameters for starting a flow.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    pub src: NodeId,
    pub dst: NodeId,
    /// Total bytes to move; `u64::MAX` approximates an unbounded source.
    pub bytes: u64,
    pub cc: CongestionControl,
    /// Application ceiling in bits/second (disk, cipher, or protocol stage
    /// bottleneck). `f64::INFINITY` if unconstrained.
    pub app_limit_bps: f64,
}

#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FlowStatus {
    Active,
    Done { at: SimTime },
}

/// Why a flow could not be started. Under fault injection (links down,
/// sites partitioned) these are runtime conditions the caller degrades
/// on, not configuration errors worth a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// No usable route between the endpoints (possibly because every
    /// candidate path crosses a downed link).
    NoRoute { src: String, dst: String },
    /// Source and destination are the same node.
    SameEndpoint { node: String },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::NoRoute { src, dst } => write!(f, "no route {src} → {dst}"),
            NetError::SameEndpoint { node } => {
                write!(f, "flow endpoints must differ (both {node})")
            }
        }
    }
}

impl std::error::Error for NetError {}

struct FlowState {
    src: NodeId,
    dst: NodeId,
    path: Vec<LinkId>,
    path_loss: f64,
    bytes_total: u64,
    bytes_done: f64,
    cc: CongestionControl,
    app_limit_bps: f64,
    status: FlowStatus,
    started: SimTime,
    /// `(time, instantaneous mbit/s)` sampled on a coarse grid.
    trace: Series,
    next_trace_at: SimTime,
    loss_events: u64,
    /// Samples taken so far, for striding telemetry points.
    samples: u64,
    /// `("net.flowN.mbps", "net.flowN.cwnd_mbps")`, precomputed at
    /// `start_flow` only when telemetry is live.
    point_names: Option<(String, String)>,
}

/// The simulator. Owns a topology, the flows, a clock and a seeded RNG.
pub struct FluidNet {
    topo: Topology,
    flows: Vec<FlowState>,
    now: SimTime,
    tick: SimDuration,
    rng: SimRng,
    /// Extra per-packet loss probability applied when a link is saturated.
    congestion_loss: f64,
    /// Interval between throughput trace samples.
    trace_every: SimDuration,
    tele: Telemetry,
    ids: Option<NetIds>,
}

impl FluidNet {
    pub fn new(topo: Topology, seed: u64) -> Self {
        FluidNet {
            topo,
            flows: Vec::new(),
            now: SimTime::ZERO,
            tick: SimDuration::from_millis(10),
            rng: SimRng::new(seed),
            congestion_loss: 1e-4,
            trace_every: SimDuration::from_millis(500),
            tele: Telemetry::disabled(),
            ids: None,
        }
    }

    /// Attach a telemetry handle. Per-flow throughput/cwnd go into the
    /// trace ring as strided points; loss events and flow lifecycle go
    /// into counters; completed-flow goodput into a histogram.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.ids = tele.is_enabled().then(|| NetIds::register(&tele));
        self.tele = tele;
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }
    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn set_tick(&mut self, tick: SimDuration) {
        assert!(!tick.is_zero());
        self.tick = tick;
    }

    /// Launch a flow. Errors (rather than panicking) when the endpoints
    /// coincide or no usable route exists — under fault injection a
    /// partitioned WAN is a runtime condition to degrade on, not a
    /// configuration bug.
    pub fn start_flow(&mut self, spec: FlowSpec) -> Result<FlowId, NetError> {
        if spec.src == spec.dst {
            return Err(NetError::SameEndpoint {
                node: self.topo.node_name(spec.src).to_string(),
            });
        }
        let path =
            self.topo
                .shortest_path(spec.src, spec.dst)
                .ok_or_else(|| NetError::NoRoute {
                    src: self.topo.node_name(spec.src).to_string(),
                    dst: self.topo.node_name(spec.dst).to_string(),
                })?;
        let path_loss = self.topo.path_loss_rate(&path);
        let id = FlowId(self.flows.len());
        let point_names = self.ids.map(|_| {
            (
                format!("net.flow{}.mbps", id.0),
                format!("net.flow{}.cwnd_mbps", id.0),
            )
        });
        self.flows.push(FlowState {
            src: spec.src,
            dst: spec.dst,
            path,
            path_loss,
            bytes_total: spec.bytes,
            bytes_done: 0.0,
            cc: spec.cc,
            app_limit_bps: spec.app_limit_bps,
            status: FlowStatus::Active,
            started: self.now,
            trace: Series::new(format!("flow{}", id.0)),
            next_trace_at: self.now,
            loss_events: 0,
            samples: 0,
            point_names,
        });
        if let Some(ids) = &self.ids {
            self.tele.incr(ids.flows_started);
            self.tele
                .set_gauge(ids.active_flows, self.active_flows() as f64);
        }
        Ok(id)
    }

    /// Mutable access to the topology, for fault injection. Follow link
    /// mutations with [`FluidNet::refresh_paths`].
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// Re-resolve every active flow after a topology change: routing
    /// reconverges onto the new shortest usable path, and path loss is
    /// re-sampled from current link state. Flows left with no usable
    /// route keep their stale path and stall (downed links carry
    /// nothing) until connectivity returns. Returns how many flows
    /// changed path.
    pub fn refresh_paths(&mut self) -> usize {
        let mut rerouted = 0;
        for f in self
            .flows
            .iter_mut()
            .filter(|f| f.status == FlowStatus::Active)
        {
            if let Some(path) = self.topo.shortest_path(f.src, f.dst) {
                if path != f.path {
                    rerouted += 1;
                }
                f.path = path;
            }
            f.path_loss = self.topo.path_loss_rate(&f.path);
        }
        rerouted
    }

    pub fn status(&self, id: FlowId) -> FlowStatus {
        self.flows[id.0].status
    }

    pub fn bytes_done(&self, id: FlowId) -> u64 {
        self.flows[id.0].bytes_done as u64
    }

    pub fn loss_events(&self, id: FlowId) -> u64 {
        self.flows[id.0].loss_events
    }

    pub fn trace(&self, id: FlowId) -> &Series {
        &self.flows[id.0].trace
    }

    /// Mean goodput of a finished flow in bits/second.
    pub fn average_throughput_bps(&self, id: FlowId) -> Option<f64> {
        let f = &self.flows[id.0];
        match f.status {
            FlowStatus::Done { at } => {
                let secs = at.saturating_since(f.started).as_secs_f64();
                (secs > 0.0).then(|| f.bytes_done * 8.0 / secs)
            }
            FlowStatus::Active => None,
        }
    }

    pub fn active_flows(&self) -> usize {
        self.flows
            .iter()
            .filter(|f| f.status == FlowStatus::Active)
            .count()
    }

    /// Max-min fair allocation by progressive filling. Returns per-flow
    /// allocated rates in bits/second for the given desires.
    fn allocate(&self, desires: &[(usize, f64)]) -> Vec<(usize, f64)> {
        let mut remaining: Vec<f64> = (0..self.topo.link_count())
            .map(|l| {
                let link = self.topo.link(LinkId(l));
                // A downed link carries nothing: flows still routed over it
                // (no alternative path) freeze at zero rate and stall.
                if link.up {
                    link.capacity_bps
                } else {
                    0.0
                }
            })
            .collect();
        let mut alloc: Vec<(usize, f64)> = desires.iter().map(|&(i, _)| (i, 0.0)).collect();
        let mut frozen: Vec<bool> = vec![false; desires.len()];
        let mut users_per_link = vec![0usize; self.topo.link_count()];
        loop {
            for c in users_per_link.iter_mut() {
                *c = 0;
            }
            for (k, &(i, _)) in desires.iter().enumerate() {
                if !frozen[k] {
                    for &l in &self.flows[i].path {
                        users_per_link[l.0] += 1;
                    }
                }
            }
            // Uniform growth headroom: min over flows of remaining demand
            // and min over their links of remaining/users.
            let mut delta = f64::INFINITY;
            let mut any = false;
            for (k, &(i, desire)) in desires.iter().enumerate() {
                if frozen[k] {
                    continue;
                }
                any = true;
                delta = delta.min(desire - alloc[k].1);
                for &l in &self.flows[i].path {
                    delta = delta.min(remaining[l.0] / users_per_link[l.0] as f64);
                }
            }
            if !any {
                break;
            }
            let delta = delta.max(0.0);
            for (k, &(i, desire)) in desires.iter().enumerate() {
                if frozen[k] {
                    continue;
                }
                alloc[k].1 += delta;
                for &l in &self.flows[i].path {
                    remaining[l.0] -= delta;
                }
                if alloc[k].1 >= desire - 1e-6 {
                    frozen[k] = true;
                }
            }
            // Freeze every unfrozen flow crossing a saturated link.
            let mut progressed = false;
            for (k, &(i, _)) in desires.iter().enumerate() {
                if frozen[k] {
                    continue;
                }
                if self.flows[i].path.iter().any(|&l| remaining[l.0] <= 1e-3) {
                    frozen[k] = true;
                    progressed = true;
                }
            }
            if delta <= 0.0 && !progressed {
                // No headroom and nothing froze: numerical corner; stop.
                break;
            }
        }
        alloc
    }

    /// Advance one tick. Returns the new virtual time.
    pub fn step(&mut self) -> SimTime {
        let dt = self.tick.as_secs_f64();
        // 1. Desires.
        let desires: Vec<(usize, f64)> = self
            .flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.status == FlowStatus::Active)
            .map(|(i, f)| (i, f.cc.desired_rate_bps().min(f.app_limit_bps)))
            .collect();
        if desires.is_empty() {
            self.now += self.tick;
            return self.now;
        }
        // 2. Fair shares.
        let alloc = self.allocate(&desires);
        // 3+4. Advance, complete, sample loss.
        let saturated: Vec<bool> = {
            // Recompute per-link load to detect saturation for congestion loss.
            let mut load = vec![0.0f64; self.topo.link_count()];
            for &(i, rate) in &alloc {
                for &l in &self.flows[i].path {
                    load[l.0] += rate;
                }
            }
            (0..self.topo.link_count())
                .map(|l| load[l] >= self.topo.link(LinkId(l)).capacity_bps * 0.999)
                .collect()
        };
        let end = self.now + self.tick;
        let ids = self.ids;
        let mut completed = 0usize;
        for &(i, rate) in &alloc {
            let f = &mut self.flows[i];
            let bytes = rate * dt / 8.0;
            f.bytes_done += bytes;
            f.cc.on_tick(dt, bytes);
            if f.bytes_done >= f.bytes_total as f64 {
                f.bytes_done = f.bytes_total as f64;
                f.status = FlowStatus::Done { at: end };
                completed += 1;
                if let Some(ids) = &ids {
                    self.tele.incr(ids.flows_completed);
                    let secs = end.saturating_since(f.started).as_secs_f64();
                    if secs > 0.0 {
                        self.tele
                            .observe(ids.flow_throughput_mbps, f.bytes_done * 8.0 / secs / 1e6);
                    }
                }
            }
            if end >= f.next_trace_at {
                f.trace.push(end, rate / 1e6);
                f.next_trace_at = end + self.trace_every;
                if let Some((mbps_name, cwnd_name)) = &f.point_names {
                    if f.samples.is_multiple_of(TRACE_POINT_STRIDE) {
                        self.tele.point(mbps_name, end, rate / 1e6);
                        self.tele
                            .point(cwnd_name, end, f.cc.desired_rate_bps() / 1e6);
                    }
                }
                f.samples += 1;
            }
            // Loss sampling: path residual loss plus congestion loss on any
            // saturated link of the path.
            let pkts = bytes / MSS_BYTES;
            let congested = f.path.iter().any(|&l| saturated[l.0]);
            let p = f.path_loss + if congested { self.congestion_loss } else { 0.0 };
            if p > 0.0 && pkts > 0.0 {
                let p_event = 1.0 - (1.0 - p).powf(pkts);
                if self.rng.chance(p_event) {
                    f.cc.on_loss();
                    f.loss_events += 1;
                    if let Some(ids) = &ids {
                        self.tele.incr(ids.loss_events);
                    }
                }
            }
        }
        if completed > 0 {
            if let Some(ids) = &ids {
                let active = self
                    .flows
                    .iter()
                    .filter(|f| f.status == FlowStatus::Active)
                    .count();
                self.tele.set_gauge(ids.active_flows, active as f64);
            }
        }
        self.now = end;
        self.now
    }

    /// Step until `flow` completes or `deadline` passes; returns completion
    /// time if it finished.
    pub fn run_flow_to_completion(&mut self, flow: FlowId, deadline: SimTime) -> Option<SimTime> {
        loop {
            if let FlowStatus::Done { at } = self.flows[flow.0].status {
                return Some(at);
            }
            if self.now >= deadline {
                return None;
            }
            self.step();
        }
    }

    /// Step until every flow completes or `deadline` passes.
    pub fn run_all(&mut self, deadline: SimTime) {
        while self.active_flows() > 0 && self.now < deadline {
            self.step();
        }
    }

    /// Step until the clock reaches `deadline`, whether or not any flow is
    /// active. Backoff waits idle here so the whole net stays on one clock.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.now < deadline {
            self.step();
        }
    }

    /// Abandon an active flow (a transfer giving up on its attempt): it
    /// stops consuming bandwidth immediately. Returns the bytes it had
    /// moved, so a retrying caller can resume from the remainder.
    pub fn cancel_flow(&mut self, id: FlowId) -> u64 {
        let f = &mut self.flows[id.0];
        if f.status == FlowStatus::Active {
            f.status = FlowStatus::Done { at: self.now };
            if let Some(ids) = &self.ids {
                self.tele
                    .set_gauge(ids.active_flows, self.active_flows() as f64);
            }
        }
        self.flows[id.0].bytes_done as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osdc_sim::SimDuration;

    fn two_node_net(cap_bps: f64, one_way_ms: u64, loss: f64) -> (FluidNet, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_duplex_link(a, b, cap_bps, SimDuration::from_millis(one_way_ms), loss);
        (FluidNet::new(t, 42), a, b)
    }

    fn deadline_secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn constant_flow_finishes_on_schedule() {
        let (mut net, a, b) = two_node_net(1e9, 5, 0.0);
        // 100 Mbyte at 100 mbit/s → 8 seconds.
        let f = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: 100_000_000,
                cc: CongestionControl::Constant { rate_bps: 100e6 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        let done = net
            .run_flow_to_completion(f, deadline_secs(60))
            .expect("finishes");
        let secs = done.as_secs_f64();
        assert!((secs - 8.0).abs() < 0.1, "took {secs}s");
        assert_eq!(net.bytes_done(f), 100_000_000);
    }

    #[test]
    fn app_limit_caps_throughput() {
        let (mut net, a, b) = two_node_net(10e9, 1, 0.0);
        let f = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: 125_000_000, // 1 Gbit
                cc: CongestionControl::Constant { rate_bps: 10e9 },
                app_limit_bps: 1e9,
            })
            .expect("route");
        let done = net
            .run_flow_to_completion(f, deadline_secs(60))
            .expect("finishes");
        assert!((done.as_secs_f64() - 1.0).abs() < 0.05);
    }

    #[test]
    fn fair_share_between_equal_flows() {
        let (mut net, a, b) = two_node_net(1e9, 1, 0.0);
        let mk = |net: &mut FluidNet| {
            net.start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: u64::MAX,
                cc: CongestionControl::Constant { rate_bps: 2e9 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route")
        };
        let f1 = mk(&mut net);
        let f2 = mk(&mut net);
        for _ in 0..100 {
            net.step();
        }
        let b1 = net.bytes_done(f1) as f64;
        let b2 = net.bytes_done(f2) as f64;
        assert!((b1 / b2 - 1.0).abs() < 0.01, "{b1} vs {b2}");
        // Combined ≈ link capacity × time = 1e9 × 1s / 8.
        assert!(((b1 + b2) / 1.25e8 - 1.0).abs() < 0.02);
    }

    #[test]
    fn demand_limited_flow_leaves_capacity_to_others() {
        let (mut net, a, b) = two_node_net(1e9, 1, 0.0);
        let small = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: u64::MAX,
                cc: CongestionControl::Constant { rate_bps: 100e6 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        let big = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: u64::MAX,
                cc: CongestionControl::Constant { rate_bps: 10e9 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        for _ in 0..100 {
            net.step();
        }
        let rate_small = net.bytes_done(small) as f64 * 8.0 / 1.0;
        let rate_big = net.bytes_done(big) as f64 * 8.0 / 1.0;
        assert!(
            (rate_small / 100e6 - 1.0).abs() < 0.02,
            "small got {rate_small}"
        );
        assert!((rate_big / 900e6 - 1.0).abs() < 0.02, "big got {rate_big}");
    }

    #[test]
    fn reno_lossless_fills_short_fat_pipe() {
        let (mut net, a, b) = two_node_net(100e6, 1, 0.0);
        let f = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: u64::MAX,
                cc: CongestionControl::reno(0.004),
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        for _ in 0..1000 {
            net.step();
        }
        // After 10 s the window has grown far past the BDP; the link is the
        // limit and congestion losses keep it near capacity.
        let tp = net.bytes_done(f) as f64 * 8.0 / 10.0;
        assert!(tp > 70e6, "tp {tp}");
    }

    #[test]
    fn reno_long_fat_pipe_is_loss_limited() {
        // The Table 3 regime: 10G, 104 ms RTT, residual loss ~1.2e-7.
        let (mut net, a, b) = two_node_net(10e9, 52, 1.2e-7 / 2.0); // per-link: path has 1 link each way
        let f = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: u64::MAX,
                cc: CongestionControl::reno(0.104),
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        // 120 simulated seconds.
        for _ in 0..12_000 {
            net.step();
        }
        let tp_mbps = net.bytes_done(f) as f64 * 8.0 / 120.0 / 1e6;
        // Loss-limited far below the 10G line rate, in the few-hundred-mbit
        // band the paper measured for rsync/TCP.
        assert!(
            (200.0..900.0).contains(&tp_mbps),
            "Reno on the LFN should sit in the hundreds of mbit/s, got {tp_mbps}"
        );
    }

    #[test]
    fn udt_beats_reno_on_long_fat_pipe() {
        let mk = |cc: CongestionControl| {
            let (mut net, a, b) = two_node_net(10e9, 52, 6e-8);
            let f = net
                .start_flow(FlowSpec {
                    src: a,
                    dst: b,
                    bytes: u64::MAX,
                    cc,
                    app_limit_bps: 1e9,
                })
                .expect("route");
            for _ in 0..6000 {
                net.step();
            }
            net.bytes_done(f) as f64 * 8.0 / 60.0
        };
        let reno = mk(CongestionControl::reno(0.104));
        let udt = mk(CongestionControl::udt(10e9));
        assert!(
            udt > reno * 1.3,
            "UDT ({:.0} mbit/s) should clearly beat Reno ({:.0} mbit/s)",
            udt / 1e6,
            reno / 1e6
        );
    }

    #[test]
    fn completion_deadline_returns_none() {
        let (mut net, a, b) = two_node_net(1e6, 1, 0.0);
        let f = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: u64::MAX,
                cc: CongestionControl::Constant { rate_bps: 1e6 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        assert!(net.run_flow_to_completion(f, deadline_secs(1)).is_none());
        assert_eq!(net.status(f), FlowStatus::Active);
    }

    #[test]
    fn traces_are_recorded() {
        let (mut net, a, b) = two_node_net(1e9, 1, 0.0);
        let f = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: u64::MAX,
                cc: CongestionControl::Constant { rate_bps: 500e6 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        for _ in 0..500 {
            net.step();
        }
        let trace = net.trace(f);
        assert!(trace.len() >= 9, "got {} samples", trace.len());
        assert!((trace.mean_after(SimTime::ZERO) - 500.0).abs() < 1.0);
    }

    #[test]
    fn telemetry_traces_flow_lifecycle() {
        let (mut net, a, b) = two_node_net(1e9, 5, 1e-5);
        let tele = Telemetry::new();
        net.set_telemetry(tele.clone());
        let f = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: 100_000_000,
                cc: CongestionControl::Constant { rate_bps: 100e6 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        assert_eq!(tele.counter_value("net.flows_started"), 1);
        assert_eq!(tele.gauge_value("net.active_flows"), Some(1.0));
        net.run_flow_to_completion(f, deadline_secs(60))
            .expect("finishes");
        assert_eq!(tele.counter_value("net.flows_completed"), 1);
        assert_eq!(tele.gauge_value("net.active_flows"), Some(0.0));
        assert_eq!(tele.counter_value("net.loss_events"), net.loss_events(f));
        let snap = tele.histograms_snapshot();
        let tp = snap
            .iter()
            .find(|h| h.name == "net.flow_throughput_mbps")
            .expect("throughput histogram");
        assert_eq!(tp.count, 1);
        let jsonl = tele.export_jsonl();
        assert!(jsonl.contains("net.flow0.mbps"));
        assert!(jsonl.contains("net.flow0.cwnd_mbps"));
    }

    #[test]
    fn telemetry_disabled_leaves_no_trace() {
        let (mut net, a, b) = two_node_net(1e9, 5, 0.0);
        net.set_telemetry(Telemetry::disabled());
        let f = net
            .start_flow(FlowSpec {
                src: a,
                dst: b,
                bytes: 1_000_000,
                cc: CongestionControl::Constant { rate_bps: 100e6 },
                app_limit_bps: f64::INFINITY,
            })
            .expect("route");
        net.run_flow_to_completion(f, deadline_secs(60))
            .expect("finishes");
        // The local Series still records; the shared ring stays empty.
        assert!(!net.trace(f).is_empty() || net.bytes_done(f) > 0);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let (mut net, a, b) = two_node_net(10e9, 52, 1e-6);
            let f = net
                .start_flow(FlowSpec {
                    src: a,
                    dst: b,
                    bytes: 10_000_000_000,
                    cc: CongestionControl::udt(10e9),
                    app_limit_bps: 1e9,
                })
                .expect("route");
            net.run_flow_to_completion(f, deadline_secs(1000))
        };
        assert_eq!(run(), run());
    }
}
