//! Sites and links of the simulated WAN, with shortest-path routing.

use osdc_sim::SimDuration;

/// Index of a node (site / host aggregation point) in a [`Topology`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Index of a *directed* link in a [`Topology`]. `add_duplex_link` creates
/// two of these, one per direction, so forward and reverse traffic never
/// contend (matching full-duplex 10G optics).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

#[derive(Clone, Debug)]
pub struct Link {
    pub from: NodeId,
    pub to: NodeId,
    /// Capacity in bits/second.
    pub capacity_bps: f64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Independent per-packet random loss probability (fiber-path residual
    /// loss; queue-overflow loss is handled by the fluid model on top).
    pub loss_rate: f64,
    /// Administrative/fault state. Down links are skipped by routing and
    /// carry nothing; fault injection toggles this.
    pub up: bool,
}

#[derive(Clone, Debug)]
struct Node {
    name: String,
    out_links: Vec<LinkId>,
}

/// A directed-graph WAN description.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl Topology {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            out_links: Vec::new(),
        });
        id
    }

    /// Add one directed link.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        capacity_bps: f64,
        delay: SimDuration,
        loss_rate: f64,
    ) -> LinkId {
        assert!(capacity_bps > 0.0, "link capacity must be positive");
        assert!(
            (0.0..1.0).contains(&loss_rate),
            "loss rate must be in [0,1)"
        );
        let id = LinkId(self.links.len());
        self.links.push(Link {
            from,
            to,
            capacity_bps,
            delay,
            loss_rate,
            up: true,
        });
        self.nodes[from.0].out_links.push(id);
        id
    }

    /// Add a full-duplex link; returns `(forward, reverse)` link ids.
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity_bps: f64,
        delay: SimDuration,
        loss_rate: f64,
    ) -> (LinkId, LinkId) {
        let f = self.add_link(a, b, capacity_bps, delay, loss_rate);
        let r = self.add_link(b, a, capacity_bps, delay, loss_rate);
        (f, r)
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0].name
    }

    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Fault-injection hooks: toggle a link's administrative state, spike
    /// its loss rate, or stretch its propagation delay. Callers holding a
    /// [`crate::FluidNet`] should follow mutations with
    /// [`crate::FluidNet::refresh_paths`] so in-flight flows reroute and
    /// re-sample their path loss.
    pub fn set_link_up(&mut self, id: LinkId, up: bool) {
        self.links[id.0].up = up;
    }

    pub fn set_link_loss_rate(&mut self, id: LinkId, loss_rate: f64) {
        assert!(
            (0.0..1.0).contains(&loss_rate),
            "loss rate must be in [0,1)"
        );
        self.links[id.0].loss_rate = loss_rate;
    }

    pub fn set_link_delay(&mut self, id: LinkId, delay: SimDuration) {
        self.links[id.0].delay = delay;
    }

    /// Every directed link between the two endpoints, in both directions
    /// (the pair a duplex link creates, plus any parallel provisioning).
    pub fn links_between(&self, a: NodeId, b: NodeId) -> Vec<LinkId> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| (l.from == a && l.to == b) || (l.from == b && l.to == a))
            .map(|(i, _)| LinkId(i))
            .collect()
    }

    /// Find the node with the given name (linear scan; topologies are tiny).
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Lowest-latency path from `src` to `dst` (Dijkstra on delay), returned
    /// as the sequence of directed links, or `None` if unreachable.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        if src == dst {
            return Some(Vec::new());
        }
        let n = self.nodes.len();
        let mut dist = vec![u64::MAX; n];
        let mut prev: Vec<Option<LinkId>> = vec![None; n];
        let mut visited = vec![false; n];
        dist[src.0] = 0;
        // O(V²) Dijkstra — topologies here have a handful of sites.
        for _ in 0..n {
            let u = (0..n)
                .filter(|&i| !visited[i] && dist[i] != u64::MAX)
                .min_by_key(|&i| dist[i])?;
            if u == dst.0 {
                break;
            }
            visited[u] = true;
            for &lid in &self.nodes[u].out_links {
                let link = &self.links[lid.0];
                if !link.up {
                    continue;
                }
                let nd = dist[u].saturating_add(link.delay.as_nanos().max(1));
                if nd < dist[link.to.0] {
                    dist[link.to.0] = nd;
                    prev[link.to.0] = Some(lid);
                }
            }
        }
        if dist[dst.0] == u64::MAX {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = dst.0;
        while cur != src.0 {
            let lid = prev[cur].expect("reached node must have a predecessor");
            path.push(lid);
            cur = self.links[lid.0].from.0;
        }
        path.reverse();
        Some(path)
    }

    /// Round-trip time along a path and back along the reverse shortest
    /// path (assumes symmetric provisioning, true of the OSDC WAN).
    pub fn rtt(&self, src: NodeId, dst: NodeId) -> Option<SimDuration> {
        let fwd = self.path_delay(&self.shortest_path(src, dst)?);
        let rev = self.path_delay(&self.shortest_path(dst, src)?);
        Some(fwd + rev)
    }

    pub fn path_delay(&self, path: &[LinkId]) -> SimDuration {
        path.iter()
            .map(|&l| self.links[l.0].delay)
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Minimum capacity along a path (the bottleneck), in bits/second.
    pub fn path_bottleneck_bps(&self, path: &[LinkId]) -> f64 {
        path.iter()
            .map(|&l| self.links[l.0].capacity_bps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Combined per-packet loss probability along a path.
    pub fn path_loss_rate(&self, path: &[LinkId]) -> f64 {
        1.0 - path
            .iter()
            .map(|&l| 1.0 - self.links[l.0].loss_rate)
            .product::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn triangle() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_duplex_link(a, b, 10e9, ms(10), 1e-6);
        t.add_duplex_link(b, c, 10e9, ms(10), 1e-6);
        t.add_duplex_link(a, c, 1e9, ms(50), 1e-6);
        (t, a, b, c)
    }

    #[test]
    fn shortest_path_prefers_low_latency() {
        let (t, a, _b, c) = triangle();
        // a→b→c is 20ms total vs direct 50ms.
        let path = t.shortest_path(a, c).expect("reachable");
        assert_eq!(path.len(), 2);
        assert_eq!(t.path_delay(&path), ms(20));
        assert_eq!(t.path_bottleneck_bps(&path), 10e9);
    }

    #[test]
    fn rtt_is_round_trip() {
        let (t, a, _b, c) = triangle();
        assert_eq!(t.rtt(a, c).expect("reachable"), ms(40));
    }

    #[test]
    fn self_path_is_empty() {
        let (t, a, ..) = triangle();
        assert_eq!(
            t.shortest_path(a, a).expect("trivial"),
            Vec::<LinkId>::new()
        );
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("island");
        assert!(t.shortest_path(a, b).is_none());
        assert!(t.rtt(a, b).is_none());
    }

    #[test]
    fn directed_links_are_one_way() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_link(a, b, 1e9, ms(5), 0.0);
        assert!(t.shortest_path(a, b).is_some());
        assert!(t.shortest_path(b, a).is_none());
    }

    #[test]
    fn path_loss_composes() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_link(a, b, 1e9, ms(1), 0.1);
        t.add_link(b, c, 1e9, ms(1), 0.1);
        let p = t.shortest_path(a, c).expect("reachable");
        assert!((t.path_loss_rate(&p) - 0.19).abs() < 1e-12);
    }

    #[test]
    fn find_node_by_name() {
        let (t, a, ..) = triangle();
        assert_eq!(t.find_node("a"), Some(a));
        assert_eq!(t.find_node("zz"), None);
        assert_eq!(t.node_name(a), "a");
    }

    #[test]
    fn down_link_forces_reroute_or_partition() {
        let (mut t, a, b, c) = triangle();
        // Take down both directions of the fast a↔b hop: traffic to c must
        // fall back to the direct 50 ms link.
        for l in t.links_between(a, b) {
            t.set_link_up(l, false);
        }
        let path = t.shortest_path(a, c).expect("fallback route");
        assert_eq!(path.len(), 1);
        assert_eq!(t.path_delay(&path), ms(50));
        // Down the fallback too: partitioned.
        for l in t.links_between(a, c) {
            t.set_link_up(l, false);
        }
        assert!(t.shortest_path(a, c).is_none());
        // Restore and the low-latency route returns.
        for l in t.links_between(a, b) {
            t.set_link_up(l, true);
        }
        assert_eq!(t.shortest_path(a, c).expect("restored").len(), 2);
    }

    #[test]
    fn loss_and_delay_overrides_apply() {
        let (mut t, a, b, _c) = triangle();
        let links = t.links_between(a, b);
        assert_eq!(links.len(), 2, "duplex pair");
        for &l in &links {
            t.set_link_loss_rate(l, 0.05);
            t.set_link_delay(l, ms(15)); // still the lowest-latency route
        }
        let p = t.shortest_path(a, b).expect("route");
        assert!((t.path_loss_rate(&p) - 0.05).abs() < 1e-12);
        assert_eq!(t.rtt(a, b).expect("route"), ms(30));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_link(a, b, 0.0, ms(1), 0.0);
    }
}
