//! # osdc-net — the OSDC wide-area network, as a flow-level simulator
//!
//! The OSDC is "a distributed facility that spans four data centers
//! connected by 10G networks" (§1). Its headline measurement (Table 3) is
//! the throughput of two transport protocols over the Chicago ↔ LVOC path
//! (104 ms RTT): classic TCP (under rsync/ssh) and **UDT**, the rate-based
//! reliable-UDP protocol UDR is built on.
//!
//! Packet-level simulation of a 1.1 TB transfer is ~800 M packets — far too
//! slow — so this crate implements the standard *fluid* (rate-based) model:
//!
//! * [`Topology`] — sites and duplex links with capacity, propagation delay
//!   and a random-loss process; shortest-path routing.
//! * [`cc`] — per-flow congestion control advanced in discrete ticks:
//!   TCP-Reno-like AIMD (slow start, congestion avoidance, halving on loss)
//!   and UDT's D-AIMD rate control (the published SYN-interval increase
//!   formula, 1/9 multiplicative decrease) as described by Gu & Grossman —
//!   the same Grossman as this paper.
//! * [`FluidNet`] — max-min fair capacity sharing via progressive filling,
//!   stochastic loss sampling, per-flow byte accounting and throughput
//!   traces.
//!
//! Application-limited flows (a sender that cannot read its disk faster
//! than 3072 mbit/s, a cipher that caps at ~396 mbit/s) are expressed with
//! [`FlowSpec::app_limit_bps`]; this is how `osdc-transfer` composes the
//! disk → cipher → WAN → cipher → disk pipeline of Table 3.

pub mod cc;
pub mod fluid;
pub mod topology;
pub mod wan;

pub use cc::{CongestionControl, RenoState, UdtState};
pub use fluid::{FlowId, FlowSpec, FlowStatus, FluidNet, NetError, SolverMode, SolverStats};
pub use topology::{LinkId, NodeId, Topology};
pub use wan::{osdc_wan, OsdcSite, OsdcWan};

/// Conventional Ethernet-era maximum segment size in bytes.
pub const MSS_BYTES: f64 = 1460.0;
