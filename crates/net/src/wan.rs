//! The OSDC's own WAN: four data centers on 10G paths (§1, Figure 3).
//!
//! Two data centers in Chicago (hosting OSDC-Adler, OSDC-Sullivan,
//! OSDC-Root and the OCC clusters), one at the Livermore Valley Open Campus
//! (LVOC) and one at the AMPATH exchange in Miami, all reached over 10G
//! research networks via StarLight. The only path the paper measures is
//! Chicago ↔ LVOC at 104 ms RTT; the other latencies are set to plausible
//! geographic values and only matter for the multi-site experiments.

use osdc_sim::SimDuration;

use crate::topology::{NodeId, Topology};

/// The four OSDC data-center sites plus the StarLight exchange they meet at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OsdcSite {
    /// Chicago DC #1 (Kenwood — OSDC-Adler, OSDC-Root).
    ChicagoKenwood,
    /// Chicago DC #2 (OSDC-Sullivan, OCC-Y, OCC-Matsu).
    ChicagoLakeshore,
    /// Livermore Valley Open Campus, California.
    Lvoc,
    /// AMPATH exchange point, Miami.
    AmpathMiami,
    /// StarLight international exchange, the hub (www.startap.net, §6.3).
    StarLight,
}

impl OsdcSite {
    pub const ALL: [OsdcSite; 5] = [
        OsdcSite::ChicagoKenwood,
        OsdcSite::ChicagoLakeshore,
        OsdcSite::Lvoc,
        OsdcSite::AmpathMiami,
        OsdcSite::StarLight,
    ];

    pub fn name(self) -> &'static str {
        match self {
            OsdcSite::ChicagoKenwood => "chicago-kenwood",
            OsdcSite::ChicagoLakeshore => "chicago-lakeshore",
            OsdcSite::Lvoc => "lvoc",
            OsdcSite::AmpathMiami => "ampath-miami",
            OsdcSite::StarLight => "starlight",
        }
    }
}

/// Handle to the built WAN: topology plus site → node mapping.
pub struct OsdcWan {
    pub topology: Topology,
    nodes: [NodeId; 5],
}

impl OsdcWan {
    pub fn node(&self, site: OsdcSite) -> NodeId {
        self.nodes[site as usize]
    }
}

/// Build the OSDC WAN with the given residual per-path packet-loss rate on
/// the long-haul links (the Table 3 calibration knob; `1.2e-7` reproduces
/// the paper's single-stream TCP behaviour — see DESIGN.md §5).
pub fn osdc_wan(long_haul_loss: f64) -> OsdcWan {
    let mut t = Topology::new();
    let nodes = [
        t.add_node(OsdcSite::ChicagoKenwood.name()),
        t.add_node(OsdcSite::ChicagoLakeshore.name()),
        t.add_node(OsdcSite::Lvoc.name()),
        t.add_node(OsdcSite::AmpathMiami.name()),
        t.add_node(OsdcSite::StarLight.name()),
    ];
    let gbps10 = 10e9;
    let ms = SimDuration::from_millis;
    // Metro links into StarLight: sub-millisecond-ish metro latency.
    t.add_duplex_link(nodes[0], nodes[4], gbps10, ms(1), 0.0);
    t.add_duplex_link(nodes[1], nodes[4], gbps10, ms(1), 0.0);
    // Chicago ↔ LVOC measured RTT is 104 ms; 1 ms of metro each way leaves
    // 51 ms one-way on the long-haul segment. Split the residual loss
    // between the two directions of the measured path.
    t.add_duplex_link(nodes[2], nodes[4], gbps10, ms(51), long_haul_loss / 2.0);
    // Chicago ↔ Miami: ~58 ms RTT over research backbones.
    t.add_duplex_link(nodes[3], nodes[4], gbps10, ms(28), long_haul_loss / 2.0);
    OsdcWan { topology: t, nodes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chicago_lvoc_rtt_matches_paper() {
        let wan = osdc_wan(1.2e-7);
        let rtt = wan
            .topology
            .rtt(wan.node(OsdcSite::ChicagoKenwood), wan.node(OsdcSite::Lvoc))
            .expect("path exists");
        assert_eq!(rtt, SimDuration::from_millis(104));
    }

    #[test]
    fn all_sites_reachable() {
        let wan = osdc_wan(0.0);
        for a in OsdcSite::ALL {
            for b in OsdcSite::ALL {
                if a != b {
                    assert!(
                        wan.topology
                            .shortest_path(wan.node(a), wan.node(b))
                            .is_some(),
                        "{} → {} unreachable",
                        a.name(),
                        b.name()
                    );
                }
            }
        }
    }

    #[test]
    fn intra_chicago_is_fast() {
        let wan = osdc_wan(0.0);
        let rtt = wan
            .topology
            .rtt(
                wan.node(OsdcSite::ChicagoKenwood),
                wan.node(OsdcSite::ChicagoLakeshore),
            )
            .expect("path exists");
        assert_eq!(rtt, SimDuration::from_millis(4));
    }

    #[test]
    fn paths_are_10g() {
        let wan = osdc_wan(1e-7);
        let p = wan
            .topology
            .shortest_path(wan.node(OsdcSite::ChicagoKenwood), wan.node(OsdcSite::Lvoc))
            .expect("path exists");
        assert_eq!(wan.topology.path_bottleneck_bps(&p), 10e9);
    }

    #[test]
    fn loss_applies_to_long_haul_only() {
        let wan = osdc_wan(2e-7);
        let metro = wan
            .topology
            .shortest_path(
                wan.node(OsdcSite::ChicagoKenwood),
                wan.node(OsdcSite::ChicagoLakeshore),
            )
            .expect("path exists");
        assert_eq!(wan.topology.path_loss_rate(&metro), 0.0);
        let lfn = wan
            .topology
            .shortest_path(wan.node(OsdcSite::ChicagoKenwood), wan.node(OsdcSite::Lvoc))
            .expect("path exists");
        assert!((wan.topology.path_loss_rate(&lfn) - 1e-7).abs() < 1e-12);
    }
}
