//! Canonical request/response vocabulary shared by every provider.
//!
//! Tukey's translation layer (§5.2) exists so the console can speak one
//! language while each cloud speaks its own. The canonical types here are
//! that one language, factored out of `osdc-tukey` so any number of
//! provider dialects can translate to and from it. Translators are pure
//! `encode_*`/`decode_*` functions over these types (one module per
//! provider); everything stateful — registries, pricing, failover — is
//! built on top.

use std::collections::BTreeMap;

/// A provider-agnostic console request. Flavor and image names are
/// *unified* names; each provider's alias tables map them to native
/// identifiers at encode time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CanonicalRequest {
    /// List every instance the calling user owns.
    ListInstances,
    /// Launch one instance. `name` doubles as the client token: a
    /// provider that sees the same live name again returns the existing
    /// instance instead of double-booting.
    LaunchInstance {
        name: String,
        flavor: String,
        image: u64,
    },
    /// Terminate by native instance id.
    TerminateInstance {
        id: u64,
    },
    /// Describe one instance by native id.
    DescribeInstance {
        id: u64,
    },
    ListFlavors,
    ListImages,
}

impl CanonicalRequest {
    /// Stable label for telemetry counters and scorecards.
    pub fn label(&self) -> &'static str {
        match self {
            CanonicalRequest::ListInstances => "list",
            CanonicalRequest::LaunchInstance { .. } => "launch",
            CanonicalRequest::TerminateInstance { .. } => "terminate",
            CanonicalRequest::DescribeInstance { .. } => "describe",
            CanonicalRequest::ListFlavors => "flavors",
            CanonicalRequest::ListImages => "images",
        }
    }

    /// Does this request mutate backend state? (A lost response to a
    /// mutating call is what creates orphans; reads are free to retry.)
    pub fn is_mutating(&self) -> bool {
        matches!(
            self,
            CanonicalRequest::LaunchInstance { .. } | CanonicalRequest::TerminateInstance { .. }
        )
    }
}

/// Instance lifecycle states in the canonical vocabulary.
///
/// `openstack()` / `ec2()` give the two classic wire spellings; the spot
/// provider adds `Preempted`, which OpenStack-format consoles render as
/// `"PREEMPTED"` (no 2012 stack had a word for it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CanonicalStatus {
    Build,
    Active,
    Shutoff,
    Terminated,
    Preempted,
}

impl CanonicalStatus {
    pub fn openstack(self) -> &'static str {
        match self {
            CanonicalStatus::Build => "BUILD",
            CanonicalStatus::Active => "ACTIVE",
            CanonicalStatus::Shutoff => "SHUTOFF",
            CanonicalStatus::Terminated => "DELETED",
            CanonicalStatus::Preempted => "PREEMPTED",
        }
    }

    pub fn ec2(self) -> &'static str {
        match self {
            CanonicalStatus::Build => "pending",
            CanonicalStatus::Active => "running",
            CanonicalStatus::Shutoff => "stopped",
            CanonicalStatus::Terminated => "terminated",
            CanonicalStatus::Preempted => "preempted",
        }
    }

    pub fn from_openstack(s: &str) -> Option<CanonicalStatus> {
        Some(match s {
            "BUILD" => CanonicalStatus::Build,
            "ACTIVE" => CanonicalStatus::Active,
            "SHUTOFF" => CanonicalStatus::Shutoff,
            "DELETED" => CanonicalStatus::Terminated,
            "PREEMPTED" => CanonicalStatus::Preempted,
            _ => return None,
        })
    }

    pub fn from_ec2(s: &str) -> Option<CanonicalStatus> {
        Some(match s {
            "pending" => CanonicalStatus::Build,
            "running" => CanonicalStatus::Active,
            "stopped" => CanonicalStatus::Shutoff,
            "terminated" => CanonicalStatus::Terminated,
            "preempted" => CanonicalStatus::Preempted,
            _ => return None,
        })
    }

    /// Is an instance in this state consuming (billable) cores?
    pub fn is_live(self) -> bool {
        matches!(self, CanonicalStatus::Build | CanonicalStatus::Active)
    }
}

/// One instance, as every dialect describes it after decoding.
///
/// `vcpus` and `image` are `None` when a dialect's wire format does not
/// carry them (the EC2-query describe response, for one) — the
/// OpenStack-format rendering omits the missing fields, which is exactly
/// how the pre-runtime Tukey proxy behaved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceRecord {
    pub id: u64,
    pub name: String,
    pub status: CanonicalStatus,
    pub flavor: String,
    pub vcpus: Option<u32>,
    pub image: Option<u64>,
}

/// One flavor, canonically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlavorRecord {
    pub name: String,
    pub vcpus: u32,
    pub ram_mb: u64,
    pub disk_gb: u64,
}

/// One machine image, canonically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImageRecord {
    pub id: u64,
    pub name: String,
}

/// A provider-agnostic response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CanonicalResponse {
    Instances(Vec<InstanceRecord>),
    Launched(InstanceRecord),
    Terminated { id: u64 },
    Instance(InstanceRecord),
    Flavors(Vec<FlavorRecord>),
    Images(Vec<ImageRecord>),
}

/// Unified → native alias tables, the per-cloud "configuration file" of
/// §5.2 in canonical form. Unmapped names pass through unchanged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AliasTables {
    pub flavors: BTreeMap<String, String>,
    pub images: BTreeMap<String, u64>,
}

impl AliasTables {
    pub fn native_flavor<'a>(&'a self, unified: &'a str) -> &'a str {
        self.flavors
            .get(unified)
            .map(String::as_str)
            .unwrap_or(unified)
    }

    pub fn native_image(&self, unified: &str) -> Option<u64> {
        self.images.get(unified).copied()
    }

    /// Reverse-map a native flavor name to its unified name (first match
    /// in table order; the name itself when unmapped). Used by the server
    /// half of every dialect when decoding inbound requests.
    pub fn unified_flavor(&self, native: &str) -> String {
        self.flavors
            .iter()
            .find(|(_, n)| n.as_str() == native)
            .map(|(u, _)| u.clone())
            .unwrap_or_else(|| native.to_string())
    }
}

/// Why a translation or provider call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProviderError {
    /// The request cannot be expressed in this provider's dialect.
    Unsupported(String),
    /// A wire payload failed to decode (malformed XML/JSON, missing
    /// fields, a status word outside the dialect's vocabulary).
    Translation(String),
    /// A deterministic backend failure (bad flavor, no capacity, unknown
    /// instance) — retrying cannot help.
    Backend(String),
    /// A clean injected API-plane error (chaos `error_prob`): the call
    /// failed before the backend saw it, so the request was definitely
    /// *not* executed — unlike [`ProviderError::Timeout`].
    Api { provider: String },
    /// The call hung past the client timeout. The response is lost: the
    /// backend may or may not have executed the request.
    Timeout { provider: String },
    /// The provider's API endpoint is down (chaos outage window).
    Outage { provider: String },
    /// No registered provider by that name.
    UnknownProvider(String),
    /// The unified image name has no alias on this provider.
    UnknownImage(String),
}

impl std::fmt::Display for ProviderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProviderError::Unsupported(what) => write!(f, "unsupported: {what}"),
            ProviderError::Translation(why) => write!(f, "translation: {why}"),
            ProviderError::Backend(why) => write!(f, "backend: {why}"),
            ProviderError::Api { provider } => write!(f, "injected api error: {provider}"),
            ProviderError::Timeout { provider } => write!(f, "timeout: {provider}"),
            ProviderError::Outage { provider } => write!(f, "outage: {provider}"),
            ProviderError::UnknownProvider(p) => write!(f, "unknown provider: {p}"),
            ProviderError::UnknownImage(i) => write!(f, "unknown image: {i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_spellings_roundtrip() {
        for s in [
            CanonicalStatus::Build,
            CanonicalStatus::Active,
            CanonicalStatus::Shutoff,
            CanonicalStatus::Terminated,
            CanonicalStatus::Preempted,
        ] {
            assert_eq!(CanonicalStatus::from_openstack(s.openstack()), Some(s));
            assert_eq!(CanonicalStatus::from_ec2(s.ec2()), Some(s));
        }
        assert_eq!(CanonicalStatus::from_ec2("melted"), None);
        assert!(CanonicalStatus::Active.is_live());
        assert!(!CanonicalStatus::Preempted.is_live());
    }

    #[test]
    fn alias_tables_pass_unmapped_through() {
        let mut t = AliasTables::default();
        t.flavors.insert("small".into(), "m1.small".into());
        t.images.insert("ubuntu".into(), 7);
        assert_eq!(t.native_flavor("small"), "m1.small");
        assert_eq!(t.native_flavor("m1.large"), "m1.large");
        assert_eq!(t.native_image("ubuntu"), Some(7));
        assert_eq!(t.native_image("windows"), None);
    }

    #[test]
    fn request_labels_and_mutation() {
        assert_eq!(CanonicalRequest::ListInstances.label(), "list");
        assert!(!CanonicalRequest::ListInstances.is_mutating());
        assert!(CanonicalRequest::LaunchInstance {
            name: "x".into(),
            flavor: "f".into(),
            image: 1
        }
        .is_mutating());
        assert!(CanonicalRequest::TerminateInstance { id: 1 }.is_mutating());
    }
}
