//! "Spotmart" — a deliberately weird provider: spot pricing with
//! preemption.
//!
//! The wire is REST/JSON but with its own nouns (`fleet`, `shape`,
//! `token`) and its own state vocabulary (`fulfilled`, `outbid`, …). The
//! market price walks once per simulated minute between a floor and a
//! ceiling; while it sits above the console's standing bid the market
//! refuses new asks *and preempts running instances*, which is exactly
//! the event the failover router must survive.

use std::collections::BTreeMap;

use osdc_compute::cloud::CloudController;
use osdc_compute::image::ImageId;
use osdc_compute::instance::InstanceId;
use osdc_sim::{SimDuration, SimRng, SimTime};
use serde_json::{json, Value};

use crate::canonical::{
    AliasTables, CanonicalRequest, CanonicalResponse, CanonicalStatus, FlavorRecord, ImageRecord,
    InstanceRecord, ProviderError,
};
use crate::openstack::ResponseKind;
use crate::provider::{
    billable_ground_truth, live_by_token, record_of, CapabilityDescriptor, Consistency, Provider,
    WireFormat,
};
use crate::wire::{WireRequest, WireResponse};

/// Spotmart's state vocabulary.
fn spot_state(status: CanonicalStatus) -> &'static str {
    match status {
        CanonicalStatus::Build => "bid_pending",
        CanonicalStatus::Active => "fulfilled",
        CanonicalStatus::Shutoff => "parked",
        CanonicalStatus::Terminated => "released",
        CanonicalStatus::Preempted => "outbid",
    }
}

fn parse_spot_state(s: &str) -> Result<CanonicalStatus, ProviderError> {
    Ok(match s {
        "bid_pending" => CanonicalStatus::Build,
        "fulfilled" => CanonicalStatus::Active,
        "parked" => CanonicalStatus::Shutoff,
        "released" => CanonicalStatus::Terminated,
        "outbid" => CanonicalStatus::Preempted,
        other => {
            return Err(ProviderError::Translation(format!(
                "unknown spotmart state {other:?}"
            )))
        }
    })
}

/// Encode a canonical request onto the spotmart wire.
pub fn encode_request(
    req: &CanonicalRequest,
    aliases: &AliasTables,
) -> Result<WireRequest, ProviderError> {
    Ok(match req {
        CanonicalRequest::ListInstances => WireRequest::rest("GET", "/spot/fleet", None),
        CanonicalRequest::LaunchInstance {
            name,
            flavor,
            image,
        } => WireRequest::rest(
            "POST",
            "/spot/fleet",
            Some(json!({"ask": {
                "token": name,
                "shape": aliases.native_flavor(flavor),
                "image": image,
            }})),
        ),
        CanonicalRequest::TerminateInstance { id } => {
            WireRequest::rest("DELETE", format!("/spot/fleet/{id}"), None)
        }
        CanonicalRequest::DescribeInstance { id } => {
            WireRequest::rest("GET", format!("/spot/fleet/{id}"), None)
        }
        CanonicalRequest::ListFlavors => WireRequest::rest("GET", "/spot/shapes", None),
        CanonicalRequest::ListImages => WireRequest::rest("GET", "/spot/images", None),
    })
}

/// Decode a spotmart wire request (the server half).
pub fn decode_request(
    wire: &WireRequest,
    aliases: &AliasTables,
) -> Result<CanonicalRequest, ProviderError> {
    let WireRequest::Rest { method, path, body } = wire else {
        return Err(ProviderError::Translation(
            "spotmart expects REST requests".into(),
        ));
    };
    match (method.as_str(), path.as_str()) {
        ("GET", "/spot/fleet") => Ok(CanonicalRequest::ListInstances),
        ("GET", "/spot/shapes") => Ok(CanonicalRequest::ListFlavors),
        ("GET", "/spot/images") => Ok(CanonicalRequest::ListImages),
        ("POST", "/spot/fleet") => {
            let ask = body
                .as_ref()
                .and_then(|b| b.get("ask"))
                .ok_or_else(|| ProviderError::Translation("missing 'ask' object".into()))?;
            Ok(CanonicalRequest::LaunchInstance {
                name: ask["token"]
                    .as_str()
                    .ok_or_else(|| ProviderError::Translation("missing ask.token".into()))?
                    .to_string(),
                flavor: aliases.unified_flavor(
                    ask["shape"]
                        .as_str()
                        .ok_or_else(|| ProviderError::Translation("missing ask.shape".into()))?,
                ),
                image: ask["image"]
                    .as_u64()
                    .ok_or_else(|| ProviderError::Translation("missing ask.image".into()))?,
            })
        }
        _ => {
            if let Some(rest) = path.strip_prefix("/spot/fleet/") {
                let id: u64 = rest
                    .parse()
                    .map_err(|_| ProviderError::Translation(format!("bad fleet id '{rest}'")))?;
                return match method.as_str() {
                    "GET" => Ok(CanonicalRequest::DescribeInstance { id }),
                    "DELETE" => Ok(CanonicalRequest::TerminateInstance { id }),
                    other => Err(ProviderError::Translation(format!("{other} {path}"))),
                };
            }
            Err(ProviderError::Translation(format!("{method} {path}")))
        }
    }
}

fn render_vm(rec: &InstanceRecord) -> Value {
    let mut vm = json!({
        "id": rec.id,
        "token": rec.name,
        "state": spot_state(rec.status),
        "shape": rec.flavor,
    });
    if let Some(cores) = rec.vcpus {
        vm["cores"] = json!(cores);
    }
    if let Some(image) = rec.image {
        vm["image"] = json!(image);
    }
    vm
}

fn vm_of(item: &Value) -> Result<InstanceRecord, ProviderError> {
    Ok(InstanceRecord {
        id: item["id"]
            .as_u64()
            .ok_or_else(|| ProviderError::Translation("missing vm id".into()))?,
        name: item["token"]
            .as_str()
            .ok_or_else(|| ProviderError::Translation("missing vm token".into()))?
            .to_string(),
        status: parse_spot_state(
            item["state"]
                .as_str()
                .ok_or_else(|| ProviderError::Translation("missing vm state".into()))?,
        )?,
        flavor: item["shape"].as_str().unwrap_or("").to_string(),
        vcpus: item["cores"].as_u64().map(|v| v as u32),
        image: item["image"].as_u64(),
    })
}

/// Encode a canonical response as a spotmart reply; list replies carry
/// the current market price.
pub fn encode_response(
    resp: &CanonicalResponse,
    spot_price: f64,
) -> Result<WireResponse, ProviderError> {
    Ok(WireResponse::Json(match resp {
        CanonicalResponse::Instances(recs) => json!({
            "fleet": recs.iter().map(render_vm).collect::<Vec<_>>(),
            "spot_price": spot_price,
        }),
        CanonicalResponse::Launched(rec) => json!({"vm": render_vm(rec)}),
        CanonicalResponse::Instance(rec) => json!({"vm": render_vm(rec)}),
        CanonicalResponse::Terminated { id } => {
            json!({"vm": {"id": id, "state": "released"}})
        }
        CanonicalResponse::Flavors(fls) => json!({"shapes": fls
            .iter()
            .map(|f| json!({"shape": f.name, "cores": f.vcpus, "ram_mb": f.ram_mb, "disk_gb": f.disk_gb}))
            .collect::<Vec<_>>()}),
        CanonicalResponse::Images(imgs) => json!({"images": imgs
            .iter()
            .map(|i| json!({"id": i.id, "name": i.name}))
            .collect::<Vec<_>>()}),
    }))
}

/// Pull the market price off a spotmart list reply, if present. The
/// registry uses this for cost accounting ("provider-reported cost
/// fields", Stage 18 idiom).
pub fn decode_spot_price(wire: &WireResponse) -> Option<f64> {
    match wire {
        WireResponse::Json(v) => v["spot_price"].as_f64(),
        WireResponse::Xml(_) => None,
    }
}

/// Decode a spotmart reply into canonical form.
pub fn decode_response(
    kind: &ResponseKind,
    wire: &WireResponse,
) -> Result<CanonicalResponse, ProviderError> {
    let WireResponse::Json(v) = wire else {
        return Err(ProviderError::Translation(
            "spotmart expects JSON responses".into(),
        ));
    };
    match kind {
        ResponseKind::Instances => Ok(CanonicalResponse::Instances(
            v["fleet"]
                .as_array()
                .ok_or_else(|| ProviderError::Translation("missing 'fleet' array".into()))?
                .iter()
                .map(vm_of)
                .collect::<Result<_, _>>()?,
        )),
        ResponseKind::Launch { .. } => Ok(CanonicalResponse::Launched(vm_of(&v["vm"])?)),
        ResponseKind::Describe => Ok(CanonicalResponse::Instance(vm_of(&v["vm"])?)),
        ResponseKind::Terminate { .. } => Ok(CanonicalResponse::Terminated {
            id: v["vm"]["id"]
                .as_u64()
                .ok_or_else(|| ProviderError::Translation("missing vm id".into()))?,
        }),
        ResponseKind::Flavors => Ok(CanonicalResponse::Flavors(
            v["shapes"]
                .as_array()
                .ok_or_else(|| ProviderError::Translation("missing 'shapes' array".into()))?
                .iter()
                .map(|f| {
                    Ok(FlavorRecord {
                        name: f["shape"]
                            .as_str()
                            .ok_or_else(|| ProviderError::Translation("missing shape name".into()))?
                            .to_string(),
                        vcpus: f["cores"].as_u64().unwrap_or(0) as u32,
                        ram_mb: f["ram_mb"].as_u64().unwrap_or(0),
                        disk_gb: f["disk_gb"].as_u64().unwrap_or(0),
                    })
                })
                .collect::<Result<_, ProviderError>>()?,
        )),
        ResponseKind::Images => Ok(CanonicalResponse::Images(
            v["images"]
                .as_array()
                .ok_or_else(|| ProviderError::Translation("missing 'images' array".into()))?
                .iter()
                .map(|i| {
                    Ok(ImageRecord {
                        id: i["id"]
                            .as_u64()
                            .ok_or_else(|| ProviderError::Translation("missing image id".into()))?,
                        name: i["name"].as_str().unwrap_or("").to_string(),
                    })
                })
                .collect::<Result<_, ProviderError>>()?,
        )),
    }
}

/// The spotmart provider: market price walk + preemption over a real
/// backend cloud.
pub struct SpotProvider {
    name: String,
    pub cloud: CloudController,
    aliases: AliasTables,
    rng: SimRng,
    price: f64,
    floor: f64,
    ceiling: f64,
    /// The console's standing bid in $/core-hour. While the market sits
    /// above it, new asks are refused and running instances are outbid.
    pub bid: f64,
    last_tick_min: u64,
    /// Instances preempted but not yet reaped from listings: id → token.
    outbid: BTreeMap<u64, String>,
    /// Preemptions since construction (scorecard food).
    pub preemptions: u64,
}

impl SpotProvider {
    pub fn new(
        name: impl Into<String>,
        cloud: CloudController,
        aliases: AliasTables,
        seed: u64,
        floor: f64,
        ceiling: f64,
        bid: f64,
    ) -> Self {
        let mid = (floor + ceiling) / 2.0;
        SpotProvider {
            name: name.into(),
            cloud,
            aliases,
            rng: SimRng::new(seed),
            price: mid,
            floor,
            ceiling,
            bid,
            last_tick_min: 0,
            outbid: BTreeMap::new(),
            preemptions: 0,
        }
    }

    pub fn price(&self) -> f64 {
        self.price
    }

    fn execute(
        &mut self,
        user: &str,
        req: &CanonicalRequest,
        now: SimTime,
    ) -> Result<CanonicalResponse, ProviderError> {
        match req {
            CanonicalRequest::ListInstances => {
                let mut recs: Vec<InstanceRecord> = self
                    .cloud
                    .instances_of(user)
                    .filter(|i| {
                        i.state != osdc_compute::instance::InstanceState::Terminated
                            || self.outbid.contains_key(&i.id.0)
                    })
                    .map(|i| {
                        let mut rec = record_of(i);
                        if self.outbid.contains_key(&i.id.0) {
                            rec.status = CanonicalStatus::Preempted;
                        }
                        rec
                    })
                    .collect();
                recs.sort_by_key(|r| r.id);
                Ok(CanonicalResponse::Instances(recs))
            }
            CanonicalRequest::LaunchInstance {
                name,
                flavor,
                image,
            } => {
                if let Some(existing) = live_by_token(&self.cloud, user, name) {
                    return Ok(CanonicalResponse::Launched(record_of(existing)));
                }
                if self.price > self.bid {
                    return Err(ProviderError::Backend(format!(
                        "ask refused: spot price {:.4} above bid {:.4}",
                        self.price, self.bid
                    )));
                }
                let native = self.aliases.native_flavor(flavor).to_string();
                let id = self
                    .cloud
                    .boot(user, name, &native, ImageId(*image), now)
                    .map_err(|e| ProviderError::Backend(format!("{e:?}")))?;
                Ok(CanonicalResponse::Launched(record_of(
                    self.cloud.instance(id).expect("just booted"),
                )))
            }
            CanonicalRequest::TerminateInstance { id } => {
                let iid = InstanceId(*id);
                if self.cloud.instance(iid).map(|i| i.owner.as_str()) != Some(user) {
                    return Err(ProviderError::Backend(format!("not found: fleet {id}")));
                }
                self.cloud
                    .terminate(iid, now)
                    .map_err(|e| ProviderError::Backend(format!("{e:?}")))?;
                self.outbid.remove(id);
                Ok(CanonicalResponse::Terminated { id: *id })
            }
            CanonicalRequest::DescribeInstance { id } => {
                let inst = self
                    .cloud
                    .instance(InstanceId(*id))
                    .filter(|i| i.owner == user)
                    .ok_or_else(|| ProviderError::Backend(format!("not found: fleet {id}")))?;
                let mut rec = record_of(inst);
                if self.outbid.contains_key(id) {
                    rec.status = CanonicalStatus::Preempted;
                }
                Ok(CanonicalResponse::Instance(rec))
            }
            CanonicalRequest::ListFlavors => Ok(CanonicalResponse::Flavors(
                self.cloud
                    .flavors()
                    .iter()
                    .map(|f| FlavorRecord {
                        name: f.name.clone(),
                        vcpus: f.vcpus,
                        ram_mb: f.ram_mb,
                        disk_gb: f.disk_gb,
                    })
                    .collect(),
            )),
            CanonicalRequest::ListImages => Ok(CanonicalResponse::Images(
                self.cloud
                    .images()
                    .map(|i| ImageRecord {
                        id: i.id.0,
                        name: i.name.clone(),
                    })
                    .collect(),
            )),
        }
    }
}

impl Provider for SpotProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn descriptor(&self) -> CapabilityDescriptor {
        CapabilityDescriptor {
            wire: WireFormat::RestJson,
            consistency: Consistency::Strong,
            spot: true,
            flavor_listing: true,
            api_latency: SimDuration::from_millis(25),
            page_size: None,
        }
    }

    fn aliases(&self) -> &AliasTables {
        &self.aliases
    }

    /// Full wire exercise on every call: encode, serve (decode, execute,
    /// re-encode), decode — so a translator bug shows up as a runtime
    /// fidelity failure, not just a unit-test miss.
    fn call(
        &mut self,
        user: &str,
        req: &CanonicalRequest,
        now: SimTime,
    ) -> Result<CanonicalResponse, ProviderError> {
        let wire = encode_request(req, &self.aliases)?;
        let native = AliasTables::default();
        let server_req = decode_request(&wire, &native)?;
        let resp = self.execute(user, &server_req, now)?;
        let reply = encode_response(&resp, self.price)?;
        decode_response(&ResponseKind::of(req), &reply)
    }

    fn tick(&mut self, now: SimTime) {
        let minute = now.as_nanos() / (60 * 1_000_000_000);
        while self.last_tick_min < minute {
            self.last_tick_min += 1;
            // Geometric walk, clamped to [floor, ceiling].
            let step = self.rng.range_f64(-0.18, 0.22);
            self.price = (self.price * (1.0 + step)).clamp(self.floor, self.ceiling);
            if self.price > self.bid {
                // Market moved above the bid: every running instance is
                // outbid and reclaimed.
                let doomed: Vec<(InstanceId, String)> = self
                    .cloud
                    .all_instances()
                    .filter(|i| i.billable())
                    .map(|i| (i.id, i.name.clone()))
                    .collect();
                let t = SimTime(self.last_tick_min * 60 * 1_000_000_000);
                for (id, token) in doomed {
                    self.cloud.terminate(id, t).expect("instance exists");
                    self.outbid.insert(id.0, token);
                    self.preemptions += 1;
                }
            }
        }
    }

    fn spot_price(&self) -> Option<f64> {
        Some(self.price)
    }

    fn ground_truth(&self) -> Vec<(String, InstanceRecord)> {
        billable_ground_truth(&self.cloud)
    }

    fn roundtrip_request(&self, req: &CanonicalRequest) -> Result<CanonicalRequest, ProviderError> {
        decode_request(&encode_request(req, &self.aliases)?, &self.aliases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aliases() -> AliasTables {
        let mut t = AliasTables::default();
        t.flavors.insert("small".into(), "m1.small".into());
        t.images.insert("ubuntu-base".into(), 1);
        t
    }

    fn market(floor: f64, ceiling: f64, bid: f64) -> SpotProvider {
        SpotProvider::new(
            "spotmart",
            CloudController::with_racks("spotmart", 1),
            aliases(),
            0x5907,
            floor,
            ceiling,
            bid,
        )
    }

    fn launch(name: &str) -> CanonicalRequest {
        CanonicalRequest::LaunchInstance {
            name: name.into(),
            flavor: "small".into(),
            image: 1,
        }
    }

    #[test]
    fn launch_and_list_through_the_weird_wire() {
        let mut m = market(0.01, 0.05, 1.0); // bid far above ceiling: never preempts
        let CanonicalResponse::Launched(rec) = m
            .call("alice", &launch("vm1"), SimTime::ZERO)
            .expect("launches")
        else {
            panic!()
        };
        assert_eq!(rec.name, "vm1");
        let CanonicalResponse::Instances(recs) = m
            .call("alice", &CanonicalRequest::ListInstances, SimTime(1))
            .expect("lists")
        else {
            panic!()
        };
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].status, CanonicalStatus::Active);
    }

    #[test]
    fn price_above_bid_refuses_and_preempts() {
        // Floor above bid: the first tick pins the market above the bid.
        let mut m = market(0.50, 0.60, 0.10);
        m.price = 0.05; // launch window before the first tick
        m.call("alice", &launch("vm1"), SimTime::ZERO)
            .expect("launches");
        assert_eq!(m.ground_truth().len(), 1);
        m.tick(SimTime(60 * 1_000_000_000));
        assert!(m.price >= 0.50);
        assert_eq!(m.preemptions, 1, "running instance outbid");
        assert!(m.ground_truth().is_empty(), "preempted = not billable");
        // Listing shows the corpse as `outbid` → canonical Preempted.
        let CanonicalResponse::Instances(recs) = m
            .call(
                "alice",
                &CanonicalRequest::ListInstances,
                SimTime(61 * 1_000_000_000),
            )
            .expect("lists")
        else {
            panic!()
        };
        assert_eq!(recs[0].status, CanonicalStatus::Preempted);
        // And new asks are refused while the market is above the bid.
        let err = m
            .call("alice", &launch("vm2"), SimTime(62 * 1_000_000_000))
            .expect_err("refused");
        assert!(matches!(err, ProviderError::Backend(_)), "{err}");
    }

    #[test]
    fn spot_price_rides_the_list_reply() {
        let resp = CanonicalResponse::Instances(vec![]);
        let wire = encode_response(&resp, 0.042).expect("encodes");
        assert_eq!(decode_spot_price(&wire), Some(0.042));
        assert_eq!(
            decode_response(&ResponseKind::Instances, &wire).expect("decodes"),
            resp
        );
    }

    #[test]
    fn requests_roundtrip() {
        let t = aliases();
        for req in [
            CanonicalRequest::ListInstances,
            launch("vm1"),
            CanonicalRequest::TerminateInstance { id: 3 },
            CanonicalRequest::DescribeInstance { id: 3 },
            CanonicalRequest::ListFlavors,
            CanonicalRequest::ListImages,
        ] {
            let wire = encode_request(&req, &t).expect("encodes");
            assert_eq!(decode_request(&wire, &t).expect("decodes"), req);
        }
    }
}
