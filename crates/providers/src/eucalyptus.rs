//! Eucalyptus (EC2 query / XML) translator: canonical ⇄ wire.
//!
//! The encode side reproduces, byte for byte, the query strings the
//! original Tukey proxy sent (`Action=RunInstances&ImageId=emi-…`), and
//! the decode side accepts exactly the XML the simulated Eucalyptus
//! backend emits. Unlike the old proxy, decode failures here are *typed*
//! — a malformed instance id or an unknown state word is a
//! [`ProviderError::Translation`], never silently dropped.

use crate::canonical::{
    AliasTables, CanonicalRequest, CanonicalResponse, CanonicalStatus, ImageRecord, InstanceRecord,
    ProviderError,
};
use crate::openstack::ResponseKind;
use crate::wire::{parse_query, xml_values, WireRequest, WireResponse};

/// Compat switches for almost-EC2 front ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EucalyptusCompat {
    /// Send `ClientToken={name}` on `RunInstances`. Stacks without it
    /// fall back to the backend's default instance name, losing launch
    /// idempotency (exactly what Eucalyptus 2 did before 3.0).
    pub client_token: bool,
}

impl Default for EucalyptusCompat {
    fn default() -> Self {
        EucalyptusCompat { client_token: true }
    }
}

fn parse_ec2_id(s: &str) -> Result<u64, ProviderError> {
    s.strip_prefix("i-")
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .ok_or_else(|| ProviderError::Translation(format!("bad ec2 instance id {s:?}")))
}

fn parse_emi(s: &str) -> Result<u64, ProviderError> {
    s.strip_prefix("emi-")
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .ok_or_else(|| ProviderError::Translation(format!("bad emi image id {s:?}")))
}

fn parse_state(s: &str) -> Result<CanonicalStatus, ProviderError> {
    CanonicalStatus::from_ec2(s)
        .ok_or_else(|| ProviderError::Translation(format!("unknown ec2 state {s:?}")))
}

/// Encode a canonical request as an EC2 query string, resolving unified
/// names through `aliases`. Flavor listings have no wire form in this
/// dialect ([`ProviderError::Unsupported`]), which the capability
/// descriptor advertises so the router never routes them here.
pub fn encode_request(
    req: &CanonicalRequest,
    aliases: &AliasTables,
    compat: EucalyptusCompat,
) -> Result<WireRequest, ProviderError> {
    Ok(WireRequest::Query(match req {
        CanonicalRequest::ListInstances => "Action=DescribeInstances".to_string(),
        CanonicalRequest::LaunchInstance {
            name,
            flavor,
            image,
        } => {
            let mut q = format!(
                "Action=RunInstances&ImageId=emi-{image:08x}&InstanceType={}",
                aliases.native_flavor(flavor)
            );
            if compat.client_token {
                q.push_str(&format!("&ClientToken={name}"));
            }
            q
        }
        CanonicalRequest::TerminateInstance { id } => {
            format!("Action=TerminateInstances&InstanceId.1=i-{id:08x}")
        }
        CanonicalRequest::DescribeInstance { .. } => {
            return Err(ProviderError::Unsupported(
                "ec2-query dialect has no per-instance describe".into(),
            ))
        }
        CanonicalRequest::ListFlavors => {
            return Err(ProviderError::Unsupported(
                "ec2-query dialect has no flavor listing".into(),
            ))
        }
        CanonicalRequest::ListImages => "Action=DescribeImages".to_string(),
    }))
}

/// Decode an EC2 query string back into canonical form (the server half).
pub fn decode_request(
    wire: &WireRequest,
    aliases: &AliasTables,
) -> Result<CanonicalRequest, ProviderError> {
    let WireRequest::Query(q) = wire else {
        return Err(ProviderError::Translation(
            "ec2-query dialect expects query-string requests".into(),
        ));
    };
    let params = parse_query(q);
    match params.get("Action").copied() {
        Some("DescribeInstances") => Ok(CanonicalRequest::ListInstances),
        Some("DescribeImages") => Ok(CanonicalRequest::ListImages),
        Some("RunInstances") => {
            let image = params
                .get("ImageId")
                .ok_or_else(|| ProviderError::Translation("missing ImageId".into()))
                .and_then(|s| parse_emi(s))?;
            let flavor = params
                .get("InstanceType")
                .ok_or_else(|| ProviderError::Translation("missing InstanceType".into()))?;
            let name = params
                .get("ClientToken")
                .copied()
                .unwrap_or("euca-instance");
            Ok(CanonicalRequest::LaunchInstance {
                name: name.to_string(),
                flavor: aliases.unified_flavor(flavor),
                image,
            })
        }
        Some("TerminateInstances") => {
            let id = params
                .get("InstanceId.1")
                .ok_or_else(|| ProviderError::Translation("missing InstanceId.1".into()))
                .and_then(|s| parse_ec2_id(s))?;
            Ok(CanonicalRequest::TerminateInstance { id })
        }
        Some(other) => Err(ProviderError::Translation(format!(
            "unsupported Action={other}"
        ))),
        None => Err(ProviderError::Translation("missing Action".into())),
    }
}

/// Encode a canonical response as the backend's XML (the server half).
/// Formats match `osdc_compute::api::EucalyptusApi` byte for byte, so a
/// decode that works against this also works against the real backend.
pub fn encode_response(resp: &CanonicalResponse) -> Result<WireResponse, ProviderError> {
    Ok(WireResponse::Xml(match resp {
        CanonicalResponse::Instances(recs) => {
            let items: String = recs
                .iter()
                .map(|r| {
                    format!(
                        "<item><instanceId>i-{:08x}</instanceId><instanceType>{}</instanceType>\
                         <instanceState><name>{}</name></instanceState></item>",
                        r.id,
                        r.flavor,
                        r.status.ec2()
                    )
                })
                .collect();
            format!(
                "<DescribeInstancesResponse><reservationSet>{items}</reservationSet>\
                 </DescribeInstancesResponse>"
            )
        }
        CanonicalResponse::Launched(rec) => format!(
            "<RunInstancesResponse><instancesSet><item><instanceId>i-{:08x}</instanceId>\
             <imageId>emi-{:08x}</imageId><instanceState><name>{}</name></instanceState>\
             </item></instancesSet></RunInstancesResponse>",
            rec.id,
            rec.image.unwrap_or(0),
            rec.status.ec2()
        ),
        CanonicalResponse::Terminated { id } => format!(
            "<TerminateInstancesResponse><instancesSet><item><instanceId>i-{id:08x}</instanceId>\
             <currentState><name>terminated</name></currentState></item></instancesSet>\
             </TerminateInstancesResponse>"
        ),
        CanonicalResponse::Images(imgs) => {
            let items: String = imgs
                .iter()
                .map(|i| {
                    format!(
                        "<item><imageId>emi-{:08x}</imageId><name>{}</name></item>",
                        i.id, i.name
                    )
                })
                .collect();
            format!(
                "<DescribeImagesResponse><imagesSet>{items}</imagesSet></DescribeImagesResponse>"
            )
        }
        CanonicalResponse::Instance(_) | CanonicalResponse::Flavors(_) => {
            return Err(ProviderError::Unsupported(
                "response has no ec2-query wire form".into(),
            ))
        }
    }))
}

/// Decode backend XML into canonical form (the client half). Fields the
/// wire does not carry decode to their empty forms: list records get
/// `name` = the ec2 id string (what the old proxy displayed), launch
/// records get an empty flavor.
pub fn decode_response(
    kind: &ResponseKind,
    wire: &WireResponse,
) -> Result<CanonicalResponse, ProviderError> {
    let WireResponse::Xml(xml) = wire else {
        return Err(ProviderError::Translation(
            "ec2-query dialect expects XML responses".into(),
        ));
    };
    match kind {
        ResponseKind::Instances => {
            let ids = xml_values(xml, "instanceId");
            let types = xml_values(xml, "instanceType");
            let states = xml_values(xml, "name");
            if ids.len() != types.len() || ids.len() != states.len() {
                return Err(ProviderError::Translation(format!(
                    "ragged DescribeInstances reply: {} ids, {} types, {} states",
                    ids.len(),
                    types.len(),
                    states.len()
                )));
            }
            let mut recs = Vec::with_capacity(ids.len());
            for ((iid, ty), st) in ids.iter().zip(&types).zip(&states) {
                recs.push(InstanceRecord {
                    id: parse_ec2_id(iid)?,
                    name: iid.to_string(),
                    status: parse_state(st)?,
                    flavor: ty.to_string(),
                    vcpus: None,
                    image: None,
                });
            }
            Ok(CanonicalResponse::Instances(recs))
        }
        ResponseKind::Launch { name } => {
            let iid = xml_values(xml, "instanceId")
                .first()
                .copied()
                .ok_or_else(|| {
                    ProviderError::Translation("RunInstances reply without instanceId".into())
                })
                .and_then(parse_ec2_id)?;
            let image = match xml_values(xml, "imageId").first() {
                Some(emi) => Some(parse_emi(emi)?),
                None => None,
            };
            let status = xml_values(xml, "name")
                .first()
                .copied()
                .ok_or_else(|| {
                    ProviderError::Translation("RunInstances reply without state".into())
                })
                .and_then(parse_state)?;
            Ok(CanonicalResponse::Launched(InstanceRecord {
                id: iid,
                name: name.clone(),
                status,
                flavor: String::new(),
                vcpus: None,
                image,
            }))
        }
        ResponseKind::Terminate { .. } => {
            let iid = xml_values(xml, "instanceId")
                .first()
                .copied()
                .ok_or_else(|| {
                    ProviderError::Translation("TerminateInstances reply without instanceId".into())
                })
                .and_then(parse_ec2_id)?;
            Ok(CanonicalResponse::Terminated { id: iid })
        }
        ResponseKind::Images => {
            let ids = xml_values(xml, "imageId");
            let names = xml_values(xml, "name");
            if ids.len() != names.len() {
                return Err(ProviderError::Translation(format!(
                    "ragged DescribeImages reply: {} ids, {} names",
                    ids.len(),
                    names.len()
                )));
            }
            let mut imgs = Vec::with_capacity(ids.len());
            for (emi, name) in ids.iter().zip(&names) {
                imgs.push(ImageRecord {
                    id: parse_emi(emi)?,
                    name: name.to_string(),
                });
            }
            Ok(CanonicalResponse::Images(imgs))
        }
        ResponseKind::Describe | ResponseKind::Flavors => Err(ProviderError::Unsupported(
            "ec2-query dialect has no reply form for this request".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_query_matches_the_original_proxy() {
        let mut aliases = AliasTables::default();
        aliases.flavors.insert("small".into(), "m1.small".into());
        let wire = encode_request(
            &CanonicalRequest::LaunchInstance {
                name: "vm1".into(),
                flavor: "small".into(),
                image: 3,
            },
            &aliases,
            EucalyptusCompat::default(),
        )
        .expect("encodes");
        assert_eq!(
            wire,
            WireRequest::Query(
                "Action=RunInstances&ImageId=emi-00000003&InstanceType=m1.small&ClientToken=vm1"
                    .into()
            )
        );
        // Without the ClientToken compat flag the token is dropped.
        let bare = encode_request(
            &CanonicalRequest::LaunchInstance {
                name: "vm1".into(),
                flavor: "small".into(),
                image: 3,
            },
            &aliases,
            EucalyptusCompat {
                client_token: false,
            },
        )
        .expect("encodes");
        let WireRequest::Query(q) = &bare else {
            panic!()
        };
        assert!(!q.contains("ClientToken"));
    }

    #[test]
    fn requests_roundtrip() {
        let mut aliases = AliasTables::default();
        aliases.flavors.insert("small".into(), "m1.small".into());
        for req in [
            CanonicalRequest::ListInstances,
            CanonicalRequest::ListImages,
            CanonicalRequest::TerminateInstance { id: 0xbeef },
            CanonicalRequest::LaunchInstance {
                name: "vm9".into(),
                flavor: "small".into(),
                image: 7,
            },
        ] {
            let wire =
                encode_request(&req, &aliases, EucalyptusCompat::default()).expect("encodes");
            assert_eq!(decode_request(&wire, &aliases).expect("decodes"), req);
        }
        assert!(matches!(
            encode_request(
                &CanonicalRequest::ListFlavors,
                &aliases,
                EucalyptusCompat::default()
            ),
            Err(ProviderError::Unsupported(_))
        ));
    }

    #[test]
    fn describe_roundtrip_and_strict_decode() {
        let resp = CanonicalResponse::Instances(vec![InstanceRecord {
            id: 1,
            name: "i-00000001".into(),
            status: CanonicalStatus::Active,
            flavor: "m1.small".into(),
            vcpus: None,
            image: None,
        }]);
        let wire = encode_response(&resp).expect("encodes");
        assert_eq!(
            decode_response(&ResponseKind::Instances, &wire).expect("decodes"),
            resp
        );
        // Unknown state words are typed errors, not silent passthrough.
        let bad = WireResponse::Xml(
            "<DescribeInstancesResponse><reservationSet><item>\
             <instanceId>i-00000001</instanceId><instanceType>m1.small</instanceType>\
             <instanceState><name>melting</name></instanceState></item>\
             </reservationSet></DescribeInstancesResponse>"
                .into(),
        );
        assert!(matches!(
            decode_response(&ResponseKind::Instances, &bad),
            Err(ProviderError::Translation(_))
        ));
    }

    #[test]
    fn launch_reply_decodes_like_the_backend_emits() {
        // Exactly what osdc_compute::api::EucalyptusApi returns.
        let xml = WireResponse::Xml(
            "<RunInstancesResponse><instancesSet><item><instanceId>i-00000002</instanceId>\
             <imageId>emi-00000003</imageId><instanceState><name>running</name></instanceState>\
             </item></instancesSet></RunInstancesResponse>"
                .into(),
        );
        let got =
            decode_response(&ResponseKind::Launch { name: "vm1".into() }, &xml).expect("decodes");
        let CanonicalResponse::Launched(rec) = got else {
            panic!()
        };
        assert_eq!(rec.id, 2);
        assert_eq!(rec.name, "vm1");
        assert_eq!(rec.status, CanonicalStatus::Active);
        assert_eq!(rec.image, Some(3));
    }
}
