//! The cross-provider failover router.
//!
//! The router is the federation's front door: a launch request names a
//! unified flavor and image, and the router walks the capable providers
//! in effective-price order, failing over past outages, timeouts and
//! refusals. It keeps three books that the audit oracle checks against
//! backend ground truth:
//!
//! * **assignments** — token → exactly one (provider, instance). Billing
//!   accrues from this book only, so a token can never be double-billed.
//! * **orphans** — (provider, user, token) pairs where a *mutating* call
//!   timed out: the backend may have executed it. Reconcile hunts these
//!   down once the provider heals and terminates whatever it finds.
//! * **suspects** — providers cooling down after an outage/timeout; the
//!   router skips them while the suspicion lasts unless nobody else can
//!   take the work.

use std::collections::BTreeMap;

use osdc_sim::stats::Summary;
use osdc_sim::{SimDuration, SimTime};

use crate::canonical::{CanonicalRequest, CanonicalResponse, ProviderError};
use crate::registry::ProviderRegistry;

/// One placed launch: the router's belief about where a token runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    pub provider: String,
    pub instance: u64,
    pub user: String,
    pub token: String,
    /// Unified flavor and image names (for relaunch after preemption).
    pub flavor: String,
    pub image: String,
    pub vcpus: u32,
}

/// What the P1 harness reports per cell.
#[derive(Debug, Default)]
pub struct RouterScorecard {
    pub launches_requested: u64,
    pub launches_placed: u64,
    pub launches_failed: u64,
    /// Extra provider attempts beyond the first, across all launches.
    pub reroutes: u64,
    /// Wall-clock cost of launches that needed more than one attempt, ms.
    pub failover_latency_ms: Summary,
    pub fidelity_checks: u64,
    pub fidelity_failures: u64,
    pub terminates: u64,
    /// Assignments that vanished from ground truth (preempted or killed)
    /// and were relaunched elsewhere.
    pub preemption_relaunches: u64,
    pub orphans_recorded: u64,
    pub orphans_cleaned: u64,
    /// Orphans found actually running while their token was assigned
    /// elsewhere — the double-launch near-misses reconcile cleaned up.
    pub double_launches_prevented: u64,
}

fn key(user: &str, token: &str) -> String {
    format!("{user}/{token}")
}

/// Routes launches across the registry and keeps the books.
pub struct FailoverRouter {
    pub registry: ProviderRegistry,
    assignments: BTreeMap<String, Assignment>,
    /// provider → suspicion expiry.
    suspects: BTreeMap<String, SimTime>,
    /// (provider, user, token) → when the orphaning timeout happened.
    orphans: BTreeMap<(String, String, String), SimTime>,
    cooldown: SimDuration,
    pub scorecard: RouterScorecard,
}

impl FailoverRouter {
    pub fn new(registry: ProviderRegistry) -> Self {
        FailoverRouter {
            registry,
            assignments: BTreeMap::new(),
            suspects: BTreeMap::new(),
            orphans: BTreeMap::new(),
            cooldown: SimDuration::from_secs(120),
            scorecard: RouterScorecard::default(),
        }
    }

    pub fn with_cooldown(mut self, cooldown: SimDuration) -> Self {
        self.cooldown = cooldown;
        self
    }

    pub fn assignments(&self) -> impl Iterator<Item = &Assignment> {
        self.assignments.values()
    }

    pub fn assignment(&self, user: &str, token: &str) -> Option<&Assignment> {
        self.assignments.get(&key(user, token))
    }

    pub fn orphan_book(&self) -> impl Iterator<Item = (&(String, String, String), &SimTime)> {
        self.orphans.iter()
    }

    pub fn is_suspect(&self, provider: &str, now: SimTime) -> bool {
        self.suspects
            .get(provider)
            .is_some_and(|until| *until > now)
    }

    /// Billable cores this user holds across the federation, by the
    /// router's books — the number the billing poller reads.
    pub fn user_cores(&self, user: &str) -> u32 {
        self.assignments
            .values()
            .filter(|a| a.user == user)
            .map(|a| a.vcpus)
            .sum()
    }

    /// Providers able to take (flavor, image), cheapest effective rate
    /// first; price ties break on registration order.
    fn candidates(&self, flavor: &str, image: &str) -> Vec<String> {
        let mut ranked: Vec<(f64, usize, String)> = Vec::new();
        for (idx, name) in self.registry.names().into_iter().enumerate() {
            let Some(catalog) = self.registry.catalog(&name) else {
                continue;
            };
            let Some(aliases) = self.registry.aliases(&name) else {
                continue;
            };
            if aliases.native_image(image).is_none() {
                continue;
            }
            let Some(rate) = catalog.effective_rate(flavor, self.registry.spot_price(&name)) else {
                continue;
            };
            ranked.push((rate, idx, name));
        }
        // total_cmp, not partial_cmp().expect(): a provider advertising
        // a NaN spot rate must not panic placement. NaN sorts last under
        // the IEEE total order, so such a provider becomes the candidate
        // of last resort; registration order still breaks price ties.
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        ranked.into_iter().map(|(_, _, name)| name).collect()
    }

    fn suspect(&mut self, provider: &str, now: SimTime) {
        self.suspects
            .insert(provider.to_string(), now + self.cooldown);
    }

    fn record_orphan(&mut self, provider: &str, user: &str, token: &str, now: SimTime) {
        let k = (provider.to_string(), user.to_string(), token.to_string());
        if self.orphans.insert(k, now).is_none() {
            self.scorecard.orphans_recorded += 1;
        }
    }

    fn score_fidelity(&mut self, provider: &str, req: &CanonicalRequest) {
        if let Some(result) = self.registry.roundtrip_request(provider, req) {
            self.scorecard.fidelity_checks += 1;
            if result.as_ref().ok() != Some(req) {
                self.scorecard.fidelity_failures += 1;
            }
        }
    }

    /// Launch `token` for `user`: try capable providers cheapest-first,
    /// failing over on outage/timeout/refusal.
    pub fn launch(
        &mut self,
        user: &str,
        token: &str,
        flavor: &str,
        image: &str,
        now: SimTime,
    ) -> Result<Assignment, ProviderError> {
        self.scorecard.launches_requested += 1;
        if let Some(existing) = self.assignments.get(&key(user, token)) {
            return Ok(existing.clone());
        }
        let candidates = self.candidates(flavor, image);
        if candidates.is_empty() {
            self.scorecard.launches_failed += 1;
            return Err(ProviderError::Unsupported(format!(
                "no provider can take flavor {flavor:?} image {image:?}"
            )));
        }
        // Prefer non-suspects; fall back to suspects rather than failing
        // outright when everyone is under suspicion.
        let (clear, suspect): (Vec<_>, Vec<_>) = candidates
            .into_iter()
            .partition(|p| !self.is_suspect(p, now));
        let ordered: Vec<String> = clear.into_iter().chain(suspect).collect();

        let mut elapsed = SimDuration::ZERO;
        let mut attempts = 0u64;
        let mut last_err = ProviderError::Unsupported("no attempt made".into());
        for provider in ordered {
            let image_id = self
                .registry
                .aliases(&provider)
                .and_then(|a| a.native_image(image))
                .expect("candidate has the image");
            let req = CanonicalRequest::LaunchInstance {
                name: token.to_string(),
                flavor: flavor.to_string(),
                image: image_id,
            };
            self.score_fidelity(&provider, &req);
            attempts += 1;
            let result = self.registry.call(&provider, user, &req, now);
            elapsed += self.registry.last_latency();
            match result {
                Ok(CanonicalResponse::Launched(rec)) => {
                    let vcpus = rec.vcpus.or_else(|| {
                        self.registry
                            .catalog(&provider)
                            .and_then(|c| c.vcpus(flavor))
                    });
                    let assignment = Assignment {
                        provider: provider.clone(),
                        instance: rec.id,
                        user: user.to_string(),
                        token: token.to_string(),
                        flavor: flavor.to_string(),
                        image: image.to_string(),
                        vcpus: vcpus.unwrap_or(0),
                    };
                    self.assignments
                        .insert(key(user, token), assignment.clone());
                    self.scorecard.launches_placed += 1;
                    if attempts > 1 {
                        self.scorecard.reroutes += attempts - 1;
                        self.scorecard
                            .failover_latency_ms
                            .record(elapsed.as_nanos() as f64 / 1.0e6);
                    }
                    return Ok(assignment);
                }
                Ok(other) => {
                    last_err = ProviderError::Translation(format!(
                        "launch decoded to unexpected response on {provider}: {other:?}"
                    ));
                }
                Err(e @ ProviderError::Timeout { .. }) => {
                    // The backend may have booted it: book the orphan so
                    // reconcile can hunt it down, then reroute.
                    self.suspect(&provider, now);
                    self.record_orphan(&provider, user, token, now);
                    last_err = e;
                }
                Err(e @ ProviderError::Outage { .. }) => {
                    self.suspect(&provider, now);
                    last_err = e;
                }
                Err(e) => {
                    // Deterministic refusal (capacity, spot price above
                    // bid): the provider is healthy, just unwilling.
                    last_err = e;
                }
            }
        }
        self.scorecard.launches_failed += 1;
        Err(last_err)
    }

    /// Terminate a token wherever the router believes it runs. Failures
    /// on the wire degrade to orphan bookkeeping — the assignment is
    /// dropped either way, so billing stops immediately.
    pub fn terminate(
        &mut self,
        user: &str,
        token: &str,
        now: SimTime,
    ) -> Result<(), ProviderError> {
        let Some(assignment) = self.assignments.remove(&key(user, token)) else {
            return Err(ProviderError::Unsupported(format!(
                "token {token:?} is not assigned"
            )));
        };
        self.scorecard.terminates += 1;
        let req = CanonicalRequest::TerminateInstance {
            id: assignment.instance,
        };
        self.score_fidelity(&assignment.provider, &req);
        match self.registry.call(&assignment.provider, user, &req, now) {
            Ok(_) => Ok(()),
            Err(ProviderError::Timeout { .. }) | Err(ProviderError::Outage { .. }) => {
                self.suspect(&assignment.provider, now);
                self.record_orphan(&assignment.provider, user, token, now);
                Ok(())
            }
            // A clean injected error: the backend never saw the kill, so
            // the instance is definitely still running. Book it for
            // reconcile (the fault window blocks an immediate retry).
            Err(ProviderError::Api { .. }) => {
                self.record_orphan(&assignment.provider, user, token, now);
                Ok(())
            }
            // A deterministic backend error on terminate means the
            // instance is already gone; nothing left to clean.
            Err(ProviderError::Backend(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Per-minute housekeeping: advance providers, relaunch assignments
    /// whose instances vanished (spot preemption, chaos kills), accrue
    /// usage/cost for what is actually running, and export cost gauges.
    pub fn poll_minute(&mut self, now: SimTime) {
        self.registry.tick_all(now);

        // Detect assignments whose instance left ground truth.
        let mut vanished: Vec<Assignment> = Vec::new();
        for a in self.assignments.values() {
            let live = self
                .registry
                .ground_truth(&a.provider)
                .iter()
                .any(|(user, rec)| user == &a.user && rec.id == a.instance);
            if !live {
                vanished.push(a.clone());
            }
        }
        for a in vanished {
            self.assignments.remove(&key(&a.user, &a.token));
            // Relaunch elsewhere; a spot market still above its bid
            // simply refuses and the next candidate takes it.
            if self
                .launch(&a.user, &a.token, &a.flavor, &a.image, now)
                .is_ok()
            {
                self.scorecard.preemption_relaunches += 1;
            }
        }

        // Accrue one minute of usage per assignment, from the books —
        // one assignment per token means no token double-bills.
        let accruals: Vec<(String, String, u32, f64)> = self
            .assignments
            .values()
            .filter_map(|a| {
                let rate = self
                    .registry
                    .catalog(&a.provider)?
                    .effective_rate(&a.flavor, self.registry.spot_price(&a.provider))?;
                Some((a.provider.clone(), a.user.clone(), a.vcpus, rate))
            })
            .collect();
        for (provider, user, cores, rate) in accruals {
            self.registry
                .ledger_mut()
                .accrue_compute(&provider, &user, cores, rate);
        }

        // Cost flows out through telemetry gauges (billing's feed).
        let mut fleet_usd = 0.0;
        for name in self.registry.names() {
            let usage = self.registry.ledger().provider(&name);
            fleet_usd += usage.total_usd();
            let gauge = self
                .registry
                .tele
                .gauge(&format!("providers.{name}.cost_usd"));
            self.registry.tele.set_gauge(gauge, usage.total_usd());
        }
        let fleet = self.registry.tele.gauge("providers.fleet.cost_usd");
        self.registry.tele.set_gauge(fleet, fleet_usd);
    }

    /// Hunt down orphans on healed providers and terminate anything the
    /// books say should not exist. Detection reads the provider's ground
    /// truth — the same omniscient feed the audit oracle and the billing
    /// verifier use, and the only view that works across every dialect
    /// (EC2-style listings carry no client tokens, and an eventually
    /// consistent read path would hide a fresh stray for its whole lag
    /// window) — while the cleanup terminate still rides the wire.
    /// Expired suspicions are cleared here too.
    pub fn reconcile(&mut self, now: SimTime) {
        self.suspects.retain(|_, until| *until > now);

        let due: Vec<(String, String, String)> = self
            .orphans
            .keys()
            .filter(|(provider, _, _)| {
                // Still faulted: don't waste the call.
                self.registry.health(provider).is_some_and(|h| h.is_clear())
            })
            .cloned()
            .collect();

        for (provider, user, token) in due {
            let stray = self
                .registry
                .ground_truth(&provider)
                .into_iter()
                .find(|(owner, rec)| owner == &user && rec.name == token);
            match stray {
                Some((_, rec)) => {
                    let assigned_elsewhere = self
                        .assignments
                        .get(&key(&user, &token))
                        .is_some_and(|a| a.provider != provider);
                    let kill = CanonicalRequest::TerminateInstance { id: rec.id };
                    match self.registry.call(&provider, &user, &kill, now) {
                        // Ok, or a deterministic "not found": it is gone.
                        Ok(_) | Err(ProviderError::Backend(_)) => {
                            self.orphans
                                .remove(&(provider.clone(), user.clone(), token.clone()));
                            self.scorecard.orphans_cleaned += 1;
                            if assigned_elsewhere {
                                self.scorecard.double_launches_prevented += 1;
                            }
                        }
                        // Flaky again: keep the orphan booked.
                        Err(_) => self.suspect(&provider, now),
                    }
                }
                None => {
                    // Nothing running under that token: the timed-out
                    // call never executed (or already died). Clean book.
                    self.orphans
                        .remove(&(provider.clone(), user.clone(), token.clone()));
                    self.scorecard.orphans_cleaned += 1;
                }
            }
        }
    }

    /// Audit hook: every ground-truth-live instance must be explained by
    /// an assignment or a booked orphan. Returns the unexplained ones as
    /// (provider, user, token).
    pub fn unaccounted(&self) -> Vec<(String, String, String)> {
        let mut bad = Vec::new();
        for provider in self.registry.names() {
            for (user, rec) in self.registry.ground_truth(&provider) {
                let assigned = self
                    .assignments
                    .get(&key(&user, &rec.name))
                    .is_some_and(|a| a.provider == provider && a.instance == rec.id);
                let orphaned =
                    self.orphans
                        .contains_key(&(provider.clone(), user.clone(), rec.name.clone()));
                if !assigned && !orphaned {
                    bad.push((provider.clone(), user, rec.name));
                }
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::AliasTables;
    use crate::pricing::{osdc_default_catalogs, FlavorPrice, PricingCatalog};
    use crate::provider::ClassicProvider;
    use osdc_compute::cloud::CloudController;
    use osdc_telemetry::Telemetry;
    use proptest::prelude::*;

    const SEC: u64 = 1_000_000_000;

    fn aliases() -> AliasTables {
        let mut t = AliasTables::default();
        for (u, n) in [
            ("small", "m1.small"),
            ("medium", "m1.medium"),
            ("large", "m1.large"),
            ("xlarge", "m1.xlarge"),
        ] {
            t.flavors.insert(u.into(), n.into());
        }
        t.images.insert("ubuntu-base".into(), 1);
        t
    }

    fn classic_router() -> FailoverRouter {
        let mut reg = ProviderRegistry::new(Telemetry::new(), 0xf41);
        let cats = osdc_default_catalogs();
        reg.register(
            Box::new(ClassicProvider::openstack(
                "adler",
                CloudController::with_racks("adler", 1),
                aliases(),
            )),
            cats[0].clone(),
        );
        reg.register(
            Box::new(ClassicProvider::eucalyptus(
                "sullivan",
                CloudController::with_racks("sullivan", 1),
                aliases(),
            )),
            cats[1].clone(),
        );
        FailoverRouter::new(reg)
    }

    #[test]
    fn launch_picks_the_cheapest_capable_provider() {
        let mut r = classic_router();
        let a = r
            .launch("alice", "vm1", "small", "ubuntu-base", SimTime::ZERO)
            .expect("places");
        // sullivan (0.075) undercuts adler (0.08).
        assert_eq!(a.provider, "sullivan");
        assert_eq!(a.vcpus, 1);
        assert_eq!(r.user_cores("alice"), 1);
        // Idempotent re-launch returns the same assignment.
        let b = r
            .launch("alice", "vm1", "small", "ubuntu-base", SimTime(SEC))
            .expect("idempotent");
        assert_eq!(a, b);
        assert_eq!(r.scorecard.launches_placed, 1);
    }

    #[test]
    fn outage_reroutes_to_the_next_provider() {
        let mut r = classic_router();
        r.registry.set_health("sullivan", |h| h.outage = true);
        let a = r
            .launch("alice", "vm1", "small", "ubuntu-base", SimTime::ZERO)
            .expect("fails over");
        assert_eq!(a.provider, "adler");
        assert_eq!(r.scorecard.reroutes, 1);
        assert_eq!(r.scorecard.failover_latency_ms.count(), 1);
        assert!(r.is_suspect("sullivan", SimTime(SEC)));
        // While suspect, new launches go straight to adler even after
        // the outage clears.
        r.registry.set_health("sullivan", |h| h.outage = false);
        let b = r
            .launch("alice", "vm2", "small", "ubuntu-base", SimTime(2 * SEC))
            .expect("places");
        assert_eq!(b.provider, "adler");
        assert_eq!(r.scorecard.reroutes, 1, "no second reroute counted");
    }

    #[test]
    fn lost_launch_becomes_orphan_and_reconcile_cleans_it() {
        let mut r = classic_router();
        r.registry.set_health("sullivan", |h| {
            h.timeout_prob = 1.0;
            h.lost_response_prob = 1.0;
        });
        let a = r
            .launch("alice", "vm1", "small", "ubuntu-base", SimTime::ZERO)
            .expect("rerouted to adler");
        assert_eq!(a.provider, "adler");
        assert_eq!(r.scorecard.orphans_recorded, 1);
        // The lost call actually booted on sullivan: ground truth shows
        // it, and the books explain it as an orphan.
        assert_eq!(r.registry.ground_truth("sullivan").len(), 1);
        assert!(r.unaccounted().is_empty(), "orphan is booked");
        // Heal and reconcile: the stray instance is terminated.
        r.registry.set_health("sullivan", |h| h.timeout_prob = 0.0);
        r.reconcile(SimTime(200 * SEC));
        assert_eq!(r.scorecard.orphans_cleaned, 1);
        assert_eq!(r.scorecard.double_launches_prevented, 1);
        assert!(r.registry.ground_truth("sullivan").is_empty());
        assert!(r.unaccounted().is_empty());
        // The real assignment on adler is untouched.
        assert_eq!(r.user_cores("alice"), 1);
    }

    #[test]
    fn accrual_bills_each_token_once() {
        let mut r = classic_router();
        r.launch("alice", "vm1", "large", "ubuntu-base", SimTime::ZERO)
            .expect("places");
        r.poll_minute(SimTime(60 * SEC));
        let ledger = r.registry.ledger();
        // 4 cores × 0.07 $/core-hour / 60 = one minute on sullivan.
        assert!((ledger.user_usd("alice") - 4.0 * 0.07 / 60.0).abs() < 1e-12);
        assert_eq!(ledger.provider("sullivan").core_minutes, 4.0);
        assert_eq!(ledger.provider("adler").core_minutes, 0.0);
    }

    #[test]
    fn terminate_through_an_error_window_books_an_orphan() {
        let mut r = classic_router();
        r.launch("alice", "vm1", "small", "ubuntu-base", SimTime::ZERO)
            .expect("places");
        // A clean injected error: the kill never reached the backend.
        r.registry.set_health("sullivan", |h| h.error_prob = 1.0);
        r.terminate("alice", "vm1", SimTime(SEC)).expect("booked");
        assert_eq!(r.user_cores("alice"), 0);
        assert_eq!(r.scorecard.orphans_recorded, 1);
        assert!(r.unaccounted().is_empty(), "still-running VM is booked");
        r.registry.set_health("sullivan", |h| h.error_prob = 0.0);
        r.reconcile(SimTime(300 * SEC));
        assert!(r.registry.ground_truth("sullivan").is_empty(), "cleaned");
    }

    #[test]
    fn terminate_through_an_outage_books_an_orphan() {
        let mut r = classic_router();
        r.launch("alice", "vm1", "small", "ubuntu-base", SimTime::ZERO)
            .expect("places");
        r.registry.set_health("sullivan", |h| h.outage = true);
        r.terminate("alice", "vm1", SimTime(SEC)).expect("booked");
        assert_eq!(r.user_cores("alice"), 0, "billing stops immediately");
        assert_eq!(r.scorecard.orphans_recorded, 1);
        assert!(r.unaccounted().is_empty(), "still-running VM is booked");
        r.registry.set_health("sullivan", |h| h.outage = false);
        r.reconcile(SimTime(300 * SEC));
        assert!(r.registry.ground_truth("sullivan").is_empty(), "cleaned");
    }

    /// The rate a provider of kind `k` (registered at index `i`)
    /// advertises for "small" — kinds 0..=2 are the pathological spot
    /// quotes a misbehaving market can emit.
    fn rate_of(k: u8, i: usize, mag: f64) -> f64 {
        match k {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            _ => mag * (i as f64 + 1.0),
        }
    }

    proptest! {
        // Candidate ranking must never panic on non-finite rates, and
        // the order must stay deterministic: IEEE total order on rate
        // (NaN last), registration order on ties.
        #[test]
        fn candidates_tolerate_non_finite_rates(
            kinds in proptest::collection::vec(0u8..5, 2usize..6),
            mag in 0.01f64..10.0,
        ) {
            let mut reg = ProviderRegistry::new(Telemetry::disabled(), 0x9a7);
            for (i, &k) in kinds.iter().enumerate() {
                let name = format!("p{i}");
                let mut flavors = std::collections::BTreeMap::new();
                flavors.insert(
                    "small".to_string(),
                    FlavorPrice {
                        vcpus: 1,
                        per_core_hour_usd: rate_of(k, i, mag),
                    },
                );
                let cat = PricingCatalog {
                    provider: name.clone(),
                    currency: "USD".to_string(),
                    per_call_usd: 0.0001,
                    flavors,
                    spot_floor_usd: 0.0,
                    spot_ceiling_usd: 0.0,
                };
                reg.register(
                    Box::new(ClassicProvider::openstack(
                        &name,
                        CloudController::with_racks(&name, 1),
                        aliases(),
                    )),
                    cat,
                );
            }
            let r = FailoverRouter::new(reg);
            let order = r.candidates("small", "ubuntu-base");
            prop_assert_eq!(order.len(), kinds.len(), "every provider ranked");
            prop_assert_eq!(&order, &r.candidates("small", "ubuntu-base"));
            let rates: Vec<f64> = order
                .iter()
                .map(|n| {
                    let i: usize = n[1..].parse().expect("p<i> name");
                    rate_of(kinds[i], i, mag)
                })
                .collect();
            for w in rates.windows(2) {
                prop_assert!(
                    w[0].total_cmp(&w[1]) != std::cmp::Ordering::Greater,
                    "rates out of total order: {} then {}", w[0], w[1]
                );
            }
        }
    }
}
