//! OpenStack (Nova-style REST/JSON) translator: canonical ⇄ wire.
//!
//! This is the dialect the console itself speaks, so the translation is
//! nearly transparent — which is precisely why it anchors the runtime:
//! `figure1_tukey` must stay byte-identical with Tukey routed through
//! these functions, pinning the canonical types to the pre-runtime
//! behavior.

use serde_json::{json, Value};

use crate::canonical::{
    AliasTables, CanonicalRequest, CanonicalResponse, CanonicalStatus, FlavorRecord, ImageRecord,
    InstanceRecord, ProviderError,
};
use crate::wire::{WireRequest, WireResponse};

/// Compat switches for almost-OpenStack stacks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpenStackCompat {
    /// Issue `GET /servers/detail` instead of `GET /servers` (some Essex
    /// deployments only include flavor/image blocks on the detail route).
    pub detail_listing: bool,
}

/// What response shape to expect back, derived from the request that was
/// sent. Wire replies don't always echo enough to decode standalone (a
/// Nova `DELETE` returns `{}`), so the decoder carries this context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResponseKind {
    Instances,
    Launch { name: String },
    Terminate { id: u64 },
    Describe,
    Flavors,
    Images,
}

impl ResponseKind {
    pub fn of(req: &CanonicalRequest) -> ResponseKind {
        match req {
            CanonicalRequest::ListInstances => ResponseKind::Instances,
            CanonicalRequest::LaunchInstance { name, .. } => {
                ResponseKind::Launch { name: name.clone() }
            }
            CanonicalRequest::TerminateInstance { id } => ResponseKind::Terminate { id: *id },
            CanonicalRequest::DescribeInstance { .. } => ResponseKind::Describe,
            CanonicalRequest::ListFlavors => ResponseKind::Flavors,
            CanonicalRequest::ListImages => ResponseKind::Images,
        }
    }
}

/// Encode a canonical request into the Nova dialect, resolving unified
/// flavor/image names through `aliases`.
pub fn encode_request(
    req: &CanonicalRequest,
    aliases: &AliasTables,
    compat: OpenStackCompat,
) -> Result<WireRequest, ProviderError> {
    Ok(match req {
        CanonicalRequest::ListInstances => WireRequest::rest(
            "GET",
            if compat.detail_listing {
                "/servers/detail"
            } else {
                "/servers"
            },
            None,
        ),
        CanonicalRequest::LaunchInstance {
            name,
            flavor,
            image,
        } => WireRequest::rest(
            "POST",
            "/servers",
            Some(json!({"server": {
                "name": name,
                "flavorRef": aliases.native_flavor(flavor),
                "imageRef": image,
            }})),
        ),
        CanonicalRequest::TerminateInstance { id } => {
            WireRequest::rest("DELETE", format!("/servers/{id}"), None)
        }
        CanonicalRequest::DescribeInstance { id } => {
            WireRequest::rest("GET", format!("/servers/{id}"), None)
        }
        CanonicalRequest::ListFlavors => WireRequest::rest("GET", "/flavors", None),
        CanonicalRequest::ListImages => WireRequest::rest("GET", "/images", None),
    })
}

/// Decode a wire request back into canonical form (the server half of
/// the dialect, exercised by the round-trip proptests and by providers
/// that implement their own backend).
pub fn decode_request(
    wire: &WireRequest,
    aliases: &AliasTables,
) -> Result<CanonicalRequest, ProviderError> {
    let WireRequest::Rest { method, path, body } = wire else {
        return Err(ProviderError::Translation(
            "openstack dialect expects REST requests".into(),
        ));
    };
    match (method.as_str(), path.as_str()) {
        ("GET", "/servers") | ("GET", "/servers/detail") => Ok(CanonicalRequest::ListInstances),
        ("GET", "/flavors") => Ok(CanonicalRequest::ListFlavors),
        ("GET", "/images") => Ok(CanonicalRequest::ListImages),
        ("POST", "/servers") => {
            let server = body
                .as_ref()
                .and_then(|b| b.get("server"))
                .ok_or_else(|| ProviderError::Translation("missing 'server' object".into()))?;
            let name = server
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| ProviderError::Translation("missing server.name".into()))?;
            let flavor = server
                .get("flavorRef")
                .and_then(Value::as_str)
                .ok_or_else(|| ProviderError::Translation("missing server.flavorRef".into()))?;
            let image = server
                .get("imageRef")
                .and_then(Value::as_u64)
                .ok_or_else(|| ProviderError::Translation("missing server.imageRef".into()))?;
            Ok(CanonicalRequest::LaunchInstance {
                name: name.to_string(),
                flavor: aliases.unified_flavor(flavor),
                image,
            })
        }
        _ => {
            if let Some(rest) = path.strip_prefix("/servers/") {
                let id: u64 = rest
                    .parse()
                    .map_err(|_| ProviderError::Translation(format!("bad server id '{rest}'")))?;
                return match method.as_str() {
                    "GET" => Ok(CanonicalRequest::DescribeInstance { id }),
                    "DELETE" => Ok(CanonicalRequest::TerminateInstance { id }),
                    other => Err(ProviderError::Translation(format!("{other} {path}"))),
                };
            }
            Err(ProviderError::Translation(format!("{method} {path}")))
        }
    }
}

/// Render one instance as a Nova `GET /servers` item. Fields the record
/// does not carry (`vcpus`, `image`) are omitted — matching what the
/// pre-runtime proxy emitted for records translated from other dialects.
pub fn render_instance(rec: &InstanceRecord) -> Value {
    let mut flavor = json!({"name": rec.flavor});
    if let Some(vcpus) = rec.vcpus {
        flavor["vcpus"] = json!(vcpus);
    }
    let mut item = json!({
        "id": rec.id,
        "name": rec.name,
        "status": rec.status.openstack(),
        "flavor": flavor,
    });
    if let Some(image) = rec.image {
        item["image"] = json!({"id": image});
    }
    item
}

/// Render a launch result as the Nova `POST /servers` reply body.
pub fn render_launch(rec: &InstanceRecord) -> Value {
    json!({"server": {
        "id": rec.id,
        "name": rec.name,
        "status": rec.status.openstack(),
    }})
}

/// Encode a canonical response as the Nova dialect's reply (the server
/// half).
pub fn encode_response(resp: &CanonicalResponse) -> WireResponse {
    WireResponse::Json(match resp {
        CanonicalResponse::Instances(recs) => {
            json!({"servers": recs.iter().map(render_instance).collect::<Vec<_>>()})
        }
        CanonicalResponse::Launched(rec) => render_launch(rec),
        CanonicalResponse::Terminated { .. } => json!({}),
        CanonicalResponse::Instance(rec) => json!({"server": {
            "id": rec.id,
            "name": rec.name,
            "status": rec.status.openstack(),
        }}),
        CanonicalResponse::Flavors(fls) => json!({"flavors": fls
            .iter()
            .map(|f| json!({"name": f.name, "vcpus": f.vcpus, "ram": f.ram_mb, "disk": f.disk_gb}))
            .collect::<Vec<_>>()}),
        CanonicalResponse::Images(imgs) => json!({"images": imgs
            .iter()
            .map(|i| json!({"id": i.id, "name": i.name}))
            .collect::<Vec<_>>()}),
    })
}

fn status_of(v: &Value) -> Result<CanonicalStatus, ProviderError> {
    let s = v
        .as_str()
        .ok_or_else(|| ProviderError::Translation("missing status".into()))?;
    CanonicalStatus::from_openstack(s)
        .ok_or_else(|| ProviderError::Translation(format!("unknown openstack status {s:?}")))
}

fn instance_of(item: &Value) -> Result<InstanceRecord, ProviderError> {
    Ok(InstanceRecord {
        id: item["id"]
            .as_u64()
            .ok_or_else(|| ProviderError::Translation("missing instance id".into()))?,
        name: item["name"]
            .as_str()
            .ok_or_else(|| ProviderError::Translation("missing instance name".into()))?
            .to_string(),
        status: status_of(&item["status"])?,
        flavor: item["flavor"]["name"].as_str().unwrap_or("").to_string(),
        vcpus: item["flavor"]["vcpus"].as_u64().map(|v| v as u32),
        image: item["image"]["id"].as_u64(),
    })
}

/// Decode a Nova reply into canonical form (the client half).
pub fn decode_response(
    kind: &ResponseKind,
    wire: &WireResponse,
) -> Result<CanonicalResponse, ProviderError> {
    let WireResponse::Json(v) = wire else {
        return Err(ProviderError::Translation(
            "openstack dialect expects JSON responses".into(),
        ));
    };
    match kind {
        ResponseKind::Instances => {
            let servers = v["servers"]
                .as_array()
                .ok_or_else(|| ProviderError::Translation("missing 'servers' array".into()))?;
            Ok(CanonicalResponse::Instances(
                servers.iter().map(instance_of).collect::<Result<_, _>>()?,
            ))
        }
        ResponseKind::Launch { .. } => Ok(CanonicalResponse::Launched(instance_of(&v["server"])?)),
        ResponseKind::Terminate { id } => Ok(CanonicalResponse::Terminated { id: *id }),
        ResponseKind::Describe => Ok(CanonicalResponse::Instance(instance_of(&v["server"])?)),
        ResponseKind::Flavors => {
            let flavors = v["flavors"]
                .as_array()
                .ok_or_else(|| ProviderError::Translation("missing 'flavors' array".into()))?;
            Ok(CanonicalResponse::Flavors(
                flavors
                    .iter()
                    .map(|f| {
                        Ok(FlavorRecord {
                            name: f["name"]
                                .as_str()
                                .ok_or_else(|| {
                                    ProviderError::Translation("missing flavor name".into())
                                })?
                                .to_string(),
                            vcpus: f["vcpus"].as_u64().unwrap_or(0) as u32,
                            ram_mb: f["ram"].as_u64().unwrap_or(0),
                            disk_gb: f["disk"].as_u64().unwrap_or(0),
                        })
                    })
                    .collect::<Result<_, ProviderError>>()?,
            ))
        }
        ResponseKind::Images => {
            let images = v["images"]
                .as_array()
                .ok_or_else(|| ProviderError::Translation("missing 'images' array".into()))?;
            Ok(CanonicalResponse::Images(
                images
                    .iter()
                    .map(|i| {
                        Ok(ImageRecord {
                            id: i["id"].as_u64().ok_or_else(|| {
                                ProviderError::Translation("missing image id".into())
                            })?,
                            name: i["name"].as_str().unwrap_or("").to_string(),
                        })
                    })
                    .collect::<Result<_, ProviderError>>()?,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aliases() -> AliasTables {
        let mut t = AliasTables::default();
        t.flavors.insert("small".into(), "m1.small".into());
        t.images.insert("ubuntu".into(), 3);
        t
    }

    #[test]
    fn launch_encodes_with_alias_resolution() {
        let req = CanonicalRequest::LaunchInstance {
            name: "vm1".into(),
            flavor: "small".into(),
            image: 3,
        };
        let wire = encode_request(&req, &aliases(), OpenStackCompat::default()).expect("encodes");
        let WireRequest::Rest { method, path, body } = &wire else {
            panic!("REST expected");
        };
        assert_eq!((method.as_str(), path.as_str()), ("POST", "/servers"));
        let body = body.as_ref().expect("body");
        assert_eq!(body["server"]["flavorRef"], "m1.small");
        assert_eq!(decode_request(&wire, &aliases()).expect("decodes"), req);
    }

    #[test]
    fn requests_roundtrip() {
        let t = aliases();
        for req in [
            CanonicalRequest::ListInstances,
            CanonicalRequest::TerminateInstance { id: 9 },
            CanonicalRequest::DescribeInstance { id: 4 },
            CanonicalRequest::ListFlavors,
            CanonicalRequest::ListImages,
        ] {
            let wire = encode_request(&req, &t, OpenStackCompat::default()).expect("encodes");
            assert_eq!(decode_request(&wire, &t).expect("decodes"), req);
        }
    }

    #[test]
    fn detail_listing_compat_flag() {
        let wire = encode_request(
            &CanonicalRequest::ListInstances,
            &AliasTables::default(),
            OpenStackCompat {
                detail_listing: true,
            },
        )
        .expect("encodes");
        assert_eq!(
            wire,
            WireRequest::rest("GET", "/servers/detail", None),
            "compat flag changes the path"
        );
        // And still decodes to the same canonical request.
        assert_eq!(
            decode_request(&wire, &AliasTables::default()).expect("decodes"),
            CanonicalRequest::ListInstances
        );
    }

    #[test]
    fn responses_roundtrip() {
        let resp = CanonicalResponse::Instances(vec![InstanceRecord {
            id: 7,
            name: "vm7".into(),
            status: CanonicalStatus::Active,
            flavor: "m1.large".into(),
            vcpus: Some(4),
            image: Some(2),
        }]);
        let wire = encode_response(&resp);
        assert_eq!(
            decode_response(&ResponseKind::Instances, &wire).expect("decodes"),
            resp
        );
    }

    #[test]
    fn malformed_wire_is_a_typed_error() {
        let bad = WireResponse::Json(json!({"servers": [{"id": "not-a-number"}]}));
        assert!(matches!(
            decode_response(&ResponseKind::Instances, &bad),
            Err(ProviderError::Translation(_))
        ));
        let xml = WireResponse::Xml("<servers/>".into());
        assert!(matches!(
            decode_response(&ResponseKind::Instances, &xml),
            Err(ProviderError::Translation(_))
        ));
    }
}
