//! osdc-providers: the pluggable provider runtime for the OSDC federation.
//!
//! The Tukey middleware (crates/tukey) proved the thesis on two dialects:
//! one canonical intent, per-cloud translators, byte-faithful wire formats.
//! This crate generalizes that design into a runtime other subsystems can
//! build on:
//!
//! * [`canonical`] — provider-neutral request/response types, alias
//!   tables mapping unified flavor/image names onto native ones, and a
//!   typed [`canonical::ProviderError`].
//! * [`wire`] — the wire-level envelope ([`wire::WireRequest`] /
//!   [`wire::WireResponse`]) plus the shared XML/query-string parsers.
//! * One translator module per dialect, each a pure `encode_*`/`decode_*`
//!   pair with a compat-flags struct: [`openstack`] (Nova REST/JSON),
//!   [`eucalyptus`] (EC2 query/XML), [`spot`] (a spot market with
//!   preemption), [`paged`] (cursor-paginated JSON). [`eventual`] reuses
//!   the Nova translator but lags its read path.
//! * [`provider`] — the [`provider::Provider`] trait (capability
//!   descriptor, canonical `call`, ground-truth introspection for
//!   audits) and [`provider::ClassicProvider`], which ports the two
//!   original Tukey dialects onto the trait.
//! * [`pricing`] — per-provider pricing catalogs; the checked-in
//!   snapshot lives at `data/pricing_catalogs.json`.
//! * [`registry`] — [`registry::ProviderRegistry`]: the provider table
//!   with per-call metering (telemetry counters + a usage/cost ledger)
//!   and the chaos gate (API outage / timeout / lost-response / error
//!   injection) the failover experiments drive.
//! * [`router`] — [`router::FailoverRouter`]: cheapest-capable-first
//!   launch placement with failover, suspect cooldowns, an orphan book
//!   for timed-out mutations, reconcile, and assignment-driven billing
//!   accrual that makes double-billing structurally impossible.
//!
//! The compat gate: `figure1_tukey` must produce byte-identical
//! same-seed artifacts with the OpenStack and Eucalyptus dialects
//! served through this crate's translators.

pub mod canonical;
pub mod eucalyptus;
pub mod eventual;
pub mod fleet;
pub mod openstack;
pub mod paged;
pub mod pricing;
pub mod provider;
pub mod registry;
pub mod router;
pub mod spot;
pub mod wire;

pub use canonical::{
    AliasTables, CanonicalRequest, CanonicalResponse, CanonicalStatus, FlavorRecord, ImageRecord,
    InstanceRecord, ProviderError,
};
pub use fleet::{osdc_aliases, osdc_fleet};
pub use pricing::{osdc_default_catalogs, render_catalogs, PricingCatalog};
pub use provider::{CapabilityDescriptor, ClassicProvider, Consistency, Provider, WireFormat};
pub use registry::{ApiHealth, ProviderRegistry, ProviderUsage, UsageLedger};
pub use router::{Assignment, FailoverRouter, RouterScorecard};
pub use wire::{WireRequest, WireResponse};
