//! Pricing catalogs: what each provider charges, in reviewable JSON.
//!
//! A catalog is plain data — serializable so the default set can live as
//! a checked-in snapshot (`data/pricing_catalogs.json`) that makes any
//! price edit show up in a review diff. Rates are $/core-hour in the
//! unified flavor vocabulary; spot markets additionally publish their
//! floor/ceiling band, inside which the live price walks.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Price of one unified flavor on one provider.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlavorPrice {
    pub vcpus: u32,
    pub per_core_hour_usd: f64,
}

/// One provider's price list.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PricingCatalog {
    pub provider: String,
    pub currency: String,
    /// Flat fee per API call (metering every translated request).
    pub per_call_usd: f64,
    /// Unified flavor name → price.
    pub flavors: BTreeMap<String, FlavorPrice>,
    /// Spot markets only: the band the live price walks inside.
    #[serde(default)]
    pub spot_floor_usd: f64,
    #[serde(default)]
    pub spot_ceiling_usd: f64,
}

impl PricingCatalog {
    pub fn is_spot(&self) -> bool {
        self.spot_ceiling_usd > 0.0
    }

    pub fn vcpus(&self, flavor: &str) -> Option<u32> {
        self.flavors.get(flavor).map(|f| f.vcpus)
    }

    /// On-demand $/core-hour for a flavor, if priced here at all.
    pub fn core_hour_rate(&self, flavor: &str) -> Option<f64> {
        self.flavors.get(flavor).map(|f| f.per_core_hour_usd)
    }

    /// The rate actually charged right now: the live spot price when one
    /// is quoted, the list rate otherwise.
    pub fn effective_rate(&self, flavor: &str, spot_price: Option<f64>) -> Option<f64> {
        self.core_hour_rate(flavor)?;
        Some(match spot_price {
            Some(p) if self.is_spot() => p,
            _ => self.core_hour_rate(flavor).expect("checked above"),
        })
    }
}

fn catalog(
    provider: &str,
    per_call_usd: f64,
    per_core_hour: [f64; 4],
    spot_band: Option<(f64, f64)>,
) -> PricingCatalog {
    let sizes = [("small", 1u32), ("medium", 2), ("large", 4), ("xlarge", 8)];
    let flavors = sizes
        .iter()
        .zip(per_core_hour)
        .map(|((name, vcpus), rate)| {
            (
                name.to_string(),
                FlavorPrice {
                    vcpus: *vcpus,
                    per_core_hour_usd: rate,
                },
            )
        })
        .collect();
    let (spot_floor_usd, spot_ceiling_usd) = spot_band.unwrap_or((0.0, 0.0));
    PricingCatalog {
        provider: provider.to_string(),
        currency: "USD".to_string(),
        per_call_usd,
        flavors,
        spot_floor_usd,
        spot_ceiling_usd,
    }
}

/// The default OSDC federation price list, one catalog per provider.
/// Keep in sync with `data/pricing_catalogs.json` (the snapshot test
/// fails otherwise).
pub fn osdc_default_catalogs() -> Vec<PricingCatalog> {
    vec![
        // The two classic utility clouds: list-priced, slight volume
        // discount on bigger flavors.
        catalog("adler", 0.0002, [0.08, 0.078, 0.075, 0.072], None),
        catalog("sullivan", 0.0001, [0.075, 0.073, 0.07, 0.068], None),
        // Spotmart: cheap while the market is calm, preemptible. The
        // on-demand column doubles as the console's standing bid.
        catalog(
            "spotmart",
            0.0001,
            [0.06, 0.06, 0.06, 0.06],
            Some((0.015, 0.14)),
        ),
        // Lagoon: cheapest list price, eventually consistent reads.
        catalog("lagoon", 0.0001, [0.05, 0.05, 0.05, 0.05], None),
        // Pagely: mid-market, paginated listings.
        catalog("pagely", 0.0003, [0.065, 0.064, 0.062, 0.06], None),
    ]
}

/// Serialize catalogs exactly as the checked-in snapshot stores them.
pub fn render_catalogs(catalogs: &[PricingCatalog]) -> String {
    let mut s = serde_json::to_string_pretty(&catalogs.to_vec()).expect("catalogs serialize");
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_catalogs_cover_all_providers() {
        let cats = osdc_default_catalogs();
        let names: Vec<&str> = cats.iter().map(|c| c.provider.as_str()).collect();
        assert_eq!(
            names,
            vec!["adler", "sullivan", "spotmart", "lagoon", "pagely"]
        );
        for c in &cats {
            assert_eq!(c.flavors.len(), 4, "{}", c.provider);
            assert!(c.per_call_usd > 0.0);
        }
        assert!(cats[2].is_spot());
        assert!(!cats[0].is_spot());
    }

    #[test]
    fn effective_rate_prefers_live_spot_price() {
        let cats = osdc_default_catalogs();
        let spot = &cats[2];
        assert_eq!(spot.effective_rate("small", Some(0.021)), Some(0.021));
        let fixed = &cats[0];
        assert_eq!(fixed.effective_rate("small", Some(0.021)), Some(0.08));
        assert_eq!(fixed.effective_rate("m9.hyper", None), None);
    }

    #[test]
    fn catalogs_roundtrip_through_json() {
        let cats = osdc_default_catalogs();
        let json = render_catalogs(&cats);
        let back: Vec<PricingCatalog> = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, cats);
    }
}
