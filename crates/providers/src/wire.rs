//! Wire-level request/response containers and shared parsing helpers.
//!
//! A translator never sees sockets; it sees a [`WireRequest`] going out
//! and a [`WireResponse`] coming back. The three container shapes cover
//! every dialect in the runtime: Nova-style REST (method + path + JSON
//! body), EC2 query strings with XML-ish replies, and paginated JSON
//! documents chained by a page token.

use serde_json::Value;

/// One outbound native-API call.
#[derive(Clone, Debug, PartialEq)]
pub enum WireRequest {
    /// REST: `method path` plus an optional JSON body.
    Rest {
        method: String,
        path: String,
        body: Option<Value>,
    },
    /// EC2 query dialect: a flat `Action=...&Key=Value` string.
    Query(String),
}

impl WireRequest {
    pub fn rest(method: &str, path: impl Into<String>, body: Option<Value>) -> WireRequest {
        WireRequest::Rest {
            method: method.to_string(),
            path: path.into(),
            body,
        }
    }
}

/// One inbound native-API reply.
#[derive(Clone, Debug, PartialEq)]
pub enum WireResponse {
    Json(Value),
    Xml(String),
}

/// Pull every `<tag>value</tag>` occurrence out of an XML-ish document.
/// (The 2012 Eucalyptus replies are flat enough that this is the whole
/// parser — exactly the one the original Tukey proxy used.)
pub fn xml_values<'a>(xml: &'a str, tag: &str) -> Vec<&'a str> {
    let open = format!("<{tag}>");
    let close = format!("</{tag}>");
    let mut out = Vec::new();
    let mut rest = xml;
    while let Some(start) = rest.find(&open) {
        let after = &rest[start + open.len()..];
        match after.find(&close) {
            Some(end) => {
                out.push(&after[..end]);
                rest = &after[end + close.len()..];
            }
            None => break,
        }
    }
    out
}

/// Parse a `Key=Value&Key=Value` query string into pairs. Later
/// duplicates win, as EC2 front ends of the era behaved.
pub fn parse_query(query: &str) -> std::collections::BTreeMap<&str, &str> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_extraction() {
        let xml = "<a><instanceId>i-1</instanceId><x/><instanceId>i-2</instanceId></a>";
        assert_eq!(xml_values(xml, "instanceId"), vec!["i-1", "i-2"]);
        assert!(xml_values(xml, "missing").is_empty());
        assert!(xml_values("<open>unclosed", "open").is_empty());
    }

    #[test]
    fn query_parsing() {
        let q = parse_query("Action=RunInstances&ImageId=emi-01&Blank");
        assert_eq!(q.get("Action"), Some(&"RunInstances"));
        assert_eq!(q.get("ImageId"), Some(&"emi-01"));
        assert_eq!(q.get("Blank"), None);
    }
}
