//! Standard federation assembly: the five OSDC providers by name.
//!
//! The audit oracle, the `exp_providers` grid and the unit tests all
//! need the same fleet wired the same way — one registry, providers
//! drawn from the default catalog set, each speaking its own dialect:
//!
//! | name       | dialect                     | weirdness                |
//! |------------|-----------------------------|--------------------------|
//! | `adler`    | OpenStack REST/JSON         | none (classic)           |
//! | `sullivan` | Eucalyptus EC2 query/XML    | none (classic)           |
//! | `spotmart` | REST/JSON                   | spot market, preemption  |
//! | `lagoon`   | REST/JSON                   | eventually consistent    |
//! | `pagely`   | REST/JSON, paginated        | page-boundary listings   |
//!
//! Every provider shares the unified alias vocabulary
//! (`small`/`medium`/`large`/`xlarge` → `m1.*`, `ubuntu-base` → image 1)
//! so a launch can land anywhere and the router's choice is purely
//! price and health.

use osdc_compute::cloud::CloudController;
use osdc_sim::SimDuration;
use osdc_telemetry::Telemetry;

use crate::canonical::AliasTables;
use crate::eventual::EventualProvider;
use crate::paged::PagedProvider;
use crate::pricing::osdc_default_catalogs;
use crate::provider::ClassicProvider;
use crate::registry::ProviderRegistry;
use crate::spot::SpotProvider;

/// The unified alias vocabulary every fleet member understands.
pub fn osdc_aliases() -> AliasTables {
    let mut t = AliasTables::default();
    for (unified, native) in [
        ("small", "m1.small"),
        ("medium", "m1.medium"),
        ("large", "m1.large"),
        ("xlarge", "m1.xlarge"),
    ] {
        t.flavors.insert(unified.into(), native.into());
    }
    t.images.insert("ubuntu-base".into(), 1);
    t
}

/// Read-propagation lag of the `lagoon` provider.
pub const LAGOON_LAG_SECS: u64 = 90;

/// Listing page size of the `pagely` provider.
pub const PAGELY_PAGE_SIZE: usize = 3;

/// Build a registry holding the named subset of the standard fleet, in
/// the given order. Unknown names panic — the mix vocabulary is the
/// five rows above.
pub fn osdc_fleet(mix: &[&str], tele: Telemetry, seed: u64) -> ProviderRegistry {
    let catalogs = osdc_default_catalogs();
    let catalog = |name: &str| {
        catalogs
            .iter()
            .find(|c| c.provider == name)
            .unwrap_or_else(|| panic!("no default catalog for provider {name:?}"))
            .clone()
    };
    let mut registry = ProviderRegistry::new(tele, seed);
    for &name in mix {
        let cloud = CloudController::with_racks(name, 1);
        match name {
            "adler" => registry.register(
                Box::new(ClassicProvider::openstack(name, cloud, osdc_aliases())),
                catalog(name),
            ),
            "sullivan" => registry.register(
                Box::new(ClassicProvider::eucalyptus(name, cloud, osdc_aliases())),
                catalog(name),
            ),
            "spotmart" => {
                // The console's standing bid is the on-demand column.
                let cat = catalog(name);
                let bid = cat.core_hour_rate("small").expect("priced");
                let (floor, ceiling) = (cat.spot_floor_usd, cat.spot_ceiling_usd);
                registry.register(
                    Box::new(SpotProvider::new(
                        name,
                        cloud,
                        osdc_aliases(),
                        seed ^ 0x5907_1234,
                        floor,
                        ceiling,
                        bid,
                    )),
                    cat,
                );
            }
            "lagoon" => registry.register(
                Box::new(EventualProvider::new(
                    name,
                    cloud,
                    osdc_aliases(),
                    SimDuration::from_secs(LAGOON_LAG_SECS),
                )),
                catalog(name),
            ),
            "pagely" => registry.register(
                Box::new(PagedProvider::new(
                    name,
                    cloud,
                    osdc_aliases(),
                    PAGELY_PAGE_SIZE,
                )),
                catalog(name),
            ),
            other => panic!("unknown fleet member {other:?}"),
        }
    }
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_fleet_assembles_in_mix_order() {
        let reg = osdc_fleet(
            &["pagely", "adler", "spotmart", "lagoon", "sullivan"],
            Telemetry::disabled(),
            7,
        );
        assert_eq!(
            reg.names(),
            vec!["pagely", "adler", "spotmart", "lagoon", "sullivan"]
        );
        for name in reg.names() {
            assert!(reg.catalog(&name).is_some(), "{name} has a catalog");
            assert!(reg.aliases(&name).is_some(), "{name} has aliases");
        }
        assert!(reg.descriptor("spotmart").expect("known").spot);
        assert_eq!(
            reg.descriptor("pagely").expect("known").page_size,
            Some(PAGELY_PAGE_SIZE)
        );
    }

    #[test]
    #[should_panic(expected = "unknown fleet member")]
    fn unknown_members_are_loud() {
        osdc_fleet(&["tempest"], Telemetry::disabled(), 7);
    }
}
