//! The `Provider` trait and the two classic adapters.
//!
//! A provider owns a backend cloud and translates canonical calls onto
//! its native wire dialect — encode, serve, decode, every call, so
//! translation is exercised on the real path rather than trusted. The
//! classic adapters ([`ClassicProvider`]) drive the same
//! `osdc_compute::api` servers Tukey proxies to; the deliberately weird
//! providers live in [`crate::spot`], [`crate::eventual`] and
//! [`crate::paged`].

use osdc_compute::api::{ApiError, EucalyptusApi, OpenStackApi};
use osdc_compute::cloud::CloudController;
use osdc_compute::instance::{Instance, InstanceState};
use osdc_sim::{SimDuration, SimTime};

use crate::canonical::{
    AliasTables, CanonicalRequest, CanonicalResponse, CanonicalStatus, InstanceRecord,
    ProviderError,
};
use crate::eucalyptus::{self, EucalyptusCompat};
use crate::openstack::{self, OpenStackCompat, ResponseKind};
use crate::wire::{WireRequest, WireResponse};

/// Which wire family a provider speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireFormat {
    /// Nova-style REST + JSON.
    RestJson,
    /// EC2 `Action=` query strings + XML.
    Ec2Query,
    /// JSON split across pages chained by a `next` token.
    PagedJson,
}

impl WireFormat {
    pub fn label(self) -> &'static str {
        match self {
            WireFormat::RestJson => "rest-json",
            WireFormat::Ec2Query => "ec2-query",
            WireFormat::PagedJson => "paged-json",
        }
    }
}

/// How promptly reads reflect writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Consistency {
    /// Reads see every prior write.
    Strong,
    /// List/describe lag mutations by a fixed window.
    Eventual { lag: SimDuration },
}

/// What a provider can do and how it behaves — the registry entry's
/// routing facts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapabilityDescriptor {
    pub wire: WireFormat,
    pub consistency: Consistency,
    /// Prices float and instances can be preempted.
    pub spot: bool,
    /// Whether `ListFlavors` has a wire form in this dialect.
    pub flavor_listing: bool,
    /// Base latency of one native API round trip.
    pub api_latency: SimDuration,
    /// For paged dialects: instances per page (drives per-page latency).
    pub page_size: Option<usize>,
}

/// One pluggable cloud provider.
pub trait Provider {
    fn name(&self) -> &str;
    fn descriptor(&self) -> CapabilityDescriptor;
    /// Unified → native alias tables for this provider.
    fn aliases(&self) -> &AliasTables;
    /// Translate and execute one canonical call as `user`.
    fn call(
        &mut self,
        user: &str,
        req: &CanonicalRequest,
        now: SimTime,
    ) -> Result<CanonicalResponse, ProviderError>;
    /// Advance provider-internal processes (spot price walks, preemption
    /// sweeps). Called once per simulated minute by the registry.
    fn tick(&mut self, _now: SimTime) {}
    /// Current spot price in $/core-hour, for spot markets only.
    fn spot_price(&self) -> Option<f64> {
        None
    }
    /// Omniscient backend view for audit oracles and usage accounting:
    /// every *billable* instance with its owner, bypassing the wire.
    fn ground_truth(&self) -> Vec<(String, InstanceRecord)>;
    /// Translation-fidelity probe: encode `req` onto this dialect's wire
    /// and decode it back. The router scores `roundtrip_request(r) == r`
    /// on every live call.
    fn roundtrip_request(&self, req: &CanonicalRequest) -> Result<CanonicalRequest, ProviderError>;
}

pub(crate) fn status_of(state: InstanceState) -> CanonicalStatus {
    match state {
        InstanceState::Building => CanonicalStatus::Build,
        InstanceState::Active => CanonicalStatus::Active,
        InstanceState::Shutoff => CanonicalStatus::Shutoff,
        InstanceState::Terminated => CanonicalStatus::Terminated,
    }
}

pub(crate) fn record_of(inst: &Instance) -> InstanceRecord {
    InstanceRecord {
        id: inst.id.0,
        name: inst.name.clone(),
        status: status_of(inst.state),
        flavor: inst.flavor.name.clone(),
        vcpus: Some(inst.flavor.vcpus),
        image: Some(inst.image.0),
    }
}

pub(crate) fn billable_ground_truth(cloud: &CloudController) -> Vec<(String, InstanceRecord)> {
    cloud
        .all_instances()
        .filter(|i| i.billable())
        .map(|i| (i.owner.clone(), record_of(i)))
        .collect()
}

/// Find a live instance by client token (name), the idempotency contract
/// of [`CanonicalRequest::LaunchInstance`].
pub(crate) fn live_by_token<'c>(
    cloud: &'c CloudController,
    user: &str,
    token: &str,
) -> Option<&'c Instance> {
    cloud
        .all_instances()
        .find(|i| i.owner == user && i.name == token && i.state != InstanceState::Terminated)
}

fn backend_err(e: ApiError) -> ProviderError {
    ProviderError::Backend(match e {
        ApiError::BadRequest(m) => format!("bad request: {m}"),
        ApiError::NotFound(m) => format!("not found: {m}"),
        ApiError::Compute(m) => format!("compute: {m}"),
    })
}

/// Which classic dialect a [`ClassicProvider`] speaks.
#[derive(Clone, Copy, Debug)]
pub enum ClassicDialect {
    OpenStack(OpenStackCompat),
    Eucalyptus(EucalyptusCompat),
}

/// An OpenStack- or Eucalyptus-dialect provider over a real
/// [`CloudController`] — the ported half of Tukey's original proxy pair.
pub struct ClassicProvider {
    name: String,
    dialect: ClassicDialect,
    pub cloud: CloudController,
    aliases: AliasTables,
    api_latency: SimDuration,
}

impl ClassicProvider {
    pub fn openstack(
        name: impl Into<String>,
        cloud: CloudController,
        aliases: AliasTables,
    ) -> Self {
        ClassicProvider {
            name: name.into(),
            dialect: ClassicDialect::OpenStack(OpenStackCompat::default()),
            cloud,
            aliases,
            // The same base the original proxy charged OpenStack calls.
            api_latency: SimDuration::from_millis(35),
        }
    }

    pub fn eucalyptus(
        name: impl Into<String>,
        cloud: CloudController,
        aliases: AliasTables,
    ) -> Self {
        ClassicProvider {
            name: name.into(),
            dialect: ClassicDialect::Eucalyptus(EucalyptusCompat::default()),
            cloud,
            aliases,
            api_latency: SimDuration::from_millis(55),
        }
    }

    /// Encode the canonical request onto this dialect's wire.
    pub fn encode(&self, req: &CanonicalRequest) -> Result<WireRequest, ProviderError> {
        match self.dialect {
            ClassicDialect::OpenStack(c) => openstack::encode_request(req, &self.aliases, c),
            ClassicDialect::Eucalyptus(c) => eucalyptus::encode_request(req, &self.aliases, c),
        }
    }

    /// Serve one wire request against the native backend API.
    fn serve(
        &mut self,
        user: &str,
        wire: &WireRequest,
        now: SimTime,
    ) -> Result<WireResponse, ProviderError> {
        match wire {
            WireRequest::Rest { method, path, body } => OpenStackApi::new(&mut self.cloud)
                .handle(user, method, path, body.as_ref(), now)
                .map(WireResponse::Json)
                .map_err(backend_err),
            WireRequest::Query(q) => EucalyptusApi::new(&mut self.cloud)
                .handle(user, q, now)
                .map(WireResponse::Xml)
                .map_err(backend_err),
        }
    }

    fn decode(
        &self,
        kind: &ResponseKind,
        wire: &WireResponse,
    ) -> Result<CanonicalResponse, ProviderError> {
        match self.dialect {
            ClassicDialect::OpenStack(_) => openstack::decode_response(kind, wire),
            ClassicDialect::Eucalyptus(_) => eucalyptus::decode_response(kind, wire),
        }
    }
}

impl Provider for ClassicProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn descriptor(&self) -> CapabilityDescriptor {
        let (wire, flavor_listing) = match self.dialect {
            ClassicDialect::OpenStack(_) => (WireFormat::RestJson, true),
            ClassicDialect::Eucalyptus(_) => (WireFormat::Ec2Query, false),
        };
        CapabilityDescriptor {
            wire,
            consistency: Consistency::Strong,
            spot: false,
            flavor_listing,
            api_latency: self.api_latency,
            page_size: None,
        }
    }

    fn aliases(&self) -> &AliasTables {
        &self.aliases
    }

    fn call(
        &mut self,
        user: &str,
        req: &CanonicalRequest,
        now: SimTime,
    ) -> Result<CanonicalResponse, ProviderError> {
        // Launch idempotency: an existing live instance under the same
        // client token is returned, not double-booted. (The Eucalyptus
        // dialect carries the token natively; Nova of the era did not,
        // so the adapter enforces it for both.)
        if let CanonicalRequest::LaunchInstance { name, .. } = req {
            if let Some(existing) = live_by_token(&self.cloud, user, name) {
                return Ok(CanonicalResponse::Launched(record_of(existing)));
            }
        }
        let wire = self.encode(req)?;
        let resp = self.serve(user, &wire, now)?;
        self.decode(&ResponseKind::of(req), &resp)
    }

    fn ground_truth(&self) -> Vec<(String, InstanceRecord)> {
        billable_ground_truth(&self.cloud)
    }

    fn roundtrip_request(&self, req: &CanonicalRequest) -> Result<CanonicalRequest, ProviderError> {
        let wire = self.encode(req)?;
        match self.dialect {
            ClassicDialect::OpenStack(_) => openstack::decode_request(&wire, &self.aliases),
            ClassicDialect::Eucalyptus(_) => eucalyptus::decode_request(&wire, &self.aliases),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aliases() -> AliasTables {
        let mut t = AliasTables::default();
        t.flavors.insert("small".into(), "m1.small".into());
        t.images.insert("ubuntu-base".into(), 1);
        t
    }

    fn launch(name: &str) -> CanonicalRequest {
        CanonicalRequest::LaunchInstance {
            name: name.into(),
            flavor: "small".into(),
            image: 1,
        }
    }

    #[test]
    fn classic_lifecycle_both_dialects() {
        for euca in [false, true] {
            let cloud = CloudController::with_racks("cloud-a", 1);
            let mut p = if euca {
                ClassicProvider::eucalyptus("cloud-a", cloud, aliases())
            } else {
                ClassicProvider::openstack("cloud-a", cloud, aliases())
            };
            let resp = p
                .call("alice", &launch("vm1"), SimTime::ZERO)
                .expect("launches");
            let CanonicalResponse::Launched(rec) = resp else {
                panic!()
            };
            assert_eq!(rec.status, CanonicalStatus::Active);
            let listed = p
                .call("alice", &CanonicalRequest::ListInstances, SimTime(1))
                .expect("lists");
            let CanonicalResponse::Instances(recs) = listed else {
                panic!()
            };
            assert_eq!(recs.len(), 1);
            assert_eq!(recs[0].id, rec.id);
            p.call(
                "alice",
                &CanonicalRequest::TerminateInstance { id: rec.id },
                SimTime(2),
            )
            .expect("terminates");
            assert!(p.ground_truth().is_empty());
        }
    }

    #[test]
    fn launch_is_idempotent_by_token() {
        let mut p = ClassicProvider::openstack(
            "cloud-a",
            CloudController::with_racks("cloud-a", 1),
            aliases(),
        );
        let CanonicalResponse::Launched(a) = p
            .call("alice", &launch("vm1"), SimTime::ZERO)
            .expect("launches")
        else {
            panic!()
        };
        let CanonicalResponse::Launched(b) = p
            .call("alice", &launch("vm1"), SimTime(1))
            .expect("relaunches")
        else {
            panic!()
        };
        assert_eq!(a.id, b.id, "same token returns the same instance");
        assert_eq!(p.ground_truth().len(), 1);
        // A different user's identical token is a different instance.
        let CanonicalResponse::Launched(c) =
            p.call("bob", &launch("vm1"), SimTime(2)).expect("launches")
        else {
            panic!()
        };
        assert_ne!(a.id, c.id);
    }

    #[test]
    fn backend_failures_are_typed() {
        let mut p = ClassicProvider::eucalyptus(
            "cloud-b",
            CloudController::with_racks("cloud-b", 1),
            aliases(),
        );
        let err = p
            .call(
                "alice",
                &CanonicalRequest::LaunchInstance {
                    name: "vm".into(),
                    flavor: "m9.hyper".into(),
                    image: 1,
                },
                SimTime::ZERO,
            )
            .expect_err("unknown flavor");
        assert!(matches!(err, ProviderError::Backend(_)), "{err}");
    }
}
