//! "Pagely" — a deliberately weird provider: a paginated wire format.
//!
//! Listings come back split into fixed-size pages chained by a `next`
//! page number; the client must walk every page and stitch the fleet
//! back together. Page-boundary arithmetic (empty fleet, exactly one
//! page, one-past-a-boundary) is where hand-rolled pagination code
//! breaks, so the proptests hammer those edges specifically.

use osdc_compute::cloud::CloudController;
use osdc_compute::image::ImageId;
use osdc_compute::instance::{InstanceId, InstanceState};
use osdc_sim::{SimDuration, SimTime};
use serde_json::{json, Value};

use crate::canonical::{
    AliasTables, CanonicalRequest, CanonicalResponse, CanonicalStatus, FlavorRecord, ImageRecord,
    InstanceRecord, ProviderError,
};
use crate::openstack::ResponseKind;
use crate::provider::{
    billable_ground_truth, live_by_token, record_of, CapabilityDescriptor, Consistency, Provider,
    WireFormat,
};
use crate::wire::{WireRequest, WireResponse};

/// Pagely's state vocabulary.
fn pagely_state(status: CanonicalStatus) -> &'static str {
    match status {
        CanonicalStatus::Build => "provisioning",
        CanonicalStatus::Active => "online",
        CanonicalStatus::Shutoff => "offline",
        CanonicalStatus::Terminated => "deleted",
        CanonicalStatus::Preempted => "reclaimed",
    }
}

fn parse_pagely_state(s: &str) -> Result<CanonicalStatus, ProviderError> {
    Ok(match s {
        "provisioning" => CanonicalStatus::Build,
        "online" => CanonicalStatus::Active,
        "offline" => CanonicalStatus::Shutoff,
        "deleted" => CanonicalStatus::Terminated,
        "reclaimed" => CanonicalStatus::Preempted,
        other => {
            return Err(ProviderError::Translation(format!(
                "unknown pagely state {other:?}"
            )))
        }
    })
}

/// Encode a canonical request onto the pagely wire. List requests name an
/// explicit page; [`list_page_request`] builds the follow-ups.
pub fn encode_request(
    req: &CanonicalRequest,
    aliases: &AliasTables,
) -> Result<WireRequest, ProviderError> {
    Ok(match req {
        CanonicalRequest::ListInstances => list_page_request(0),
        CanonicalRequest::LaunchInstance {
            name,
            flavor,
            image,
        } => WireRequest::rest(
            "POST",
            "/v2/instances",
            Some(json!({"instance": {
                "label": name,
                "type": aliases.native_flavor(flavor),
                "image": image,
            }})),
        ),
        CanonicalRequest::TerminateInstance { id } => {
            WireRequest::rest("DELETE", format!("/v2/instances/{id}"), None)
        }
        CanonicalRequest::DescribeInstance { id } => {
            WireRequest::rest("GET", format!("/v2/instances/{id}"), None)
        }
        CanonicalRequest::ListFlavors => WireRequest::rest("GET", "/v2/types", None),
        CanonicalRequest::ListImages => WireRequest::rest("GET", "/v2/images", None),
    })
}

/// The wire request for one specific listing page.
pub fn list_page_request(page: usize) -> WireRequest {
    WireRequest::rest("GET", format!("/v2/instances?page={page}"), None)
}

/// Decode a pagely wire request (the server half). Returns the request
/// plus, for listings, which page was asked for.
pub fn decode_request(
    wire: &WireRequest,
    aliases: &AliasTables,
) -> Result<(CanonicalRequest, usize), ProviderError> {
    let WireRequest::Rest { method, path, body } = wire else {
        return Err(ProviderError::Translation(
            "pagely expects REST requests".into(),
        ));
    };
    match (method.as_str(), path.as_str()) {
        ("GET", "/v2/types") => Ok((CanonicalRequest::ListFlavors, 0)),
        ("GET", "/v2/images") => Ok((CanonicalRequest::ListImages, 0)),
        ("POST", "/v2/instances") => {
            let inst = body
                .as_ref()
                .and_then(|b| b.get("instance"))
                .ok_or_else(|| ProviderError::Translation("missing 'instance' object".into()))?;
            Ok((
                CanonicalRequest::LaunchInstance {
                    name: inst["label"]
                        .as_str()
                        .ok_or_else(|| ProviderError::Translation("missing instance.label".into()))?
                        .to_string(),
                    flavor: aliases.unified_flavor(inst["type"].as_str().ok_or_else(|| {
                        ProviderError::Translation("missing instance.type".into())
                    })?),
                    image: inst["image"].as_u64().ok_or_else(|| {
                        ProviderError::Translation("missing instance.image".into())
                    })?,
                },
                0,
            ))
        }
        _ => {
            if let Some(query) = path.strip_prefix("/v2/instances?page=") {
                let page: usize = query
                    .parse()
                    .map_err(|_| ProviderError::Translation(format!("bad page '{query}'")))?;
                if method == "GET" {
                    return Ok((CanonicalRequest::ListInstances, page));
                }
            }
            if let Some(rest) = path.strip_prefix("/v2/instances/") {
                let id: u64 = rest
                    .parse()
                    .map_err(|_| ProviderError::Translation(format!("bad instance id '{rest}'")))?;
                return match method.as_str() {
                    "GET" => Ok((CanonicalRequest::DescribeInstance { id }, 0)),
                    "DELETE" => Ok((CanonicalRequest::TerminateInstance { id }, 0)),
                    other => Err(ProviderError::Translation(format!("{other} {path}"))),
                };
            }
            Err(ProviderError::Translation(format!("{method} {path}")))
        }
    }
}

fn render_item(rec: &InstanceRecord) -> Value {
    let mut item = json!({
        "uuid": rec.id,
        "label": rec.name,
        "state": pagely_state(rec.status),
        "type": rec.flavor,
    });
    if let Some(cores) = rec.vcpus {
        item["cores"] = json!(cores);
    }
    if let Some(image) = rec.image {
        item["image"] = json!(image);
    }
    item
}

fn item_of(v: &Value) -> Result<InstanceRecord, ProviderError> {
    Ok(InstanceRecord {
        id: v["uuid"]
            .as_u64()
            .ok_or_else(|| ProviderError::Translation("missing uuid".into()))?,
        name: v["label"]
            .as_str()
            .ok_or_else(|| ProviderError::Translation("missing label".into()))?
            .to_string(),
        status: parse_pagely_state(
            v["state"]
                .as_str()
                .ok_or_else(|| ProviderError::Translation("missing state".into()))?,
        )?,
        flavor: v["type"].as_str().unwrap_or("").to_string(),
        vcpus: v["cores"].as_u64().map(|c| c as u32),
        image: v["image"].as_u64(),
    })
}

/// Split a fleet into page replies. Always at least one page (an empty
/// fleet is one empty page), each carrying its index, the page count,
/// and the next page number or `null` on the last page.
pub fn encode_paged_instances(recs: &[InstanceRecord], page_size: usize) -> Vec<WireResponse> {
    assert!(page_size > 0, "page_size must be positive");
    let pages = recs.len().div_ceil(page_size).max(1);
    (0..pages)
        .map(|p| {
            let chunk: Vec<Value> = recs
                .iter()
                .skip(p * page_size)
                .take(page_size)
                .map(render_item)
                .collect();
            let next = if p + 1 < pages {
                json!(p + 1)
            } else {
                Value::Null
            };
            WireResponse::Json(json!({
                "instances": chunk,
                "page": p,
                "pages": pages,
                "next": next,
            }))
        })
        .collect()
}

/// Which page a listing reply says comes next, if any.
pub fn next_page(wire: &WireResponse) -> Result<Option<usize>, ProviderError> {
    let WireResponse::Json(v) = wire else {
        return Err(ProviderError::Translation(
            "pagely expects JSON responses".into(),
        ));
    };
    match &v["next"] {
        Value::Null => Ok(None),
        other => other
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| ProviderError::Translation("bad 'next' page token".into())),
    }
}

/// Stitch a complete set of listing pages back into one canonical
/// response, validating the page chain (indices in order, consistent
/// page count, final `next` = null).
pub fn decode_paged_instances(pages: &[WireResponse]) -> Result<CanonicalResponse, ProviderError> {
    if pages.is_empty() {
        return Err(ProviderError::Translation("no pages to decode".into()));
    }
    let mut recs = Vec::new();
    for (idx, wire) in pages.iter().enumerate() {
        let WireResponse::Json(v) = wire else {
            return Err(ProviderError::Translation(
                "pagely expects JSON responses".into(),
            ));
        };
        let page = v["page"].as_u64().unwrap_or(u64::MAX) as usize;
        let total = v["pages"].as_u64().unwrap_or(0) as usize;
        if page != idx || total != pages.len() {
            return Err(ProviderError::Translation(format!(
                "broken page chain: got page {page}/{total} at position {idx} of {}",
                pages.len()
            )));
        }
        let expect_next = if idx + 1 < pages.len() {
            Some(idx + 1)
        } else {
            None
        };
        if next_page(wire)? != expect_next {
            return Err(ProviderError::Translation(format!(
                "broken next-pointer on page {idx}"
            )));
        }
        for item in v["instances"]
            .as_array()
            .ok_or_else(|| ProviderError::Translation("missing 'instances' array".into()))?
        {
            recs.push(item_of(item)?);
        }
    }
    Ok(CanonicalResponse::Instances(recs))
}

/// Decode a single non-listing pagely reply.
pub fn decode_response(
    kind: &ResponseKind,
    wire: &WireResponse,
) -> Result<CanonicalResponse, ProviderError> {
    let WireResponse::Json(v) = wire else {
        return Err(ProviderError::Translation(
            "pagely expects JSON responses".into(),
        ));
    };
    match kind {
        ResponseKind::Instances => decode_paged_instances(std::slice::from_ref(wire)),
        ResponseKind::Launch { .. } => Ok(CanonicalResponse::Launched(item_of(&v["instance"])?)),
        ResponseKind::Describe => Ok(CanonicalResponse::Instance(item_of(&v["instance"])?)),
        ResponseKind::Terminate { .. } => Ok(CanonicalResponse::Terminated {
            id: v["instance"]["uuid"]
                .as_u64()
                .ok_or_else(|| ProviderError::Translation("missing uuid".into()))?,
        }),
        ResponseKind::Flavors => Ok(CanonicalResponse::Flavors(
            v["types"]
                .as_array()
                .ok_or_else(|| ProviderError::Translation("missing 'types' array".into()))?
                .iter()
                .map(|f| {
                    Ok(FlavorRecord {
                        name: f["type"]
                            .as_str()
                            .ok_or_else(|| ProviderError::Translation("missing type name".into()))?
                            .to_string(),
                        vcpus: f["cores"].as_u64().unwrap_or(0) as u32,
                        ram_mb: f["ram_mb"].as_u64().unwrap_or(0),
                        disk_gb: f["disk_gb"].as_u64().unwrap_or(0),
                    })
                })
                .collect::<Result<_, ProviderError>>()?,
        )),
        ResponseKind::Images => Ok(CanonicalResponse::Images(
            v["images"]
                .as_array()
                .ok_or_else(|| ProviderError::Translation("missing 'images' array".into()))?
                .iter()
                .map(|i| {
                    Ok(ImageRecord {
                        id: i["id"]
                            .as_u64()
                            .ok_or_else(|| ProviderError::Translation("missing image id".into()))?,
                        name: i["name"].as_str().unwrap_or("").to_string(),
                    })
                })
                .collect::<Result<_, ProviderError>>()?,
        )),
    }
}

/// Encode a non-listing canonical response onto the pagely wire.
pub fn encode_response(resp: &CanonicalResponse) -> Result<WireResponse, ProviderError> {
    Ok(WireResponse::Json(match resp {
        CanonicalResponse::Instances(_) => {
            return Err(ProviderError::Translation(
                "listings must go through encode_paged_instances".into(),
            ))
        }
        CanonicalResponse::Launched(rec) | CanonicalResponse::Instance(rec) => {
            json!({"instance": render_item(rec)})
        }
        CanonicalResponse::Terminated { id } => {
            json!({"instance": {"uuid": id, "state": "deleted"}})
        }
        CanonicalResponse::Flavors(fls) => json!({"types": fls
            .iter()
            .map(|f| json!({"type": f.name, "cores": f.vcpus, "ram_mb": f.ram_mb, "disk_gb": f.disk_gb}))
            .collect::<Vec<_>>()}),
        CanonicalResponse::Images(imgs) => json!({"images": imgs
            .iter()
            .map(|i| json!({"id": i.id, "name": i.name}))
            .collect::<Vec<_>>()}),
    }))
}

/// The pagely provider. Every listing call walks the full page chain;
/// the registry charges latency per page fetched.
pub struct PagedProvider {
    name: String,
    pub cloud: CloudController,
    aliases: AliasTables,
    page_size: usize,
    /// Pages fetched by the most recent call (for latency accounting).
    pub last_pages: usize,
}

impl PagedProvider {
    pub fn new(
        name: impl Into<String>,
        cloud: CloudController,
        aliases: AliasTables,
        page_size: usize,
    ) -> Self {
        assert!(page_size > 0);
        PagedProvider {
            name: name.into(),
            cloud,
            aliases,
            page_size,
            last_pages: 1,
        }
    }

    fn listing(&self, user: &str) -> Vec<InstanceRecord> {
        let mut recs: Vec<InstanceRecord> = self
            .cloud
            .instances_of(user)
            .filter(|i| i.state != InstanceState::Terminated)
            .map(record_of)
            .collect();
        recs.sort_by_key(|r| r.id);
        recs
    }
}

impl Provider for PagedProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn descriptor(&self) -> CapabilityDescriptor {
        CapabilityDescriptor {
            wire: WireFormat::PagedJson,
            consistency: Consistency::Strong,
            spot: false,
            flavor_listing: true,
            api_latency: SimDuration::from_millis(30),
            page_size: Some(self.page_size),
        }
    }

    fn aliases(&self) -> &AliasTables {
        &self.aliases
    }

    fn call(
        &mut self,
        user: &str,
        req: &CanonicalRequest,
        now: SimTime,
    ) -> Result<CanonicalResponse, ProviderError> {
        self.last_pages = 1;
        match req {
            CanonicalRequest::ListInstances => {
                // Server side: render the fleet as the full page chain;
                // client side: walk `next` pointers and stitch.
                let pages = encode_paged_instances(&self.listing(user), self.page_size);
                let mut fetched = Vec::new();
                let mut cursor = Some(0usize);
                while let Some(p) = cursor {
                    // A real client issues list_page_request(p) here; the
                    // in-process server indexes the pre-rendered chain.
                    let wire = pages.get(p).cloned().ok_or_else(|| {
                        ProviderError::Translation(format!("page {p} past the end"))
                    })?;
                    cursor = next_page(&wire)?;
                    fetched.push(wire);
                }
                self.last_pages = fetched.len();
                decode_paged_instances(&fetched)
            }
            CanonicalRequest::LaunchInstance { name, .. } => {
                if let Some(existing) = live_by_token(&self.cloud, user, name) {
                    let reply = encode_response(&CanonicalResponse::Launched(record_of(existing)))?;
                    return decode_response(&ResponseKind::of(req), &reply);
                }
                // Exercise the wire: encode the canonical request, decode
                // it server-side, execute, encode the reply, decode it.
                let wire = encode_request(req, &self.aliases)?;
                let (server_req, _) = decode_request(&wire, &AliasTables::default())?;
                let CanonicalRequest::LaunchInstance {
                    name: s_name,
                    flavor: s_flavor,
                    image: s_image,
                } = &server_req
                else {
                    return Err(ProviderError::Translation("launch decoded wrong".into()));
                };
                let id = self
                    .cloud
                    .boot(user, s_name, s_flavor, ImageId(*s_image), now)
                    .map_err(|e| ProviderError::Backend(format!("{e:?}")))?;
                let reply = encode_response(&CanonicalResponse::Launched(record_of(
                    self.cloud.instance(id).expect("just booted"),
                )))?;
                decode_response(&ResponseKind::of(req), &reply)
            }
            CanonicalRequest::TerminateInstance { id } => {
                let iid = InstanceId(*id);
                if self.cloud.instance(iid).map(|i| i.owner.as_str()) != Some(user) {
                    return Err(ProviderError::Backend(format!("not found: instance {id}")));
                }
                self.cloud
                    .terminate(iid, now)
                    .map_err(|e| ProviderError::Backend(format!("{e:?}")))?;
                let reply = encode_response(&CanonicalResponse::Terminated { id: *id })?;
                decode_response(&ResponseKind::of(req), &reply)
            }
            CanonicalRequest::DescribeInstance { id } => {
                let rec = self
                    .cloud
                    .instance(InstanceId(*id))
                    .filter(|i| i.owner == user)
                    .map(record_of)
                    .ok_or_else(|| ProviderError::Backend(format!("not found: instance {id}")))?;
                let reply = encode_response(&CanonicalResponse::Instance(rec))?;
                decode_response(&ResponseKind::of(req), &reply)
            }
            CanonicalRequest::ListFlavors => {
                let reply = encode_response(&CanonicalResponse::Flavors(
                    self.cloud
                        .flavors()
                        .iter()
                        .map(|f| FlavorRecord {
                            name: f.name.clone(),
                            vcpus: f.vcpus,
                            ram_mb: f.ram_mb,
                            disk_gb: f.disk_gb,
                        })
                        .collect(),
                ))?;
                decode_response(&ResponseKind::of(req), &reply)
            }
            CanonicalRequest::ListImages => {
                let reply = encode_response(&CanonicalResponse::Images(
                    self.cloud
                        .images()
                        .map(|i| ImageRecord {
                            id: i.id.0,
                            name: i.name.clone(),
                        })
                        .collect(),
                ))?;
                decode_response(&ResponseKind::of(req), &reply)
            }
        }
    }

    fn ground_truth(&self) -> Vec<(String, InstanceRecord)> {
        billable_ground_truth(&self.cloud)
    }

    fn roundtrip_request(&self, req: &CanonicalRequest) -> Result<CanonicalRequest, ProviderError> {
        decode_request(&encode_request(req, &self.aliases)?, &self.aliases).map(|(r, _)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> InstanceRecord {
        InstanceRecord {
            id,
            name: format!("vm{id}"),
            status: CanonicalStatus::Active,
            flavor: "m1.small".into(),
            vcpus: Some(1),
            image: Some(1),
        }
    }

    #[test]
    fn page_boundaries() {
        // 0, size-1, size, size+1, 2×size items across page size 4.
        for n in [0usize, 3, 4, 5, 8] {
            let fleet: Vec<InstanceRecord> = (0..n as u64).map(rec).collect();
            let pages = encode_paged_instances(&fleet, 4);
            let expect_pages = n.div_ceil(4).max(1);
            assert_eq!(pages.len(), expect_pages, "n={n}");
            let CanonicalResponse::Instances(got) =
                decode_paged_instances(&pages).expect("stitches")
            else {
                panic!()
            };
            assert_eq!(got, fleet, "n={n}");
        }
    }

    #[test]
    fn broken_chains_are_typed_errors() {
        let fleet: Vec<InstanceRecord> = (0..8).map(rec).collect();
        let pages = encode_paged_instances(&fleet, 4);
        // Drop the second page: the chain is broken.
        assert!(matches!(
            decode_paged_instances(&pages[..1]),
            Err(ProviderError::Translation(_))
        ));
        // Reorder: the page indices no longer match positions.
        let reordered = vec![pages[1].clone(), pages[0].clone()];
        assert!(matches!(
            decode_paged_instances(&reordered),
            Err(ProviderError::Translation(_))
        ));
    }

    #[test]
    fn provider_walks_every_page() {
        let mut aliases = AliasTables::default();
        aliases.flavors.insert("small".into(), "m1.small".into());
        aliases.images.insert("ubuntu-base".into(), 1);
        let mut p = PagedProvider::new(
            "pagely",
            CloudController::with_racks("pagely", 1),
            aliases,
            3,
        );
        for i in 0..7 {
            p.call(
                "alice",
                &CanonicalRequest::LaunchInstance {
                    name: format!("vm{i}"),
                    flavor: "small".into(),
                    image: 1,
                },
                SimTime(i),
            )
            .expect("launches");
        }
        let CanonicalResponse::Instances(recs) = p
            .call("alice", &CanonicalRequest::ListInstances, SimTime(100))
            .expect("lists")
        else {
            panic!()
        };
        assert_eq!(recs.len(), 7);
        assert_eq!(p.last_pages, 3, "7 instances over page size 3");
    }
}
