//! The provider registry: descriptors, pricing, health gates, metering.
//!
//! Every canonical call enters through [`ProviderRegistry::call`], which
//! meters it (per-call fee, telemetry counters, latency model) and rolls
//! the chaos dice for the target's [`ApiHealth`] before the provider
//! sees it. Injected faults reproduce the ugly parts of real federation
//! outages: an *outage* fails fast, a *timeout* may or may not have
//! executed the request (the lost-response case that breeds orphans),
//! and an *error* is a clean failure.

use std::collections::BTreeMap;

use osdc_sim::{SimDuration, SimRng, SimTime, TenantId, TenantInterner, TenantStore};
use osdc_telemetry::Telemetry;

use crate::canonical::{AliasTables, CanonicalRequest, CanonicalResponse, ProviderError};
use crate::pricing::PricingCatalog;
use crate::provider::{CapabilityDescriptor, Provider};

/// Injected API-plane health for one provider (driven by osdc-chaos).
#[derive(Clone, Debug, PartialEq)]
pub struct ApiHealth {
    /// Endpoint down: every call fails fast with [`ProviderError::Outage`].
    pub outage: bool,
    /// Probability a call hangs to the client timeout.
    pub timeout_prob: f64,
    /// Given a timeout, probability the backend executed the request
    /// anyway (the response was lost, not the work).
    pub lost_response_prob: f64,
    /// Probability of a clean injected API error.
    pub error_prob: f64,
    /// How long a timed-out call holds the caller.
    pub timeout: SimDuration,
}

impl Default for ApiHealth {
    fn default() -> Self {
        ApiHealth {
            outage: false,
            timeout_prob: 0.0,
            lost_response_prob: 0.5,
            error_prob: 0.0,
            timeout: SimDuration::from_secs(30),
        }
    }
}

impl ApiHealth {
    /// No fault injection active.
    pub fn is_clear(&self) -> bool {
        !self.outage && self.timeout_prob == 0.0 && self.error_prob == 0.0
    }
}

/// Metered totals for one provider.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProviderUsage {
    pub calls: u64,
    pub errors: u64,
    pub timeouts: u64,
    pub lost_responses: u64,
    pub launches: u64,
    pub terminates: u64,
    pub core_minutes: f64,
    pub compute_usd: f64,
    pub api_usd: f64,
}

impl ProviderUsage {
    pub fn total_usd(&self) -> f64 {
        self.compute_usd + self.api_usd
    }
}

/// Usage and cost accounting across the federation — the feed that
/// flows into billing.
///
/// Per-user cost sits in an interned-id slab ([`TenantStore`]): the
/// provider population is a handful of `BTreeMap` entries, but users
/// number 10⁵+ at ROADMAP scale and are touched every accrual minute —
/// after a user's first charge, [`UsageLedger::accrue_compute`] does no
/// string cloning or tree walking on their account.
#[derive(Clone, Debug, Default)]
pub struct UsageLedger {
    per_provider: BTreeMap<String, ProviderUsage>,
    /// user → accrued compute dollars (all providers), keyed by
    /// interned id.
    users: TenantInterner,
    per_user_usd: TenantStore<f64>,
}

impl UsageLedger {
    pub fn provider(&self, name: &str) -> ProviderUsage {
        self.per_provider.get(name).cloned().unwrap_or_default()
    }

    pub fn provider_mut(&mut self, name: &str) -> &mut ProviderUsage {
        self.per_provider.entry(name.to_string()).or_default()
    }

    pub fn providers(&self) -> impl Iterator<Item = (&String, &ProviderUsage)> {
        self.per_provider.iter()
    }

    pub fn user_usd(&self, user: &str) -> f64 {
        self.users
            .get(user)
            .and_then(|id| self.per_user_usd.get(id).copied())
            .unwrap_or(0.0)
    }

    /// Interned id for `user`, if the ledger has ever charged them.
    pub fn user_id(&self, user: &str) -> Option<TenantId> {
        self.users.get(user)
    }

    /// Every charged user in first-charge order.
    pub fn users(&self) -> impl Iterator<Item = (&str, f64)> {
        self.per_user_usd
            .iter()
            .map(|(id, &usd)| (self.users.name(id), usd))
    }

    /// Charge `user` for `cores` on `provider` for one minute at
    /// `rate_per_core_hour`.
    pub fn accrue_compute(&mut self, provider: &str, user: &str, cores: u32, rate: f64) {
        let id = self.users.intern(user);
        self.accrue_compute_id(provider, id, cores, rate);
    }

    /// [`accrue_compute`](Self::accrue_compute) by interned id — the
    /// zero-alloc hot path for callers that cache [`TenantId`]s.
    pub fn accrue_compute_id(&mut self, provider: &str, user: TenantId, cores: u32, rate: f64) {
        let usd = cores as f64 * rate / 60.0;
        let p = self.provider_mut(provider);
        p.core_minutes += cores as f64;
        p.compute_usd += usd;
        *self.per_user_usd.get_or_insert_with(user, || 0.0) += usd;
    }

    pub fn total_usd(&self) -> f64 {
        self.per_provider.values().map(|p| p.total_usd()).sum()
    }
}

struct Entry {
    provider: Box<dyn Provider>,
    catalog: PricingCatalog,
    health: ApiHealth,
}

/// The pluggable provider runtime's front door.
pub struct ProviderRegistry {
    entries: Vec<Entry>,
    pub tele: Telemetry,
    rng: SimRng,
    ledger: UsageLedger,
    last_latency: SimDuration,
}

impl ProviderRegistry {
    pub fn new(tele: Telemetry, seed: u64) -> Self {
        ProviderRegistry {
            entries: Vec::new(),
            tele,
            rng: SimRng::new(seed),
            ledger: UsageLedger::default(),
            last_latency: SimDuration::ZERO,
        }
    }

    pub fn register(&mut self, provider: Box<dyn Provider>, catalog: PricingCatalog) {
        debug_assert_eq!(
            provider.name(),
            catalog.provider,
            "catalog/provider mismatch"
        );
        self.entries.push(Entry {
            provider,
            catalog,
            health: ApiHealth::default(),
        });
    }

    fn entry(&self, name: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.provider.name() == name)
    }

    fn entry_mut(&mut self, name: &str) -> Option<&mut Entry> {
        self.entries.iter_mut().find(|e| e.provider.name() == name)
    }

    /// Registered provider names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| e.provider.name().to_string())
            .collect()
    }

    pub fn descriptor(&self, name: &str) -> Option<CapabilityDescriptor> {
        self.entry(name).map(|e| e.provider.descriptor())
    }

    pub fn catalog(&self, name: &str) -> Option<&PricingCatalog> {
        self.entry(name).map(|e| &e.catalog)
    }

    pub fn aliases(&self, name: &str) -> Option<&AliasTables> {
        self.entry(name).map(|e| e.provider.aliases())
    }

    pub fn health(&self, name: &str) -> Option<&ApiHealth> {
        self.entry(name).map(|e| &e.health)
    }

    /// Mutate one provider's injected health (the chaos hook).
    pub fn set_health(&mut self, name: &str, f: impl FnOnce(&mut ApiHealth)) -> bool {
        match self.entry_mut(name) {
            Some(e) => {
                f(&mut e.health);
                true
            }
            None => false,
        }
    }

    pub fn spot_price(&self, name: &str) -> Option<f64> {
        self.entry(name).and_then(|e| e.provider.spot_price())
    }

    /// Run one provider's encode→decode fidelity probe.
    pub fn roundtrip_request(
        &self,
        name: &str,
        req: &CanonicalRequest,
    ) -> Option<Result<CanonicalRequest, ProviderError>> {
        self.entry(name).map(|e| e.provider.roundtrip_request(req))
    }

    /// Simulated wall-clock cost of the most recent `call`.
    pub fn last_latency(&self) -> SimDuration {
        self.last_latency
    }

    pub fn ledger(&self) -> &UsageLedger {
        &self.ledger
    }

    pub fn ledger_mut(&mut self) -> &mut UsageLedger {
        &mut self.ledger
    }

    /// Omniscient backend view of one provider, for audits and accrual.
    pub fn ground_truth(&self, name: &str) -> Vec<(String, crate::canonical::InstanceRecord)> {
        self.entry(name)
            .map(|e| e.provider.ground_truth())
            .unwrap_or_default()
    }

    /// Advance provider-internal processes (spot walks, preemptions).
    pub fn tick_all(&mut self, now: SimTime) {
        for e in &mut self.entries {
            e.provider.tick(now);
        }
    }

    /// Meter, gate, translate, execute one canonical call.
    pub fn call(
        &mut self,
        name: &str,
        user: &str,
        req: &CanonicalRequest,
        now: SimTime,
    ) -> Result<CanonicalResponse, ProviderError> {
        let idx = self
            .entries
            .iter()
            .position(|e| e.provider.name() == name)
            .ok_or_else(|| ProviderError::UnknownProvider(name.to_string()))?;
        let entry = &mut self.entries[idx];
        let pname = entry.provider.name().to_string();
        let desc = entry.provider.descriptor();

        self.tele
            .incr(self.tele.counter(&format!("providers.{pname}.calls")));
        {
            let usage = self.ledger.provider_mut(&pname);
            usage.calls += 1;
            usage.api_usd += entry.catalog.per_call_usd;
        }

        // Chaos gate, in severity order: outage, timeout, clean error.
        if entry.health.outage {
            self.last_latency = SimDuration::ZERO;
            self.tele
                .incr(self.tele.counter(&format!("providers.{pname}.errors")));
            self.ledger.provider_mut(&pname).errors += 1;
            return Err(ProviderError::Outage { provider: pname });
        }
        if entry.health.timeout_prob > 0.0 && self.rng.chance(entry.health.timeout_prob) {
            let lost_response = self.rng.chance(entry.health.lost_response_prob);
            if lost_response {
                // The backend did the work; only the reply is lost.
                let _ = entry.provider.call(user, req, now);
                self.tele.incr(
                    self.tele
                        .counter(&format!("providers.{pname}.lost_responses")),
                );
                self.ledger.provider_mut(&pname).lost_responses += 1;
            }
            self.last_latency = entry.health.timeout;
            self.tele
                .incr(self.tele.counter(&format!("providers.{pname}.timeouts")));
            self.ledger.provider_mut(&pname).timeouts += 1;
            return Err(ProviderError::Timeout { provider: pname });
        }
        if entry.health.error_prob > 0.0 && self.rng.chance(entry.health.error_prob) {
            self.last_latency = desc.api_latency;
            self.tele
                .incr(self.tele.counter(&format!("providers.{pname}.errors")));
            self.ledger.provider_mut(&pname).errors += 1;
            return Err(ProviderError::Api { provider: pname });
        }

        let result = entry.provider.call(user, req, now);

        // Latency: one round trip, or one per page for paged listings.
        let pages = match (&desc.page_size, req) {
            (Some(size), CanonicalRequest::ListInstances) => match &result {
                Ok(CanonicalResponse::Instances(recs)) => recs.len().div_ceil(*size).max(1),
                _ => 1,
            },
            _ => 1,
        };
        self.last_latency = desc.api_latency * pages as u64;
        let hist = self
            .tele
            .histogram(&format!("providers.{pname}.latency_ms"));
        self.tele
            .observe(hist, self.last_latency.as_nanos() as f64 / 1.0e6);

        match &result {
            Ok(_) => {
                let usage = self.ledger.provider_mut(&pname);
                match req {
                    CanonicalRequest::LaunchInstance { .. } => usage.launches += 1,
                    CanonicalRequest::TerminateInstance { .. } => usage.terminates += 1,
                    _ => {}
                }
            }
            Err(_) => {
                self.tele
                    .incr(self.tele.counter(&format!("providers.{pname}.errors")));
                self.ledger.provider_mut(&pname).errors += 1;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::CanonicalStatus;
    use crate::provider::ClassicProvider;
    use osdc_compute::cloud::CloudController;

    fn aliases() -> AliasTables {
        let mut t = AliasTables::default();
        t.flavors.insert("small".into(), "m1.small".into());
        t.images.insert("ubuntu-base".into(), 1);
        t
    }

    fn registry() -> ProviderRegistry {
        let mut r = ProviderRegistry::new(Telemetry::new(), 0x9e67);
        let cats = crate::pricing::osdc_default_catalogs();
        r.register(
            Box::new(ClassicProvider::openstack(
                "adler",
                CloudController::with_racks("adler", 1),
                aliases(),
            )),
            cats[0].clone(),
        );
        r.register(
            Box::new(ClassicProvider::eucalyptus(
                "sullivan",
                CloudController::with_racks("sullivan", 1),
                aliases(),
            )),
            cats[1].clone(),
        );
        r
    }

    fn launch(name: &str) -> CanonicalRequest {
        CanonicalRequest::LaunchInstance {
            name: name.into(),
            flavor: "small".into(),
            image: 1,
        }
    }

    #[test]
    fn call_meters_and_executes() {
        let mut r = registry();
        let resp = r
            .call("adler", "alice", &launch("vm1"), SimTime::ZERO)
            .expect("launches");
        let CanonicalResponse::Launched(rec) = resp else {
            panic!()
        };
        assert_eq!(rec.status, CanonicalStatus::Active);
        let usage = r.ledger().provider("adler");
        assert_eq!(usage.calls, 1);
        assert_eq!(usage.launches, 1);
        assert!(usage.api_usd > 0.0);
        assert_eq!(r.last_latency(), SimDuration::from_millis(35));
        assert_eq!(r.tele.counter_value("providers.adler.calls"), 1);
        assert!(matches!(
            r.call("nimbus9", "alice", &launch("x"), SimTime::ZERO),
            Err(ProviderError::UnknownProvider(_))
        ));
    }

    #[test]
    fn outage_gate_fails_fast() {
        let mut r = registry();
        assert!(r.set_health("sullivan", |h| h.outage = true));
        let err = r
            .call("sullivan", "alice", &launch("vm1"), SimTime::ZERO)
            .expect_err("down");
        assert!(matches!(err, ProviderError::Outage { .. }));
        assert!(r.ground_truth("sullivan").is_empty(), "nothing executed");
        assert_eq!(r.ledger().provider("sullivan").errors, 1);
        r.set_health("sullivan", |h| h.outage = false);
        r.call("sullivan", "alice", &launch("vm1"), SimTime(1))
            .expect("healed");
    }

    #[test]
    fn timeout_can_lose_the_response_but_do_the_work() {
        let mut r = registry();
        r.set_health("adler", |h| {
            h.timeout_prob = 1.0;
            h.lost_response_prob = 1.0;
        });
        let err = r
            .call("adler", "alice", &launch("vm1"), SimTime::ZERO)
            .expect_err("times out");
        assert!(matches!(err, ProviderError::Timeout { .. }));
        assert_eq!(r.last_latency(), SimDuration::from_secs(30));
        // The launch actually happened: a future reconcile must find it.
        assert_eq!(r.ground_truth("adler").len(), 1, "orphan exists");
        let usage = r.ledger().provider("adler");
        assert_eq!((usage.timeouts, usage.lost_responses), (1, 1));
    }

    #[test]
    fn paged_listings_charge_per_page() {
        let mut r = ProviderRegistry::new(Telemetry::new(), 1);
        let mut cat = crate::pricing::osdc_default_catalogs()[4].clone();
        cat.provider = "pagely".into();
        r.register(
            Box::new(crate::paged::PagedProvider::new(
                "pagely",
                CloudController::with_racks("pagely", 1),
                aliases(),
                2,
            )),
            cat,
        );
        for i in 0..5 {
            r.call("pagely", "alice", &launch(&format!("vm{i}")), SimTime(i))
                .expect("launches");
        }
        r.call(
            "pagely",
            "alice",
            &CanonicalRequest::ListInstances,
            SimTime(9),
        )
        .expect("lists");
        // 5 instances / page size 2 → 3 pages → 3 × 30ms.
        assert_eq!(r.last_latency(), SimDuration::from_millis(90));
    }
}
