//! "Lagoon" — a deliberately weird provider: eventual consistency.
//!
//! Lagoon speaks plain Nova REST/JSON (it reuses the
//! [`crate::openstack`] translator verbatim); its weirdness is temporal.
//! Mutations execute immediately and their *direct* responses are
//! consistent, but list/describe render the world as it stood `lag` ago:
//! a freshly launched instance is invisible for the window, and a
//! terminated one lingers in listings looking alive. Routers that trust
//! a listing to dedupe launches double-boot here — which is exactly what
//! the client-token idempotency contract and the audit oracle exist to
//! catch.

use osdc_compute::cloud::CloudController;
use osdc_compute::image::ImageId;
use osdc_compute::instance::InstanceId;
use osdc_sim::{SimDuration, SimTime};

use crate::canonical::{
    AliasTables, CanonicalRequest, CanonicalResponse, CanonicalStatus, FlavorRecord, ImageRecord,
    InstanceRecord, ProviderError,
};
use crate::openstack::{self, ResponseKind};
use crate::provider::{
    billable_ground_truth, live_by_token, record_of, status_of, CapabilityDescriptor, Consistency,
    Provider, WireFormat,
};

/// The lagoon provider: a strong backend behind a lagging read path.
pub struct EventualProvider {
    name: String,
    pub cloud: CloudController,
    aliases: AliasTables,
    lag: SimDuration,
}

impl EventualProvider {
    pub fn new(
        name: impl Into<String>,
        cloud: CloudController,
        aliases: AliasTables,
        lag: SimDuration,
    ) -> Self {
        EventualProvider {
            name: name.into(),
            cloud,
            aliases,
            lag,
        }
    }

    pub fn lag(&self) -> SimDuration {
        self.lag
    }

    /// Render one instance as the read path sees it at `now`: a write
    /// becomes visible only once `lag` has elapsed since it happened.
    fn record_as_of(
        &self,
        inst: &osdc_compute::instance::Instance,
        now: SimTime,
    ) -> Option<InstanceRecord> {
        if inst.launched_at + self.lag > now {
            return None; // launch not yet visible
        }
        let mut rec = record_of(inst);
        match inst.terminated_at {
            // Termination old enough to have propagated: gone from reads.
            Some(t) if t + self.lag <= now => None,
            // Terminated inside the window: reads still say it is up.
            Some(_) => {
                rec.status = CanonicalStatus::Active;
                Some(rec)
            }
            None => {
                rec.status = status_of(inst.state);
                Some(rec)
            }
        }
    }

    fn lagged_listing(&self, user: &str, now: SimTime) -> Vec<InstanceRecord> {
        let mut recs: Vec<InstanceRecord> = self
            .cloud
            .instances_of(user)
            .filter_map(|i| self.record_as_of(i, now))
            .collect();
        recs.sort_by_key(|r| r.id);
        recs
    }
}

impl Provider for EventualProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn descriptor(&self) -> CapabilityDescriptor {
        CapabilityDescriptor {
            wire: WireFormat::RestJson,
            consistency: Consistency::Eventual { lag: self.lag },
            spot: false,
            flavor_listing: true,
            api_latency: SimDuration::from_millis(45),
            page_size: None,
        }
    }

    fn aliases(&self) -> &AliasTables {
        &self.aliases
    }

    fn call(
        &mut self,
        user: &str,
        req: &CanonicalRequest,
        now: SimTime,
    ) -> Result<CanonicalResponse, ProviderError> {
        // Wire fidelity: every reply passes through the Nova translator.
        let reply = |resp: CanonicalResponse, kind: &ResponseKind| {
            let wire = openstack::encode_response(&resp);
            openstack::decode_response(kind, &wire)
        };
        match req {
            CanonicalRequest::ListInstances => reply(
                CanonicalResponse::Instances(self.lagged_listing(user, now)),
                &ResponseKind::Instances,
            ),
            CanonicalRequest::DescribeInstance { id } => {
                let rec = self
                    .cloud
                    .instance(InstanceId(*id))
                    .filter(|i| i.owner == user)
                    .and_then(|i| self.record_as_of(i, now))
                    .ok_or_else(|| ProviderError::Backend(format!("not found: server {id}")))?;
                reply(CanonicalResponse::Instance(rec), &ResponseKind::Describe)
            }
            CanonicalRequest::LaunchInstance {
                name,
                flavor,
                image,
            } => {
                // The mutation path is strongly consistent, including the
                // client-token dedupe — lagoon loses reads, not writes.
                if let Some(existing) = live_by_token(&self.cloud, user, name) {
                    return reply(
                        CanonicalResponse::Launched(record_of(existing)),
                        &ResponseKind::Launch { name: name.clone() },
                    );
                }
                let native = self.aliases.native_flavor(flavor).to_string();
                let id = self
                    .cloud
                    .boot(user, name, &native, ImageId(*image), now)
                    .map_err(|e| ProviderError::Backend(format!("{e:?}")))?;
                reply(
                    CanonicalResponse::Launched(record_of(
                        self.cloud.instance(id).expect("just booted"),
                    )),
                    &ResponseKind::Launch { name: name.clone() },
                )
            }
            CanonicalRequest::TerminateInstance { id } => {
                let iid = InstanceId(*id);
                if self.cloud.instance(iid).map(|i| i.owner.as_str()) != Some(user) {
                    return Err(ProviderError::Backend(format!("not found: server {id}")));
                }
                self.cloud
                    .terminate(iid, now)
                    .map_err(|e| ProviderError::Backend(format!("{e:?}")))?;
                reply(
                    CanonicalResponse::Terminated { id: *id },
                    &ResponseKind::Terminate { id: *id },
                )
            }
            CanonicalRequest::ListFlavors => reply(
                CanonicalResponse::Flavors(
                    self.cloud
                        .flavors()
                        .iter()
                        .map(|f| FlavorRecord {
                            name: f.name.clone(),
                            vcpus: f.vcpus,
                            ram_mb: f.ram_mb,
                            disk_gb: f.disk_gb,
                        })
                        .collect(),
                ),
                &ResponseKind::Flavors,
            ),
            CanonicalRequest::ListImages => reply(
                CanonicalResponse::Images(
                    self.cloud
                        .images()
                        .map(|i| ImageRecord {
                            id: i.id.0,
                            name: i.name.clone(),
                        })
                        .collect(),
                ),
                &ResponseKind::Images,
            ),
        }
    }

    fn ground_truth(&self) -> Vec<(String, InstanceRecord)> {
        billable_ground_truth(&self.cloud)
    }

    fn roundtrip_request(&self, req: &CanonicalRequest) -> Result<CanonicalRequest, ProviderError> {
        let wire = openstack::encode_request(req, &self.aliases, Default::default())?;
        openstack::decode_request(&wire, &self.aliases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    fn lagoon(lag_secs: u64) -> EventualProvider {
        let mut aliases = AliasTables::default();
        aliases.flavors.insert("small".into(), "m1.small".into());
        aliases.images.insert("ubuntu-base".into(), 1);
        EventualProvider::new(
            "lagoon",
            CloudController::with_racks("lagoon", 1),
            aliases,
            SimDuration::from_secs(lag_secs),
        )
    }

    fn launch(name: &str) -> CanonicalRequest {
        CanonicalRequest::LaunchInstance {
            name: name.into(),
            flavor: "small".into(),
            image: 1,
        }
    }

    fn listing(p: &mut EventualProvider, now_secs: u64) -> Vec<InstanceRecord> {
        let CanonicalResponse::Instances(recs) = p
            .call(
                "alice",
                &CanonicalRequest::ListInstances,
                SimTime(now_secs * SEC),
            )
            .expect("lists")
        else {
            panic!()
        };
        recs
    }

    #[test]
    fn fresh_launch_is_invisible_until_the_lag_passes() {
        let mut p = lagoon(30);
        p.call("alice", &launch("vm1"), SimTime(10 * SEC))
            .expect("launches");
        assert!(listing(&mut p, 15).is_empty(), "inside the lag window");
        assert_eq!(listing(&mut p, 41).len(), 1, "window passed");
    }

    #[test]
    fn terminated_instance_lingers_looking_alive() {
        let mut p = lagoon(30);
        let CanonicalResponse::Launched(rec) = p
            .call("alice", &launch("vm1"), SimTime::ZERO)
            .expect("launches")
        else {
            panic!()
        };
        p.call(
            "alice",
            &CanonicalRequest::TerminateInstance { id: rec.id },
            SimTime(100 * SEC),
        )
        .expect("terminates");
        assert!(p.ground_truth().is_empty(), "truth is immediate");
        let ghosts = listing(&mut p, 110);
        assert_eq!(ghosts.len(), 1, "read path still shows it");
        assert_eq!(ghosts[0].status, CanonicalStatus::Active);
        assert!(listing(&mut p, 131).is_empty(), "lag passed, ghost gone");
    }

    #[test]
    fn writes_stay_strongly_consistent() {
        let mut p = lagoon(3600);
        let CanonicalResponse::Launched(a) = p
            .call("alice", &launch("vm1"), SimTime::ZERO)
            .expect("launches")
        else {
            panic!()
        };
        // Token dedupe works even while the listing shows nothing.
        assert!(listing(&mut p, 1).is_empty());
        let CanonicalResponse::Launched(b) = p
            .call("alice", &launch("vm1"), SimTime(SEC))
            .expect("relaunches")
        else {
            panic!()
        };
        assert_eq!(a.id, b.id, "no double boot through the fog");
    }
}
