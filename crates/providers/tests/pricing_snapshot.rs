//! Pricing-catalog snapshot: the shipped `data/pricing_catalogs.json`
//! must be byte-identical to what `render_catalogs` produces from the
//! in-code defaults. Billing math keys off these catalogs, so a drive-by
//! rate edit that forgets one side of the pair fails loudly here.
//!
//! Regenerate after an intentional change with
//! `OSDC_UPDATE_SNAPSHOTS=1 cargo test -p osdc-providers --test pricing_snapshot`.

use osdc_providers::{osdc_default_catalogs, render_catalogs};

const SNAPSHOT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../data/pricing_catalogs.json"
);

#[test]
fn default_catalogs_match_the_shipped_snapshot() {
    let rendered = render_catalogs(&osdc_default_catalogs());
    if std::env::var_os("OSDC_UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(SNAPSHOT, &rendered).expect("write snapshot");
    }
    let shipped = std::fs::read_to_string(SNAPSHOT)
        .expect("data/pricing_catalogs.json missing — regenerate with OSDC_UPDATE_SNAPSHOTS=1");
    assert_eq!(
        shipped, rendered,
        "data/pricing_catalogs.json is out of sync with osdc_default_catalogs(); \
         regenerate with OSDC_UPDATE_SNAPSHOTS=1 if the rate change was intentional"
    );
}

#[test]
fn snapshot_parses_back_to_the_defaults() {
    let shipped = std::fs::read_to_string(SNAPSHOT).expect("snapshot present");
    let parsed: Vec<osdc_providers::PricingCatalog> =
        serde_json::from_str(&shipped).expect("snapshot parses");
    assert_eq!(parsed, osdc_default_catalogs());
}
